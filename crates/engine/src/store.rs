//! The store: instances, instantiation, invocation and cycle accounting.
//!
//! A [`Store`] corresponds to one simulated process. It owns up to 15
//! sandboxed instances under MTE sandboxing — the paper's per-process limit
//! (§6.4 "we limit the number of sandboxes in one process to at most 15")
//! — and gives each instance its own PAC key and modifier (§6.3).

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cage_mte::{MteMode, Tag};
use cage_pac::{PacKey, PacSigner, PointerLayout};
use cage_wasm::{validate, FuncType, ImportKind, Module, ValType, ValidationError};
use rand::{Rng, SeedableRng};

use crate::bytecode::{self, FlatCode, RegCode};
use crate::config::{BoundsCheckStrategy, ExecConfig, InternalSafety};
use crate::cost::CostModel;
use crate::host::{HostFunc, Imports};
use crate::interp::Interp;
use crate::memory::{LinearMemory, TagScheme};
use crate::trap::Trap;
use crate::value::Value;

/// Why instantiation failed.
#[derive(Debug)]
pub enum InstantiateError {
    /// The module failed validation.
    Validation(ValidationError),
    /// An import could not be resolved from the provided [`Imports`].
    MissingImport {
        /// Import module namespace.
        module: String,
        /// Import field name.
        name: String,
    },
    /// Non-function imports are not supported by this engine.
    UnsupportedImport(String),
    /// MTE sandboxing ran out of tags: at most 15 instances per store
    /// (§6.4), and a single instance in combined mode.
    TooManySandboxes,
    /// A data or element segment fell outside its target.
    SegmentOutOfRange,
    /// The module's initial memory or table size exceeds the store's
    /// [`InstanceLimits`] policy.
    LimitExceeded(String),
    /// Precompilation busted a [`cage_wasm::CompileLimits`] bound
    /// (body size, nesting depth, SSA values, compile fuel, …).
    CompileLimit(cage_wasm::LimitError),
    /// The start function trapped.
    Start(Trap),
}

impl From<cage_wasm::LimitError> for InstantiateError {
    fn from(e: cage_wasm::LimitError) -> Self {
        InstantiateError::CompileLimit(e)
    }
}

impl fmt::Display for InstantiateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstantiateError::Validation(e) => write!(f, "{e}"),
            InstantiateError::MissingImport { module, name } => {
                write!(f, "unresolved import {module}.{name}")
            }
            InstantiateError::UnsupportedImport(what) => {
                write!(f, "unsupported import kind: {what}")
            }
            InstantiateError::TooManySandboxes => {
                f.write_str("sandbox tags exhausted (15 per process, 1 in combined mode)")
            }
            InstantiateError::SegmentOutOfRange => f.write_str("active segment out of range"),
            InstantiateError::LimitExceeded(what) => write!(f, "resource limit exceeded: {what}"),
            InstantiateError::CompileLimit(e) => write!(f, "{e}"),
            InstantiateError::Start(t) => write!(f, "start function trapped: {t}"),
        }
    }
}

impl std::error::Error for InstantiateError {}

impl From<ValidationError> for InstantiateError {
    fn from(e: ValidationError) -> Self {
        InstantiateError::Validation(e)
    }
}

/// Handle to an instance within a [`Store`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InstanceHandle(pub(crate) usize);

/// Per-instance resource policy, in the spirit of wasmtime's
/// `ResourceLimiter`: every field is an *upper bound the embedder imposes
/// on top of* what the module declares and the engine configuration
/// allows; `None` means "no additional bound".
///
/// * `max_memory_pages` caps linear memory, enforced both at
///   instantiation (initial size) and inside `memory.grow` — a grow past
///   the cap fails with the in-language `-1`, exactly like exceeding the
///   module's own declared maximum, so guests observe a deterministic,
///   spec-shaped failure on every tier.
/// * `max_table_elements` caps the function table at instantiation (the
///   engine has no `table.grow`, so the initial size is the only growth
///   point).
/// * `max_call_depth` tightens [`crate::ExecConfig::max_call_depth`]; the
///   effective limit is the minimum of the two.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstanceLimits {
    /// Maximum linear-memory size in 64KiB pages.
    pub max_memory_pages: Option<u64>,
    /// Maximum number of function-table elements.
    pub max_table_elements: Option<usize>,
    /// Maximum guest call depth (tightens the engine config).
    pub max_call_depth: Option<usize>,
}

/// A function precompiled at instantiation: resolved type, local
/// declarations and flat bytecode, shared behind an `Arc` so the
/// interpreter's call path never deep-clones anything and pre-compiled
/// templates ([`Precompiled`]) can cross threads.
#[derive(Debug)]
pub(crate) struct CompiledFunc {
    /// Resolved signature, shared with the instance's type table so
    /// `call_indirect` can compare by pointer first.
    pub(crate) ty: Arc<FuncType>,
    /// Declared locals (after the parameters). Empty for host functions.
    pub(crate) locals: Vec<ValType>,
    /// Flat stack bytecode lowered from the structured body — branch
    /// targets resolved to pc offsets, block arities baked into collapse
    /// descriptors. Empty for host functions.
    pub(crate) code: FlatCode,
    /// Register bytecode lowered through SSA — the primary tier
    /// ([`Store::call`] dispatches it). Empty for host functions.
    pub(crate) reg: RegCode,
    /// Whether this index dispatches to an imported host function.
    pub(crate) is_host: bool,
}

/// The shared type table plus every function compiled to bytecode —
/// what [`precompile`] produces and a [`Precompiled`] template shares.
type CompiledTables = (Vec<Arc<FuncType>>, Vec<Arc<CompiledFunc>>);

/// Precompiles every function in `module`'s joint index space (imports
/// first, then local functions) down to flat bytecode, plus the shared
/// type table.
fn precompile(
    module: &Module,
    limits: &cage_wasm::CompileLimits,
    fuel: &cage_wasm::CompileFuel,
) -> Result<CompiledTables, cage_wasm::LimitError> {
    let types: Vec<Arc<FuncType>> = module.types.iter().cloned().map(Arc::new).collect();
    let mut funcs = Vec::with_capacity(module.total_func_count() as usize);
    for type_idx in module.imported_func_type_indices() {
        funcs.push(Arc::new(CompiledFunc {
            ty: Arc::clone(&types[type_idx as usize]),
            locals: Vec::new(),
            code: FlatCode::default(),
            reg: RegCode::default(),
            is_host: true,
        }));
    }
    for f in &module.funcs {
        let ty = Arc::clone(&types[f.type_idx as usize]);
        let code = bytecode::try_compile(module, ty.results.len(), &f.body, limits, fuel)?;
        let reg = bytecode::try_compile_reg(module, &ty, f.locals.len(), &f.body, limits, fuel)?;
        funcs.push(Arc::new(CompiledFunc {
            ty,
            locals: f.locals.clone(),
            code,
            reg,
            is_host: false,
        }));
    }
    Ok((types, funcs))
}

/// A validated, fully precompiled module template: the compile-once half
/// of instantiation (validation, flat-bytecode lowering, type-table
/// resolution), separated from the per-instance half (memory, globals,
/// tables, keys). `Send + Sync` — build it once, share it across worker
/// threads, and stamp instances out of it via
/// [`Store::instantiate_precompiled`] without re-running any compilation.
#[derive(Debug, Clone)]
pub struct Precompiled {
    pub(crate) module: Arc<Module>,
    pub(crate) types: Vec<Arc<FuncType>>,
    pub(crate) funcs: Vec<Arc<CompiledFunc>>,
}

impl Precompiled {
    /// Validates and precompiles `module` down to flat bytecode, under
    /// the default (generous) [`cage_wasm::CompileLimits`].
    ///
    /// # Errors
    ///
    /// [`InstantiateError::Validation`] when the module is invalid;
    /// [`InstantiateError::CompileLimit`] when it busts a compile bound.
    pub fn new(module: &Module) -> Result<Self, InstantiateError> {
        Self::with_limits(module, &cage_wasm::CompileLimits::default())
    }

    /// Like [`Precompiled::new`], but under caller-chosen compile
    /// limits. One fuel budget covers the whole module: validation
    /// pre-scans plus both bytecode tiers for every function.
    ///
    /// # Errors
    ///
    /// [`InstantiateError::Validation`] when the module is invalid;
    /// [`InstantiateError::CompileLimit`] when it busts a compile bound.
    pub fn with_limits(
        module: &Module,
        limits: &cage_wasm::CompileLimits,
    ) -> Result<Self, InstantiateError> {
        let fuel = limits.fuel();
        cage_wasm::validate_with_limits(module, limits, &fuel).map_err(|e| match e.limit() {
            Some(l) => InstantiateError::CompileLimit(l.clone()),
            None => InstantiateError::Validation(e),
        })?;
        let (types, funcs) = precompile(module, limits, &fuel)?;
        Ok(Precompiled {
            module: Arc::new(module.clone()),
            types,
            funcs,
        })
    }

    /// The validated module this template was compiled from.
    #[must_use]
    pub fn module(&self) -> &Module {
        &self.module
    }
}

/// Evaluates a validated constant global initialiser.
fn global_init(init: &cage_wasm::Instr) -> Value {
    match *init {
        cage_wasm::Instr::I32Const(v) => Value::I32(v),
        cage_wasm::Instr::I64Const(v) => Value::I64(v),
        cage_wasm::Instr::F32Const(bits) => Value::F32(f32::from_bits(bits)),
        cage_wasm::Instr::F64Const(bits) => Value::F64(f64::from_bits(bits)),
        _ => unreachable!("validated global initialiser"),
    }
}

/// One instantiated module.
pub(crate) struct Instance {
    pub(crate) module: Arc<Module>,
    /// Shared type table (indexes `module.types`).
    pub(crate) types: Vec<Arc<FuncType>>,
    /// Precompiled joint function index space (imports, then locals).
    pub(crate) funcs: Vec<Arc<CompiledFunc>>,
    pub(crate) memory: Option<LinearMemory>,
    pub(crate) globals: Vec<Value>,
    pub(crate) table: Vec<Option<u32>>,
    pub(crate) host_funcs: Vec<Rc<RefCell<HostFunc>>>,
    pub(crate) pac: PacSigner,
    pub(crate) pac_modifier: u64,
    pub(crate) cycles: f64,
    pub(crate) instr_count: u64,
    /// Remaining fuel (preemption budget), `None` = unlimited.
    pub(crate) fuel: Option<u64>,
    /// Fuel consumed since the last [`Store::set_fuel`]/reset.
    pub(crate) fuel_consumed: u64,
    /// Epoch deadline: trap with [`Trap::EpochInterrupt`] at the next
    /// preemption point once the store's shared epoch counter reaches
    /// this value. `None` = never.
    pub(crate) epoch_deadline: Option<u64>,
    /// Embedder-imposed resource policy (survives resets).
    pub(crate) limits: InstanceLimits,
}

/// The engine store: configuration, cost model and instances.
pub struct Store {
    pub(crate) config: ExecConfig,
    pub(crate) cost: CostModel,
    pub(crate) instances: Vec<Instance>,
    /// Engine-shared epoch counter for wall-clock preemption: an embedder
    /// thread ticks it, the dispatch loop compares it against per-instance
    /// deadlines at the charge-free preemption points. Shareable across
    /// stores via [`Store::set_epoch`].
    pub(crate) epoch: Arc<AtomicU64>,
    /// Limits applied to instances created after this point.
    default_limits: InstanceLimits,
    rng: rand::rngs::StdRng,
    next_sandbox_tag: u8,
}

impl fmt::Debug for Store {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Store")
            .field("config", &self.config)
            .field("instances", &self.instances.len())
            .finish()
    }
}

impl Store {
    /// Creates a store executing under `config`.
    #[must_use]
    pub fn new(config: ExecConfig) -> Self {
        Store {
            cost: CostModel::for_config(&config),
            rng: rand::rngs::StdRng::seed_from_u64(config.seed),
            next_sandbox_tag: 1,
            config,
            instances: Vec::new(),
            epoch: Arc::new(AtomicU64::new(0)),
            default_limits: InstanceLimits::default(),
        }
    }

    /// The execution configuration.
    #[must_use]
    pub fn config(&self) -> &ExecConfig {
        &self.config
    }

    /// The cost model in force.
    #[must_use]
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    fn tag_scheme(&mut self) -> Result<TagScheme, InstantiateError> {
        let sandbox = self.config.bounds == BoundsCheckStrategy::MteSandbox;
        let internal_mte = self.config.internal == InternalSafety::Mte;
        let internal_sw = self.config.internal == InternalSafety::Software;
        Ok(match (sandbox, internal_mte || internal_sw) {
            (false, false) => TagScheme::None,
            (false, true) => TagScheme::InternalOnly,
            (true, false) => {
                if self.next_sandbox_tag > 15 {
                    if !self.config.sandbox_tag_reuse {
                        return Err(InstantiateError::TooManySandboxes);
                    }
                    // Future-work mode (§6.4): wrap around. Instances with
                    // equal tags live in disjoint address ranges separated
                    // by guard pages, so the shared tag is unreachable
                    // across sandboxes.
                    self.next_sandbox_tag = 1;
                }
                let tag = Tag::new(self.next_sandbox_tag).expect("1..=15");
                self.next_sandbox_tag += 1;
                TagScheme::ExternalOnly { instance_tag: tag }
            }
            (true, true) => {
                // Combined mode isolates a single instance (§6.4).
                if self.instances.iter().any(|i| {
                    i.memory
                        .as_ref()
                        .is_some_and(|m| m.scheme() == TagScheme::Combined)
                }) {
                    return Err(InstantiateError::TooManySandboxes);
                }
                TagScheme::Combined
            }
        })
    }

    /// Instantiates `module`, resolving its imports from `imports`.
    ///
    /// Validates, allocates and pre-tags the linear memory, initialises
    /// table and data segments, generates the per-instance PAC key and
    /// modifier, and runs the start function.
    ///
    /// # Errors
    ///
    /// See [`InstantiateError`].
    pub fn instantiate(
        &mut self,
        module: &Module,
        imports: &Imports,
    ) -> Result<InstanceHandle, InstantiateError> {
        validate(module)?;
        // Direct instantiation is the trusted embedder path (the engine's
        // own tests instantiate pathologically deep fixtures); untrusted
        // modules go through `Precompiled::with_limits`.
        let limits = cage_wasm::CompileLimits::unlimited();
        let (types, funcs) = precompile(module, &limits, &limits.fuel())?;
        self.instantiate_prepared(Arc::new(module.clone()), types, funcs, imports)
    }

    /// Instantiates a [`Precompiled`] template: the cheap per-instance
    /// half only — no validation, no bytecode lowering, the shared type
    /// and function tables are reference-counted from the template.
    ///
    /// # Errors
    ///
    /// See [`InstantiateError`] (everything except `Validation`).
    pub fn instantiate_precompiled(
        &mut self,
        pre: &Precompiled,
        imports: &Imports,
    ) -> Result<InstanceHandle, InstantiateError> {
        self.instantiate_prepared(
            Arc::clone(&pre.module),
            pre.types.clone(),
            pre.funcs.clone(),
            imports,
        )
    }

    fn instantiate_prepared(
        &mut self,
        module: Arc<Module>,
        types: Vec<Arc<FuncType>>,
        funcs: Vec<Arc<CompiledFunc>>,
        imports: &Imports,
    ) -> Result<InstanceHandle, InstantiateError> {
        let mut host_funcs = Vec::new();
        for import in &module.imports {
            match &import.kind {
                ImportKind::Func(_) => {
                    let f = imports
                        .resolve(&import.module, &import.name)
                        .ok_or_else(|| InstantiateError::MissingImport {
                            module: import.module.clone(),
                            name: import.name.clone(),
                        })?;
                    host_funcs.push(f);
                }
                other => return Err(InstantiateError::UnsupportedImport(format!("{other:?}"))),
            }
        }

        let limits = self.default_limits;
        let memory = match module.memory_type() {
            Some(ty) => {
                if let Some(cap) = limits.max_memory_pages {
                    if ty.limits.min > cap {
                        return Err(InstantiateError::LimitExceeded(format!(
                            "initial memory of {} pages exceeds the {cap}-page policy",
                            ty.limits.min
                        )));
                    }
                }
                let scheme = if self.config.mte_active() {
                    self.tag_scheme()?
                } else {
                    TagScheme::None
                };
                let mode = if self.config.mte_active() {
                    self.config.mte_mode
                } else {
                    MteMode::Disabled
                };
                let mut mem = LinearMemory::try_new(
                    ty.limits.min,
                    ty.limits.max,
                    ty.memory64,
                    scheme,
                    mode,
                    self.rng.gen(),
                )
                .map_err(InstantiateError::LimitExceeded)?;
                mem.set_page_limit(limits.max_memory_pages);
                Some(mem)
            }
            None => None,
        };

        let globals = module
            .globals
            .iter()
            .map(|g| global_init(&g.init))
            .collect();

        let table_min = module.tables.first().map_or(0, |t| t.limits.min);
        let table_size = usize::try_from(table_min).map_err(|_| {
            InstantiateError::LimitExceeded(format!(
                "table of {table_min} elements is unallocatable"
            ))
        })?;
        if let Some(cap) = limits.max_table_elements {
            if table_size > cap {
                return Err(InstantiateError::LimitExceeded(format!(
                    "table of {table_size} elements exceeds the {cap}-element policy"
                )));
            }
        }
        // A hostile module can declare any table size; allocate fallibly
        // so an absurd declaration is an error, not an OOM abort.
        let mut table: Vec<Option<u32>> = Vec::new();
        table.try_reserve_exact(table_size).map_err(|_| {
            InstantiateError::LimitExceeded(format!(
                "table of {table_size} elements is unallocatable"
            ))
        })?;
        table.resize(table_size, None);
        for elem in &module.elems {
            let start =
                usize::try_from(elem.offset).map_err(|_| InstantiateError::SegmentOutOfRange)?;
            // `start + len` is checked, not assumed: a segment offset near
            // `usize::MAX` must not wrap past the bounds test below.
            let end = start
                .checked_add(elem.funcs.len())
                .ok_or(InstantiateError::SegmentOutOfRange)?;
            if end > table.len() {
                return Err(InstantiateError::SegmentOutOfRange);
            }
            for (i, f) in elem.funcs.iter().enumerate() {
                table[start + i] = Some(*f);
            }
        }

        let mut instance = Instance {
            module: Arc::clone(&module),
            types,
            funcs,
            memory,
            globals,
            table,
            host_funcs,
            // A fresh key per instance: leaked signed pointers are useless
            // elsewhere (§4.2).
            pac: PacSigner::new(
                PacKey::generate(&mut self.rng),
                if self.config.mte_active() {
                    PointerLayout::MtePac
                } else {
                    PointerLayout::PacOnly
                },
                self.config.fpac,
            ),
            // PAC keys are per-process on hardware; co-resident instances
            // are distinguished by a random modifier (§6.3).
            pac_modifier: self.rng.gen(),
            cycles: 0.0,
            instr_count: 0,
            fuel: None,
            fuel_consumed: 0,
            epoch_deadline: None,
            limits,
        };

        for data in &module.data {
            let mem = instance
                .memory
                .as_mut()
                .expect("validated: data implies memory");
            let end = data
                .offset
                .checked_add(data.bytes.len() as u64)
                .ok_or(InstantiateError::SegmentOutOfRange)?;
            if end > mem.size() {
                return Err(InstantiateError::SegmentOutOfRange);
            }
            // Initialisation is performed by the runtime, outside the
            // guest's checked path.
            mem.write_resolved(data.offset, &data.bytes);
        }

        self.instances.push(instance);
        let handle = InstanceHandle(self.instances.len() - 1);

        if let Some(start) = module.start {
            self.call(handle, start, &[])
                .map_err(InstantiateError::Start)?;
        }
        Ok(handle)
    }

    /// Invokes the export `name` with `args`.
    ///
    /// # Errors
    ///
    /// Traps from guest execution, or a host trap if the export is missing.
    pub fn invoke(
        &mut self,
        handle: InstanceHandle,
        name: &str,
        args: &[Value],
    ) -> Result<Vec<Value>, Trap> {
        let func_idx = {
            let inst = &self.instances[handle.0];
            match inst.module.export(name).map(|e| e.kind) {
                Some(cage_wasm::ExportKind::Func(i)) => i,
                _ => return Err(Trap::Host(format!("no exported function \"{name}\""))),
            }
        };
        self.call(handle, func_idx, args)
    }

    /// Calls a function by index on the register tier (the primary
    /// execution path: SSA-lowered 3-address bytecode over a per-frame
    /// register file).
    ///
    /// # Errors
    ///
    /// Propagates traps, including deferred asynchronous MTE faults
    /// surfaced at the call boundary.
    pub fn call(
        &mut self,
        handle: InstanceHandle,
        func_idx: u32,
        args: &[Value],
    ) -> Result<Vec<Value>, Trap> {
        let mut interp = Interp::new(self, handle.0);
        let results = interp.call_function_reg(func_idx, args)?;
        // Surface deferred asynchronous tag faults, as the kernel does at
        // context-switch time.
        if let Some(mem) = self.instances[handle.0].memory.as_mut() {
            if let Some(fault) = mem.take_async_fault() {
                return Err(Trap::AsyncTagCheck(fault));
            }
        }
        Ok(results)
    }

    /// Calls a function by index through the flat *stack* bytecode tier
    /// — the previous primary path, kept as a differential-testing
    /// reference alongside the tree oracle. Mirrors [`Store::call`]
    /// exactly, including surfacing of deferred asynchronous MTE faults.
    /// Not part of the supported embedder API.
    ///
    /// # Errors
    ///
    /// Propagates traps, exactly as [`Store::call`] does.
    #[doc(hidden)]
    pub fn call_stack(
        &mut self,
        handle: InstanceHandle,
        func_idx: u32,
        args: &[Value],
    ) -> Result<Vec<Value>, Trap> {
        let mut interp = Interp::new(self, handle.0);
        let results = interp.call_function(func_idx, args)?;
        if let Some(mem) = self.instances[handle.0].memory.as_mut() {
            if let Some(fault) = mem.take_async_fault() {
                return Err(Trap::AsyncTagCheck(fault));
            }
        }
        Ok(results)
    }

    /// Calls a function by index through the structured tree walker — the
    /// pre-flat-bytecode interpreter kept as the differential-testing
    /// oracle (the in-crate difftest and the trap-matrix integration test
    /// compare it against the threaded dispatcher). Mirrors
    /// [`Store::call`] exactly, including surfacing of deferred
    /// asynchronous MTE faults. Not part of the supported embedder API.
    #[doc(hidden)]
    pub fn call_tree(
        &mut self,
        handle: InstanceHandle,
        func_idx: u32,
        args: &[Value],
    ) -> Result<Vec<Value>, Trap> {
        let mut interp = Interp::new(self, handle.0);
        let results = interp.call_function_tree(func_idx, args)?;
        if let Some(mem) = self.instances[handle.0].memory.as_mut() {
            if let Some(fault) = mem.take_async_fault() {
                return Err(Trap::AsyncTagCheck(fault));
            }
        }
        Ok(results)
    }

    /// Simulated cycles charged to `handle` so far.
    #[must_use]
    pub fn cycles(&self, handle: InstanceHandle) -> f64 {
        self.instances[handle.0].cycles
    }

    /// Simulated milliseconds for `handle` on the configured core.
    #[must_use]
    pub fn simulated_ms(&self, handle: InstanceHandle) -> f64 {
        self.cost.cycles_to_ms(self.cycles(handle))
    }

    /// Instructions retired by `handle`.
    #[must_use]
    pub fn instr_count(&self, handle: InstanceHandle) -> u64 {
        self.instances[handle.0].instr_count
    }

    /// Resets the cycle/instruction counters of `handle` (between benchmark
    /// phases).
    pub fn reset_counters(&mut self, handle: InstanceHandle) {
        let inst = &mut self.instances[handle.0];
        inst.cycles = 0.0;
        inst.instr_count = 0;
    }

    /// Sets (or clears, with `None`) the fuel budget of `handle` and
    /// zeroes its consumed-fuel counter.
    ///
    /// Fuel is a deterministic preemption mechanism for multi-tenant
    /// serving: one unit is consumed at every control transition of the
    /// flat dispatch loop (branch taken, function entered or returned
    /// from), and execution traps with [`Trap::FuelExhausted`] when the
    /// budget hits zero — at the identical instruction count and cycle
    /// bits on every run of the same program. Fuel checks ride on the
    /// charge-free control ops, so cycle accounting is unaffected. The
    /// tree-walking differential oracle (`Store::call_tree`) does not
    /// implement fuel; it models wasm semantics, not embedder preemption.
    pub fn set_fuel(&mut self, handle: InstanceHandle, fuel: Option<u64>) {
        let inst = &mut self.instances[handle.0];
        inst.fuel = fuel;
        inst.fuel_consumed = 0;
    }

    /// Remaining fuel of `handle` (`None` = unlimited).
    #[must_use]
    pub fn fuel_remaining(&self, handle: InstanceHandle) -> Option<u64> {
        self.instances[handle.0].fuel
    }

    /// Fuel consumed by `handle` since the last [`Store::set_fuel`].
    #[must_use]
    pub fn fuel_consumed(&self, handle: InstanceHandle) -> u64 {
        self.instances[handle.0].fuel_consumed
    }

    /// The store's shared epoch counter. Clone the `Arc` into an embedder
    /// thread and tick it ([`AtomicU64::fetch_add`]) on a timer; guests
    /// whose deadline ([`Store::set_epoch_deadline`]) has passed trap with
    /// [`Trap::EpochInterrupt`] at their next preemption point.
    #[must_use]
    pub fn epoch(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.epoch)
    }

    /// Replaces the store's epoch counter with a shared one, so a single
    /// ticker thread can preempt guests across many stores (one per
    /// serving worker). Existing deadlines are interpreted against the
    /// new counter.
    pub fn set_epoch(&mut self, epoch: Arc<AtomicU64>) {
        self.epoch = epoch;
    }

    /// Current value of the epoch counter.
    #[must_use]
    pub fn current_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Ticks the epoch counter by one and returns the new value. Takes
    /// `&self`: callable through the shared `Arc` from any thread.
    pub fn increment_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Sets (or clears, with `None`) the *absolute* epoch deadline of
    /// `handle`: once `current_epoch() >= deadline`, execution traps with
    /// [`Trap::EpochInterrupt`] at the next preemption point.
    ///
    /// Epoch preemption is the wall-clock complement to fuel: the check
    /// rides on the identical charge-free control transitions (branch
    /// taken, function entered or returned from), charges nothing, and so
    /// leaves cycle accounting byte-for-byte untouched — but the *trigger*
    /// is an external timer, not a deterministic count. A deadline at or
    /// below the current epoch traps at the very first preemption point,
    /// which is what the determinism tests pin. Like fuel, the deadline is
    /// cleared by [`Store::reset_instance`], and the tree-walking oracle
    /// does not implement it.
    pub fn set_epoch_deadline(&mut self, handle: InstanceHandle, deadline: Option<u64>) {
        self.instances[handle.0].epoch_deadline = deadline;
    }

    /// The absolute epoch deadline of `handle` (`None` = never).
    #[must_use]
    pub fn epoch_deadline(&self, handle: InstanceHandle) -> Option<u64> {
        self.instances[handle.0].epoch_deadline
    }

    /// Sets the [`InstanceLimits`] policy applied to instances created
    /// *after* this call. Instantiation fails with
    /// [`InstantiateError::LimitExceeded`] when a module's initial memory
    /// or table already exceeds the policy.
    pub fn set_default_limits(&mut self, limits: InstanceLimits) {
        self.default_limits = limits;
    }

    /// The limits policy for subsequently created instances.
    #[must_use]
    pub fn default_limits(&self) -> InstanceLimits {
        self.default_limits
    }

    /// Installs a limits policy on an existing instance. Memory already
    /// grown past a new, tighter `max_memory_pages` is not reclaimed —
    /// the cap bites at the next `memory.grow`.
    pub fn set_instance_limits(&mut self, handle: InstanceHandle, limits: InstanceLimits) {
        let inst = &mut self.instances[handle.0];
        inst.limits = limits;
        if let Some(mem) = inst.memory.as_mut() {
            mem.set_page_limit(limits.max_memory_pages);
        }
    }

    /// The limits policy of `handle`.
    #[must_use]
    pub fn instance_limits(&self, handle: InstanceHandle) -> InstanceLimits {
        self.instances[handle.0].limits
    }

    /// Resets `handle` back to its freshly-instantiated state in place:
    /// linear memory (dirty pages re-zeroed and re-tagged, data segments
    /// re-applied), globals, table, counters and fuel — then re-runs the
    /// start function, exactly like a fresh instantiation would.
    ///
    /// The instance keeps its identity: sandbox tag, memory tag seed, PAC
    /// key and modifier are unchanged, so a reset instance is
    /// bit-identical to the first instance of a fresh store with the same
    /// config (the reset-equivalence difftest oracle pins this). Cost is
    /// O(pages touched since the last reset), not O(memory size).
    ///
    /// # Errors
    ///
    /// Propagates a trapping start function.
    pub fn reset_instance(&mut self, handle: InstanceHandle) -> Result<(), Trap> {
        let module = Arc::clone(&self.instances[handle.0].module);
        {
            let inst = &mut self.instances[handle.0];
            if let Some(mem) = inst.memory.as_mut() {
                mem.reset();
                for data in &module.data {
                    // Range-checked at first instantiation; the reset
                    // memory is back at its original size.
                    mem.write_resolved(data.offset, &data.bytes);
                }
            }
            for (g, decl) in inst.globals.iter_mut().zip(&module.globals) {
                *g = global_init(&decl.init);
            }
            for slot in &mut inst.table {
                *slot = None;
            }
            for elem in &module.elems {
                for (i, f) in elem.funcs.iter().enumerate() {
                    inst.table[elem.offset as usize + i] = Some(*f);
                }
            }
            inst.cycles = 0.0;
            inst.instr_count = 0;
            inst.fuel = None;
            inst.fuel_consumed = 0;
            // Preemption state is per-checkout embedder policy, cleared
            // like fuel; the resource-limit policy is part of the
            // instance's identity and survives (including the memory's
            // page cap, which `LinearMemory::reset` preserves).
            inst.epoch_deadline = None;
        }
        if let Some(start) = module.start {
            self.call(handle, start, &[])?;
        }
        Ok(())
    }

    /// The module an instance was created from (export/type lookups for
    /// typed calls).
    #[must_use]
    pub fn module(&self, handle: InstanceHandle) -> &Module {
        &self.instances[handle.0].module
    }

    /// Read access to an instance's memory.
    #[must_use]
    pub fn memory(&self, handle: InstanceHandle) -> Option<&LinearMemory> {
        self.instances[handle.0].memory.as_ref()
    }

    /// Mutable access to an instance's memory (embedder-side I/O).
    pub fn memory_mut(&mut self, handle: InstanceHandle) -> Option<&mut LinearMemory> {
        self.instances[handle.0].memory.as_mut()
    }

    /// Signs `ptr` with `handle`'s instance key — the runtime-side
    /// operation backing `i64.pointer_sign` (exposed for tests and the
    /// cross-instance experiments).
    #[must_use]
    pub fn sign_pointer(&self, handle: InstanceHandle, ptr: u64) -> u64 {
        let inst = &self.instances[handle.0];
        inst.pac.sign(ptr, inst.pac_modifier)
    }

    /// Authenticates `ptr` under `handle`'s instance key.
    ///
    /// # Errors
    ///
    /// [`Trap::PointerAuth`] when the signature does not verify.
    pub fn auth_pointer(&self, handle: InstanceHandle, ptr: u64) -> Result<u64, Trap> {
        let inst = &self.instances[handle.0];
        Ok(inst.pac.auth(ptr, inst.pac_modifier)?)
    }

    /// Reads an exported global's current value.
    #[must_use]
    pub fn global(&self, handle: InstanceHandle, name: &str) -> Option<Value> {
        let inst = &self.instances[handle.0];
        match inst.module.export(name).map(|e| e.kind) {
            Some(cage_wasm::ExportKind::Global(i)) => inst.globals.get(i as usize).copied(),
            _ => None,
        }
    }

    /// Number of live instances.
    #[must_use]
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cage_wasm::builder::ModuleBuilder;
    use cage_wasm::{Instr, ValType};

    fn add_module() -> Module {
        let mut b = ModuleBuilder::new();
        let f = b.add_function(
            &[ValType::I64, ValType::I64],
            &[ValType::I64],
            &[],
            vec![Instr::LocalGet(0), Instr::LocalGet(1), Instr::I64Add],
        );
        b.export_func("add", f);
        b.build()
    }

    #[test]
    fn instantiate_and_invoke() {
        let mut store = Store::new(ExecConfig::default());
        let h = store.instantiate(&add_module(), &Imports::new()).unwrap();
        let out = store
            .invoke(h, "add", &[Value::I64(40), Value::I64(2)])
            .unwrap();
        assert_eq!(out, vec![Value::I64(42)]);
        assert!(store.cycles(h) > 0.0);
        assert!(store.instr_count(h) >= 3);
    }

    #[test]
    fn wrong_arity_or_bad_index_traps_instead_of_panicking() {
        let mut store = Store::new(ExecConfig::default());
        let h = store.instantiate(&add_module(), &Imports::new()).unwrap();
        // Too few arguments.
        assert!(matches!(store.invoke(h, "add", &[]), Err(Trap::Host(_))));
        // Too many arguments must not leak extras into the results.
        let args = [Value::I64(1), Value::I64(2), Value::I64(3)];
        assert!(matches!(store.invoke(h, "add", &args), Err(Trap::Host(_))));
        // Out-of-range function index on the raw call API.
        assert!(matches!(store.call(h, 99, &[]), Err(Trap::Host(_))));
        // The instance still works afterwards.
        assert_eq!(
            store
                .invoke(h, "add", &[Value::I64(2), Value::I64(3)])
                .unwrap(),
            vec![Value::I64(5)]
        );
    }

    #[test]
    fn wrong_argument_type_traps_instead_of_reinterpreting() {
        // Untagged slots carry no runtime tag, so the entry check is the
        // only thing standing between a mistyped embedder argument and
        // silent bit reinterpretation.
        let mut store = Store::new(ExecConfig::default());
        let h = store.instantiate(&add_module(), &Imports::new()).unwrap();
        let err = store
            .invoke(h, "add", &[Value::F64(2.0), Value::I64(40)])
            .unwrap_err();
        assert!(matches!(err, Trap::Host(_)), "{err}");
        // Still callable with correct types afterwards.
        assert_eq!(
            store
                .invoke(h, "add", &[Value::I64(2), Value::I64(40)])
                .unwrap(),
            vec![Value::I64(42)]
        );
    }

    #[test]
    fn host_result_arity_and_type_mismatches_trap() {
        use crate::host::HostFunc;
        let mut b = ModuleBuilder::new();
        b.import_func("env", "bad_ty", &[], &[ValType::I64]);
        b.import_func("env", "bad_arity", &[], &[ValType::I64]);
        let call_ty = b.add_function(&[], &[ValType::I64], &[], vec![Instr::Call(0)]);
        let call_arity = b.add_function(&[], &[ValType::I64], &[], vec![Instr::Call(1)]);
        b.export_func("call_ty", call_ty);
        b.export_func("call_arity", call_arity);
        let mut imports = Imports::new();
        imports.define(
            "env",
            "bad_ty",
            HostFunc::new(&[], &[ValType::I64], |_, _| Ok(vec![Value::F64(1.0)])),
        );
        imports.define(
            "env",
            "bad_arity",
            HostFunc::new(&[], &[ValType::I64], |_, _| Ok(vec![])),
        );
        let mut store = Store::new(ExecConfig::default());
        let h = store.instantiate(&b.build(), &imports).unwrap();
        let err = store.invoke(h, "call_ty", &[]).unwrap_err();
        assert!(matches!(err, Trap::Host(_)), "{err}");
        let err = store.invoke(h, "call_arity", &[]).unwrap_err();
        assert!(matches!(err, Trap::Host(_)), "{err}");
    }

    #[test]
    fn missing_export_is_a_host_trap() {
        let mut store = Store::new(ExecConfig::default());
        let h = store.instantiate(&add_module(), &Imports::new()).unwrap();
        assert!(matches!(store.invoke(h, "nope", &[]), Err(Trap::Host(_))));
    }

    #[test]
    fn missing_import_fails_instantiation() {
        let mut b = ModuleBuilder::new();
        b.import_func("env", "ghost", &[], &[]);
        b.add_function(&[], &[], &[], vec![]);
        let mut store = Store::new(ExecConfig::default());
        let err = store.instantiate(&b.build(), &Imports::new()).unwrap_err();
        assert!(matches!(err, InstantiateError::MissingImport { .. }));
    }

    #[test]
    fn sandbox_tag_limit_is_15() {
        let config = ExecConfig {
            bounds: BoundsCheckStrategy::MteSandbox,
            ..ExecConfig::default()
        };
        let mut store = Store::new(config);
        let mut b = ModuleBuilder::new();
        b.add_memory64(1);
        let module = b.build();
        for i in 0..15 {
            store
                .instantiate(&module, &Imports::new())
                .unwrap_or_else(|e| panic!("instance {i}: {e}"));
        }
        let err = store.instantiate(&module, &Imports::new()).unwrap_err();
        assert!(matches!(err, InstantiateError::TooManySandboxes));
    }

    #[test]
    fn combined_mode_allows_a_single_instance() {
        let config = ExecConfig {
            bounds: BoundsCheckStrategy::MteSandbox,
            internal: InternalSafety::Mte,
            ..ExecConfig::default()
        };
        let mut store = Store::new(config);
        let mut b = ModuleBuilder::new();
        b.add_memory64(1);
        let module = b.build();
        store.instantiate(&module, &Imports::new()).unwrap();
        assert!(matches!(
            store.instantiate(&module, &Imports::new()),
            Err(InstantiateError::TooManySandboxes)
        ));
    }

    #[test]
    fn data_segments_initialise_memory() {
        let mut b = ModuleBuilder::new();
        b.add_memory64(1);
        b.add_data(64, vec![1, 2, 3]);
        let mut store = Store::new(ExecConfig::default());
        let h = store.instantiate(&b.build(), &Imports::new()).unwrap();
        let mem = store.memory(h).unwrap();
        assert_eq!(mem.read_resolved(64, 3), &[1, 2, 3]);
    }

    #[test]
    fn data_segment_out_of_range_rejected() {
        let mut b = ModuleBuilder::new();
        b.add_memory64(1);
        b.add_data(cage_wasm::types::PAGE_SIZE - 1, vec![1, 2, 3]);
        let mut store = Store::new(ExecConfig::default());
        assert!(matches!(
            store.instantiate(&b.build(), &Imports::new()),
            Err(InstantiateError::SegmentOutOfRange)
        ));
    }

    #[test]
    fn cross_instance_pointer_signatures_differ() {
        // §4.2: each instance generates its own key, so a pointer signed in
        // one instance fails authentication in another.
        let config = ExecConfig {
            pointer_auth: true,
            ..ExecConfig::default()
        };
        let mut store = Store::new(config);
        let m = add_module();
        let a = store.instantiate(&m, &Imports::new()).unwrap();
        let b = store.instantiate(&m, &Imports::new()).unwrap();
        let signed = store.sign_pointer(a, 0x1000);
        assert!(store.auth_pointer(a, signed).is_ok());
        assert!(store.auth_pointer(b, signed).is_err());
    }

    #[test]
    fn start_function_runs() {
        let mut b = ModuleBuilder::new();
        b.add_memory64(1);
        let g = b.add_global(ValType::I64, true, Instr::I64Const(0));
        let start = b.add_function(
            &[],
            &[],
            &[],
            vec![Instr::I64Const(99), Instr::GlobalSet(g)],
        );
        let get = b.add_function(&[], &[ValType::I64], &[], vec![Instr::GlobalGet(g)]);
        b.set_start(start);
        b.export_func("get", get);
        let mut store = Store::new(ExecConfig::default());
        let h = store.instantiate(&b.build(), &Imports::new()).unwrap();
        assert_eq!(store.invoke(h, "get", &[]).unwrap(), vec![Value::I64(99)]);
    }

    #[test]
    fn reset_counters_zeroes_accounting() {
        let mut store = Store::new(ExecConfig::default());
        let h = store.instantiate(&add_module(), &Imports::new()).unwrap();
        store
            .invoke(h, "add", &[Value::I64(1), Value::I64(2)])
            .unwrap();
        assert!(store.cycles(h) > 0.0);
        store.reset_counters(h);
        assert_eq!(store.cycles(h), 0.0);
        assert_eq!(store.instr_count(h), 0);
    }
}
