//! Host functions: the embedder side of WASM imports.
//!
//! `cage-libc` registers its hardened allocator and WASI-lite shims as host
//! functions; guests import them like wasi-libc imports the system
//! interface. Host functions receive a [`HostContext`] giving checked
//! access to the calling instance's linear memory — including the segment
//! primitives, so a host-side allocator can create and free segments
//! exactly like the paper's dlmalloc modification does from guest code.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use cage_wasm::ValType;

use crate::config::ExecConfig;
use crate::memory::LinearMemory;
use crate::trap::Trap;
use crate::value::Value;

/// Context passed to a host function during a call.
pub struct HostContext<'a> {
    /// The calling instance's memory, if it has one.
    pub memory: Option<&'a mut LinearMemory>,
    /// The engine configuration in force.
    pub config: &'a ExecConfig,
    /// Cycle accumulator: host functions may charge simulated time.
    pub cycles: &'a mut f64,
}

impl HostContext<'_> {
    /// The instance memory.
    ///
    /// # Errors
    ///
    /// Returns a host trap when the instance has no memory.
    pub fn memory(&mut self) -> Result<&mut LinearMemory, Trap> {
        self.memory
            .as_deref_mut()
            .ok_or_else(|| Trap::Host("host function requires a memory".into()))
    }

    /// Reads guest memory through the configured checks.
    ///
    /// # Errors
    ///
    /// Propagates bounds/tag traps.
    pub fn read_bytes(&mut self, ptr: u64, len: u64) -> Result<Vec<u8>, Trap> {
        let config = *self.config;
        self.memory()?.read(ptr, 0, len, &config)
    }

    /// Writes guest memory through the configured checks.
    ///
    /// # Errors
    ///
    /// Propagates bounds/tag traps.
    pub fn write_bytes(&mut self, ptr: u64, bytes: &[u8]) -> Result<(), Trap> {
        let config = *self.config;
        self.memory()?.write(ptr, 0, bytes, &config)
    }

    /// Charges `cycles` of simulated time to the caller.
    pub fn charge(&mut self, cycles: f64) {
        *self.cycles += cycles;
    }
}

/// The boxed host-function signature.
pub type HostFn = Box<dyn FnMut(&mut HostContext<'_>, &[Value]) -> Result<Vec<Value>, Trap>>;

/// A host function with its WASM-visible type.
pub struct HostFunc {
    /// Parameter types.
    pub params: Vec<ValType>,
    /// Result types.
    pub results: Vec<ValType>,
    /// The implementation.
    pub func: HostFn,
}

impl HostFunc {
    /// Wraps a closure with its type.
    pub fn new<F>(params: &[ValType], results: &[ValType], func: F) -> Self
    where
        F: FnMut(&mut HostContext<'_>, &[Value]) -> Result<Vec<Value>, Trap> + 'static,
    {
        HostFunc {
            params: params.to_vec(),
            results: results.to_vec(),
            func: Box::new(func),
        }
    }
}

impl std::fmt::Debug for HostFunc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HostFunc({:?} -> {:?})", self.params, self.results)
    }
}

/// A set of named host functions to satisfy a module's imports.
///
/// Cloning is cheap: entries are shared handles, so a clone registers the
/// *same* host functions (and their captured state) — which is what a
/// `Linker` wants when it instantiates many modules against one host
/// surface.
#[derive(Debug, Default, Clone)]
pub struct Imports {
    map: HashMap<(String, String), Rc<RefCell<HostFunc>>>,
}

impl Imports {
    /// An empty import set.
    #[must_use]
    pub fn new() -> Self {
        Imports::default()
    }

    /// Copies every entry of `other` into `self` (shared handles),
    /// replacing entries with the same `module.name`.
    pub fn merge_from(&mut self, other: &Imports) {
        for (key, func) in &other.map {
            self.map.insert(key.clone(), Rc::clone(func));
        }
    }

    /// Registers `func` under `module.name`, replacing any previous entry.
    pub fn define(&mut self, module: &str, name: &str, func: HostFunc) -> &mut Self {
        self.map.insert(
            (module.to_string(), name.to_string()),
            Rc::new(RefCell::new(func)),
        );
        self
    }

    /// Looks up an import.
    #[must_use]
    pub fn resolve(&self, module: &str, name: &str) -> Option<Rc<RefCell<HostFunc>>> {
        self.map
            .get(&(module.to_string(), name.to_string()))
            .cloned()
    }

    /// Number of registered functions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no functions are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn define_and_resolve() {
        let mut imports = Imports::new();
        imports.define(
            "env",
            "answer",
            HostFunc::new(&[], &[ValType::I32], |_, _| Ok(vec![Value::I32(42)])),
        );
        assert!(imports.resolve("env", "answer").is_some());
        assert!(imports.resolve("env", "missing").is_none());
        assert_eq!(imports.len(), 1);
        assert!(!imports.is_empty());
    }

    #[test]
    fn redefinition_replaces() {
        let mut imports = Imports::new();
        imports.define("m", "f", HostFunc::new(&[], &[], |_, _| Ok(vec![])));
        imports.define(
            "m",
            "f",
            HostFunc::new(&[ValType::I64], &[], |_, _| Ok(vec![])),
        );
        assert_eq!(imports.len(), 1);
        let f = imports.resolve("m", "f").unwrap();
        assert_eq!(f.borrow().params, vec![ValType::I64]);
    }

    #[test]
    fn host_context_charges_cycles() {
        let config = ExecConfig::default();
        let mut cycles = 0.0;
        let mut ctx = HostContext {
            memory: None,
            config: &config,
            cycles: &mut cycles,
        };
        ctx.charge(12.5);
        assert_eq!(cycles, 12.5);
    }

    #[test]
    fn host_context_without_memory_errors() {
        let config = ExecConfig::default();
        let mut cycles = 0.0;
        let mut ctx = HostContext {
            memory: None,
            config: &config,
            cycles: &mut cycles,
        };
        assert!(matches!(ctx.read_bytes(0, 1), Err(Trap::Host(_))));
    }
}
