//! # cage-engine — WASM interpreter with Cage semantics and cycle accounting
//!
//! The execution substrate of the Cage reproduction, standing in for
//! wasmtime + Cranelift on the paper's Pixel 8 (see `DESIGN.md` §2). It
//! provides:
//!
//! * a complete interpreter for the `cage-wasm` instruction set, including
//!   the paper's Fig. 11 small-step semantics for `segment.new`,
//!   `segment.set_tag`, `segment.free`, `i64.pointer_sign` and
//!   `i64.pointer_auth`;
//! * the three sandboxing strategies of §2.1/§6.4 — explicit software
//!   bounds checks, guard pages (wasm32 only) and MTE-based sandboxing with
//!   the Fig. 13 index masking;
//! * internal memory safety (tag-checked loads/stores) in hardware-MTE and
//!   software-fallback flavours plus a disabled mode, per the paper's
//!   deployment model ("Cage can also be deployed on any platform ... with
//!   an equivalent software fallback");
//! * deterministic cycle accounting parameterised by Tensor G3 core
//!   ([`cost::CostModel`]), which is how the reproduction regenerates the
//!   paper's relative performance results without Arm hardware.
//!
//! ## Example
//!
//! ```
//! use cage_engine::{ExecConfig, Store, Value};
//! use cage_wasm::{builder::ModuleBuilder, Instr, ValType};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = ModuleBuilder::new();
//! let f = b.add_function(
//!     &[ValType::I64, ValType::I64],
//!     &[ValType::I64],
//!     &[],
//!     vec![Instr::LocalGet(0), Instr::LocalGet(1), Instr::I64Add],
//! );
//! b.export_func("add", f);
//! let module = b.build();
//!
//! let mut store = Store::new(ExecConfig::default());
//! let inst = store.instantiate(&module, &Default::default())?;
//! let out = store.invoke(inst, "add", &[Value::I64(2), Value::I64(40)])?;
//! assert_eq!(out, vec![Value::I64(42)]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bytecode;
pub mod config;
pub mod cost;
#[cfg(test)]
mod difftest;
pub mod host;
pub mod interp;
pub mod memory;
pub mod store;
pub mod trap;
pub mod typed;
pub mod value;

pub use bytecode::{disassemble, disassemble_stack};
pub use config::{BoundsCheckStrategy, ExecConfig, InternalSafety};
pub use cost::{CostModel, InstrClass};
pub use host::{HostContext, HostFunc, Imports};
pub use memory::{LinearMemory, TagScheme};
pub use store::{InstanceHandle, InstanceLimits, InstantiateError, Precompiled, Store};
pub use trap::Trap;
pub use typed::{WasmParams, WasmResults, WasmTy};
pub use value::Value;
