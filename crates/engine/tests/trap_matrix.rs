//! Trap-conformance matrix for the memory superinstructions.
//!
//! Every `LoadOp`/`StoreOp` width is executed at a matrix of addresses
//! (in-bounds, granule-straddling, exactly-at-end, one-past-end, far
//! out-of-bounds) under all four tag schemes, through three paths:
//!
//! * the **fused fast path** (`local.get addr; load/store` fuses into
//!   `LoadR`/`StoreRR`, which hits the cached untagged fast path when no
//!   tag scheme is live);
//! * the **unfused slow path** (a block boundary fences fusion, so the
//!   plain stack-address `Load`/`Store` ops run — and under tag schemes,
//!   the full `resolve()` policy ladder);
//! * the **tree oracle** (the pre-flat-bytecode structured walker, which
//!   never fuses anything).
//!
//! All three must agree on the trap kind *and payload*, and — because the
//! fused ops replay their constituents' cycle charges in order — on the
//! cycle-counter bits and retired-instruction counts too.
//!
//! A separate `FuelExhausted` row pins deterministic preemption: the same
//! program under the same fuel budget traps at the identical instruction
//! count and cycle bits, across runs and across lowerings.

use cage_engine::{BoundsCheckStrategy, ExecConfig, Imports, InternalSafety, Store, Trap, Value};
use cage_wasm::builder::ModuleBuilder;
use cage_wasm::instr::{LoadOp, StoreOp};
use cage_wasm::{BlockType, Instr, MemArg, Module, ValType};

const PAGE: u64 = 65_536;

/// Locals after the i64 address parameter: one zero value per type, so
/// stores of every width have a register operand of the right type.
const I32_VAL: u32 = 1;
const I64_VAL: u32 = 2;
const F32_VAL: u32 = 3;
const F64_VAL: u32 = 4;

fn value_local(ty: ValType) -> u32 {
    match ty {
        ValType::I32 => I32_VAL,
        ValType::I64 => I64_VAL,
        ValType::F32 => F32_VAL,
        ValType::F64 => F64_VAL,
    }
}

const ALL_LOADS: [LoadOp; 14] = [
    LoadOp::I32Load,
    LoadOp::I64Load,
    LoadOp::F32Load,
    LoadOp::F64Load,
    LoadOp::I32Load8S,
    LoadOp::I32Load8U,
    LoadOp::I32Load16S,
    LoadOp::I32Load16U,
    LoadOp::I64Load8S,
    LoadOp::I64Load8U,
    LoadOp::I64Load16S,
    LoadOp::I64Load16U,
    LoadOp::I64Load32S,
    LoadOp::I64Load32U,
];

const ALL_STORES: [StoreOp; 9] = [
    StoreOp::I32Store,
    StoreOp::I64Store,
    StoreOp::F32Store,
    StoreOp::F64Store,
    StoreOp::I32Store8,
    StoreOp::I32Store16,
    StoreOp::I64Store8,
    StoreOp::I64Store16,
    StoreOp::I64Store32,
];

/// Builds a module with a fused and an unfused variant of one access.
///
/// The fused body keeps `local.get` adjacent to the memory op, so the
/// lowering peephole produces the register-addressed superinstruction;
/// the unfused body routes the same operands through a `block`, whose
/// end binds a label and therefore fences fusion — the charge sequence
/// is identical either way, so even cycle bits can be compared.
fn matrix_module(access: Access) -> Module {
    let locals = [ValType::I32, ValType::I64, ValType::F32, ValType::F64];
    let (fused, unfused) = match access {
        Access::Load(op) => (
            vec![
                Instr::LocalGet(0),
                Instr::Load(op, MemArg::none()),
                Instr::Drop,
            ],
            vec![
                Instr::Block(BlockType::Value(ValType::I64), vec![Instr::LocalGet(0)]),
                Instr::Load(op, MemArg::none()),
                Instr::Drop,
            ],
        ),
        Access::Store(op) => {
            let val = value_local(op.value_type());
            (
                vec![
                    Instr::LocalGet(0),
                    Instr::LocalGet(val),
                    Instr::Store(op, MemArg::none()),
                ],
                vec![
                    Instr::LocalGet(0),
                    Instr::Block(
                        BlockType::Value(op.value_type()),
                        vec![Instr::LocalGet(val)],
                    ),
                    Instr::Store(op, MemArg::none()),
                ],
            )
        }
    };
    let mut b = ModuleBuilder::new();
    b.add_memory64(1);
    let f = b.add_function(&[ValType::I64], &[], &locals, fused);
    let u = b.add_function(&[ValType::I64], &[], &locals, unfused);
    assert_eq!((f, u), (0, 1));
    b.build()
}

#[derive(Clone, Copy, Debug)]
enum Access {
    Load(LoadOp),
    Store(StoreOp),
}

impl Access {
    fn width(self) -> u64 {
        match self {
            Access::Load(op) => op.width(),
            Access::Store(op) => op.width(),
        }
    }
}

/// The four tag schemes of the paper's deployment matrix.
fn schemes() -> [(&'static str, ExecConfig); 4] {
    let base = ExecConfig::default();
    [
        (
            "none",
            ExecConfig {
                bounds: BoundsCheckStrategy::Software,
                internal: InternalSafety::Off,
                ..base
            },
        ),
        (
            "internal-only",
            ExecConfig {
                bounds: BoundsCheckStrategy::Software,
                internal: InternalSafety::Mte,
                ..base
            },
        ),
        (
            "sandbox-only",
            ExecConfig {
                bounds: BoundsCheckStrategy::MteSandbox,
                internal: InternalSafety::Off,
                ..base
            },
        ),
        (
            "combined",
            ExecConfig {
                bounds: BoundsCheckStrategy::MteSandbox,
                internal: InternalSafety::Mte,
                ..base
            },
        ),
    ]
}

/// The address classes of the matrix; `must_trap`/`must_pass` pin the
/// expected outcome where it is scheme-independent.
fn addr_cases(width: u64) -> [(&'static str, u64, Expect); 5] {
    [
        ("in_bounds", 64, Expect::Pass),
        // Straddles a 16-byte MTE granule boundary for width >= 2;
        // unaligned accesses are legal in wasm, so this must not trap.
        ("unaligned_granule", 15, Expect::Pass),
        ("end_ok", PAGE - width, Expect::Pass),
        ("one_past_end", PAGE - width + 1, Expect::Trap),
        ("far_oob", 1 << 40, Expect::Trap),
    ]
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum Expect {
    Pass,
    Trap,
}

fn run_path(
    config: ExecConfig,
    module: &Module,
    func: u32,
    addr: u64,
    tree: bool,
) -> (Result<Vec<Value>, Trap>, u64, u64) {
    let mut store = Store::new(config);
    let h = store
        .instantiate(module, &Imports::new())
        .expect("instantiates");
    let args = [Value::I64(addr as i64)];
    let result = if tree {
        store.call_tree(h, func, &args)
    } else {
        store.call(h, func, &args)
    };
    (result, store.cycles(h).to_bits(), store.instr_count(h))
}

#[test]
fn every_width_addr_and_scheme_agrees_across_all_three_paths() {
    let accesses: Vec<Access> = ALL_LOADS
        .iter()
        .map(|&l| Access::Load(l))
        .chain(ALL_STORES.iter().map(|&s| Access::Store(s)))
        .collect();
    for access in accesses {
        let module = matrix_module(access);
        for (scheme, config) in schemes() {
            for (case, addr, expect) in addr_cases(access.width()) {
                let cell = format!("{access:?} @ {case} under {scheme}");
                let (fused, fc, fi) = run_path(config, &module, 0, addr, false);
                let (unfused, _, _) = run_path(config, &module, 1, addr, false);
                let (tree, tc, ti) = run_path(config, &module, 0, addr, true);

                // Fused flat vs tree oracle: identical outcome (trap kind
                // and payload), cycle bits and retired instructions —
                // same function, so everything must match.
                assert_eq!(fused, tree, "{cell}: fused flat vs tree oracle");
                assert_eq!(fc, tc, "{cell}: cycle bits diverged from oracle");
                assert_eq!(fi, ti, "{cell}: instruction counts diverged");

                // Unfused slow path: same trap kind and payload.
                match (&fused, &unfused) {
                    (Ok(_), Ok(_)) => {}
                    (Err(a), Err(b)) => {
                        assert_eq!(a, b, "{cell}: fused vs unfused trap payloads");
                    }
                    _ => panic!("{cell}: outcome diverged: fused {fused:?}, unfused {unfused:?}"),
                }

                // Scheme-independent expectations: OOB must trap under
                // every scheme, everything in-bounds must pass.
                match expect {
                    Expect::Pass => {
                        assert!(fused.is_ok(), "{cell}: expected pass, got {fused:?}");
                    }
                    Expect::Trap => {
                        assert!(fused.is_err(), "{cell}: expected a trap");
                    }
                }
            }
        }
    }
}

/// The `FuelExhausted` row: deterministic preemption. Fuel is charged
/// only at the charge-free control transitions (back-edge jumps,
/// function switches, returns), so the same program under the same
/// budget must trap at the identical retired-instruction count, cycle
/// bits and consumed-fuel total — across repeated runs AND across the
/// fused vs fusion-fenced lowering of the same loop body. A scheduler
/// preempting tenants by fuel therefore cannot perturb the cycle model.
#[test]
fn fuel_exhaustion_is_deterministic_across_runs_and_lowerings() {
    // func 0: an infinite increment loop whose body fuses into the
    // 3-address ALU form; func 1: the same loop with the constant routed
    // through a block, whose label fences fusion.
    let fused = vec![
        Instr::Loop(
            BlockType::Empty,
            vec![
                Instr::LocalGet(1),
                Instr::I64Const(1),
                Instr::I64Add,
                Instr::LocalSet(1),
                Instr::Br(0),
            ],
        ),
        Instr::LocalGet(1),
    ];
    let unfused = vec![
        Instr::Loop(
            BlockType::Empty,
            vec![
                Instr::LocalGet(1),
                Instr::Block(BlockType::Value(ValType::I64), vec![Instr::I64Const(1)]),
                Instr::I64Add,
                Instr::LocalSet(1),
                Instr::Br(0),
            ],
        ),
        Instr::LocalGet(1),
    ];
    let mut b = ModuleBuilder::new();
    b.add_memory64(1);
    let f = b.add_function(&[ValType::I64], &[ValType::I64], &[ValType::I64], fused);
    let u = b.add_function(&[ValType::I64], &[ValType::I64], &[ValType::I64], unfused);
    assert_eq!((f, u), (0, 1));
    let module = b.build();

    let run = |func: u32, budget: u64| {
        let mut store = Store::new(ExecConfig::default());
        let h = store
            .instantiate(&module, &Imports::new())
            .expect("instantiates");
        store.set_fuel(h, Some(budget));
        let result = store.call(h, func, &[Value::I64(0)]);
        (
            result,
            store.cycles(h).to_bits(),
            store.instr_count(h),
            store.fuel_consumed(h),
            store.fuel_remaining(h),
        )
    };

    for budget in [1u64, 2, 3, 10, 1_000] {
        let first = run(0, budget);
        assert_eq!(
            first,
            run(0, budget),
            "budget {budget}: fuel trap is not reproducible across runs"
        );
        assert_eq!(
            first,
            run(1, budget),
            "budget {budget}: fuel trap diverged between fused and unfused lowering"
        );
        assert_eq!(
            first.0,
            Err(Trap::FuelExhausted),
            "budget {budget}: expected preemption"
        );
        assert_eq!(first.3, budget, "budget {budget}: consumed-fuel total");
        assert_eq!(first.4, Some(0), "budget {budget}: remaining fuel");
    }
}

/// Straight-line bodies have no jumps, so their only fuel charge is the
/// outermost return: a zero budget still preempts them (at the final
/// `end`), one unit of fuel is enough to finish, and `None` disables the
/// checks entirely — with bit-identical cycles in all three cases.
#[test]
fn fuel_covers_straight_line_bodies_at_the_outermost_return() {
    let mut b = ModuleBuilder::new();
    b.add_memory64(1);
    b.add_function(
        &[ValType::I64],
        &[ValType::I64],
        &[],
        vec![Instr::LocalGet(0), Instr::I64Const(1), Instr::I64Add],
    );
    let module = b.build();

    let run = |budget: Option<u64>| {
        let mut store = Store::new(ExecConfig::default());
        let h = store
            .instantiate(&module, &Imports::new())
            .expect("instantiates");
        store.set_fuel(h, budget);
        let result = store.call(h, 0, &[Value::I64(41)]);
        (result, store.cycles(h).to_bits(), store.fuel_consumed(h))
    };

    let (starved, starved_cycles, starved_consumed) = run(Some(0));
    assert_eq!(starved, Err(Trap::FuelExhausted));
    assert_eq!(starved_consumed, 0);
    let (fed, fed_cycles, fed_consumed) = run(Some(1));
    assert_eq!(fed, Ok(vec![Value::I64(42)]));
    assert_eq!(fed_consumed, 1);
    let (unmetered, unmetered_cycles, unmetered_consumed) = run(None);
    assert_eq!(unmetered, Ok(vec![Value::I64(42)]));
    assert_eq!(unmetered_consumed, 0);
    // Fuel accounting must never leak into the cycle model: the trap
    // fires at the end of the same charge sequence the full run replays.
    assert_eq!(starved_cycles, fed_cycles);
    assert_eq!(fed_cycles, unmetered_cycles);
}

/// The fused ops must actually be present in the fused variant and absent
/// from the fenced one — otherwise the matrix compares the same path to
/// itself and proves nothing.
#[test]
fn fused_and_unfused_bodies_lower_as_intended() {
    let module = matrix_module(Access::Load(LoadOp::I64Load));
    let fused = cage_engine::disassemble(&module, 0).expect("local function");
    let unfused = cage_engine::disassemble(&module, 1).expect("local function");
    assert!(
        fused.contains("addr=local 0"),
        "fused body lost its superinstruction:\n{fused}"
    );
    assert!(
        !unfused.contains("addr=local"),
        "fence failed, unfused body fused anyway:\n{unfused}"
    );

    let module = matrix_module(Access::Store(StoreOp::I32Store16));
    let fused = cage_engine::disassemble(&module, 0).expect("local function");
    let unfused = cage_engine::disassemble(&module, 1).expect("local function");
    assert!(
        fused.contains("addr=local 0, val=local"),
        "fused store lost its superinstruction:\n{fused}"
    );
    assert!(
        !unfused.contains("val=local"),
        "fence failed, unfused store fused anyway:\n{unfused}"
    );
}
