//! Trap-conformance matrix for the memory tiers.
//!
//! Every `LoadOp`/`StoreOp` width is executed at a matrix of addresses
//! (in-bounds, granule-straddling, exactly-at-end, one-past-end, far
//! out-of-bounds) under all four tag schemes, through three execution
//! tiers:
//!
//! * the **register tier** (`Store::call`, the primary path): SSA
//!   construction and linear-scan slot assignment lower the body to
//!   generic 3-address ops over a per-frame register file;
//! * the **stack tier** (`Store::call_stack`): the flat stack bytecode
//!   the register machine replaced, kept as a differential reference;
//! * the **tree oracle** (`Store::call_tree`): the pre-flat structured
//!   walker.
//!
//! All three must agree on the trap kind *and payload*, and — because
//! each register op replays its retired source ops' cycle charges in
//! original order — on the cycle-counter bits and retired-instruction
//! counts too.
//!
//! Separate `FuelExhausted` and `EpochInterrupt` rows pin deterministic
//! preemption: the same program under the same fuel budget (or an
//! already-due epoch deadline) traps at the identical instruction count
//! and cycle bits, across runs, across lowerings of the same loop, and
//! across the register and stack tiers — and where both expire at once,
//! fuel wins.

use cage_engine::{BoundsCheckStrategy, ExecConfig, Imports, InternalSafety, Store, Trap, Value};
use cage_wasm::builder::ModuleBuilder;
use cage_wasm::instr::{LoadOp, StoreOp};
use cage_wasm::{BlockType, Instr, MemArg, Module, ValType};

const PAGE: u64 = 65_536;

/// Locals after the i64 address parameter: one zero value per type, so
/// stores of every width have a register operand of the right type.
const I32_VAL: u32 = 1;
const I64_VAL: u32 = 2;
const F32_VAL: u32 = 3;
const F64_VAL: u32 = 4;

fn value_local(ty: ValType) -> u32 {
    match ty {
        ValType::I32 => I32_VAL,
        ValType::I64 => I64_VAL,
        ValType::F32 => F32_VAL,
        ValType::F64 => F64_VAL,
    }
}

const ALL_LOADS: [LoadOp; 14] = [
    LoadOp::I32Load,
    LoadOp::I64Load,
    LoadOp::F32Load,
    LoadOp::F64Load,
    LoadOp::I32Load8S,
    LoadOp::I32Load8U,
    LoadOp::I32Load16S,
    LoadOp::I32Load16U,
    LoadOp::I64Load8S,
    LoadOp::I64Load8U,
    LoadOp::I64Load16S,
    LoadOp::I64Load16U,
    LoadOp::I64Load32S,
    LoadOp::I64Load32U,
];

const ALL_STORES: [StoreOp; 9] = [
    StoreOp::I32Store,
    StoreOp::I64Store,
    StoreOp::F32Store,
    StoreOp::F64Store,
    StoreOp::I32Store8,
    StoreOp::I32Store16,
    StoreOp::I64Store8,
    StoreOp::I64Store16,
    StoreOp::I64Store32,
];

/// Builds a module with an adjacent and a block-fenced variant of one
/// access.
///
/// The adjacent body keeps `local.get` next to the memory op; the fenced
/// body routes the same operand through a `block`, whose end binds a
/// label. SSA dissolves the fence into the same generic 3-address access
/// either way — only the charge recipes land on different ops — so the
/// two variants exercise distinct lowerings of one semantics, and even
/// cycle bits can be compared.
fn matrix_module(access: Access) -> Module {
    let locals = [ValType::I32, ValType::I64, ValType::F32, ValType::F64];
    let (adjacent, fenced) = match access {
        Access::Load(op) => (
            vec![
                Instr::LocalGet(0),
                Instr::Load(op, MemArg::none()),
                Instr::Drop,
            ],
            vec![
                Instr::Block(BlockType::Value(ValType::I64), vec![Instr::LocalGet(0)]),
                Instr::Load(op, MemArg::none()),
                Instr::Drop,
            ],
        ),
        Access::Store(op) => {
            let val = value_local(op.value_type());
            (
                vec![
                    Instr::LocalGet(0),
                    Instr::LocalGet(val),
                    Instr::Store(op, MemArg::none()),
                ],
                vec![
                    Instr::LocalGet(0),
                    Instr::Block(
                        BlockType::Value(op.value_type()),
                        vec![Instr::LocalGet(val)],
                    ),
                    Instr::Store(op, MemArg::none()),
                ],
            )
        }
    };
    let mut b = ModuleBuilder::new();
    b.add_memory64(1);
    let a = b.add_function(&[ValType::I64], &[], &locals, adjacent);
    let f = b.add_function(&[ValType::I64], &[], &locals, fenced);
    assert_eq!((a, f), (0, 1));
    b.build()
}

#[derive(Clone, Copy, Debug)]
enum Access {
    Load(LoadOp),
    Store(StoreOp),
}

impl Access {
    fn width(self) -> u64 {
        match self {
            Access::Load(op) => op.width(),
            Access::Store(op) => op.width(),
        }
    }
}

/// The four tag schemes of the paper's deployment matrix.
fn schemes() -> [(&'static str, ExecConfig); 4] {
    let base = ExecConfig::default();
    [
        (
            "none",
            ExecConfig {
                bounds: BoundsCheckStrategy::Software,
                internal: InternalSafety::Off,
                ..base
            },
        ),
        (
            "internal-only",
            ExecConfig {
                bounds: BoundsCheckStrategy::Software,
                internal: InternalSafety::Mte,
                ..base
            },
        ),
        (
            "sandbox-only",
            ExecConfig {
                bounds: BoundsCheckStrategy::MteSandbox,
                internal: InternalSafety::Off,
                ..base
            },
        ),
        (
            "combined",
            ExecConfig {
                bounds: BoundsCheckStrategy::MteSandbox,
                internal: InternalSafety::Mte,
                ..base
            },
        ),
    ]
}

/// The address classes of the matrix; `must_trap`/`must_pass` pin the
/// expected outcome where it is scheme-independent.
fn addr_cases(width: u64) -> [(&'static str, u64, Expect); 5] {
    [
        ("in_bounds", 64, Expect::Pass),
        // Straddles a 16-byte MTE granule boundary for width >= 2;
        // unaligned accesses are legal in wasm, so this must not trap.
        ("unaligned_granule", 15, Expect::Pass),
        ("end_ok", PAGE - width, Expect::Pass),
        ("one_past_end", PAGE - width + 1, Expect::Trap),
        ("far_oob", 1 << 40, Expect::Trap),
    ]
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum Expect {
    Pass,
    Trap,
}

#[derive(Clone, Copy, Debug)]
enum Tier {
    Reg,
    Stack,
    Tree,
}

fn run_path(
    config: ExecConfig,
    module: &Module,
    func: u32,
    addr: u64,
    tier: Tier,
) -> (Result<Vec<Value>, Trap>, u64, u64) {
    let mut store = Store::new(config);
    let h = store
        .instantiate(module, &Imports::new())
        .expect("instantiates");
    let args = [Value::I64(addr as i64)];
    let result = match tier {
        Tier::Reg => store.call(h, func, &args),
        Tier::Stack => store.call_stack(h, func, &args),
        Tier::Tree => store.call_tree(h, func, &args),
    };
    (result, store.cycles(h).to_bits(), store.instr_count(h))
}

#[test]
fn every_width_addr_and_scheme_agrees_across_all_three_tiers() {
    let accesses: Vec<Access> = ALL_LOADS
        .iter()
        .map(|&l| Access::Load(l))
        .chain(ALL_STORES.iter().map(|&s| Access::Store(s)))
        .collect();
    for access in accesses {
        let module = matrix_module(access);
        for (scheme, config) in schemes() {
            for (case, addr, expect) in addr_cases(access.width()) {
                let cell = format!("{access:?} @ {case} under {scheme}");
                let reg = run_path(config, &module, 0, addr, Tier::Reg);
                let stack = run_path(config, &module, 0, addr, Tier::Stack);
                let tree = run_path(config, &module, 0, addr, Tier::Tree);

                // Register tier vs stack tier vs tree oracle: identical
                // outcome (trap kind and payload), cycle bits and retired
                // instructions — same function, so everything must match.
                assert_eq!(reg, stack, "{cell}: register tier vs stack tier");
                assert_eq!(reg, tree, "{cell}: register tier vs tree oracle");

                // The fenced lowering of the same access, through both
                // flat tiers: same everything again.
                let fenced = run_path(config, &module, 1, addr, Tier::Reg);
                let fenced_stack = run_path(config, &module, 1, addr, Tier::Stack);
                assert_eq!(
                    fenced, fenced_stack,
                    "{cell}: fenced body diverged between register and stack tiers"
                );

                // Adjacent vs fenced: same trap kind and payload.
                match (&reg.0, &fenced.0) {
                    (Ok(_), Ok(_)) => {}
                    (Err(a), Err(b)) => {
                        assert_eq!(a, b, "{cell}: adjacent vs fenced trap payloads");
                    }
                    _ => panic!(
                        "{cell}: outcome diverged: adjacent {:?}, fenced {:?}",
                        reg.0, fenced.0
                    ),
                }

                // Scheme-independent expectations: OOB must trap under
                // every scheme, everything in-bounds must pass.
                match expect {
                    Expect::Pass => {
                        assert!(reg.0.is_ok(), "{cell}: expected pass, got {:?}", reg.0);
                    }
                    Expect::Trap => {
                        assert!(reg.0.is_err(), "{cell}: expected a trap");
                    }
                }
            }
        }
    }
}

/// The `FuelExhausted` row: deterministic preemption. Fuel is charged
/// only at the charge-free control transitions (back-edge jumps,
/// function switches, returns), so the same program under the same
/// budget must trap at the identical retired-instruction count, cycle
/// bits and consumed-fuel total — across repeated runs, across the
/// adjacent vs block-fenced lowering of the same loop body, AND across
/// the register and stack tiers. A scheduler preempting tenants by fuel
/// therefore cannot perturb the cycle model.
#[test]
fn fuel_exhaustion_is_deterministic_across_runs_and_lowerings() {
    // func 0: an infinite increment loop whose body lowers to a single
    // 3-address ALU op; func 1: the same loop with the constant routed
    // through a block, which lands the charges on different reg ops.
    let adjacent = vec![
        Instr::Loop(
            BlockType::Empty,
            vec![
                Instr::LocalGet(1),
                Instr::I64Const(1),
                Instr::I64Add,
                Instr::LocalSet(1),
                Instr::Br(0),
            ],
        ),
        Instr::LocalGet(1),
    ];
    let fenced = vec![
        Instr::Loop(
            BlockType::Empty,
            vec![
                Instr::LocalGet(1),
                Instr::Block(BlockType::Value(ValType::I64), vec![Instr::I64Const(1)]),
                Instr::I64Add,
                Instr::LocalSet(1),
                Instr::Br(0),
            ],
        ),
        Instr::LocalGet(1),
    ];
    let mut b = ModuleBuilder::new();
    b.add_memory64(1);
    let a = b.add_function(&[ValType::I64], &[ValType::I64], &[ValType::I64], adjacent);
    let f = b.add_function(&[ValType::I64], &[ValType::I64], &[ValType::I64], fenced);
    assert_eq!((a, f), (0, 1));
    let module = b.build();

    let run = |func: u32, budget: u64, stack: bool| {
        let mut store = Store::new(ExecConfig::default());
        let h = store
            .instantiate(&module, &Imports::new())
            .expect("instantiates");
        store.set_fuel(h, Some(budget));
        let args = [Value::I64(0)];
        let result = if stack {
            store.call_stack(h, func, &args)
        } else {
            store.call(h, func, &args)
        };
        (
            result,
            store.cycles(h).to_bits(),
            store.instr_count(h),
            store.fuel_consumed(h),
            store.fuel_remaining(h),
        )
    };

    for budget in [1u64, 2, 3, 10, 1_000] {
        let first = run(0, budget, false);
        assert_eq!(
            first,
            run(0, budget, false),
            "budget {budget}: fuel trap is not reproducible across runs"
        );
        assert_eq!(
            first,
            run(1, budget, false),
            "budget {budget}: fuel trap diverged between adjacent and fenced lowering"
        );
        assert_eq!(
            first,
            run(0, budget, true),
            "budget {budget}: fuel trap diverged between register and stack tiers"
        );
        assert_eq!(
            first,
            run(1, budget, true),
            "budget {budget}: fenced fuel trap diverged between register and stack tiers"
        );
        assert_eq!(
            first.0,
            Err(Trap::FuelExhausted),
            "budget {budget}: expected preemption"
        );
        assert_eq!(first.3, budget, "budget {budget}: consumed-fuel total");
        assert_eq!(first.4, Some(0), "budget {budget}: remaining fuel");
    }
}

/// Straight-line bodies have no jumps, so their only fuel charge is the
/// outermost return: a zero budget still preempts them (at the final
/// `ret`), one unit of fuel is enough to finish, and `None` disables the
/// checks entirely — with bit-identical cycles in all three cases.
#[test]
fn fuel_covers_straight_line_bodies_at_the_outermost_return() {
    let mut b = ModuleBuilder::new();
    b.add_memory64(1);
    b.add_function(
        &[ValType::I64],
        &[ValType::I64],
        &[],
        vec![Instr::LocalGet(0), Instr::I64Const(1), Instr::I64Add],
    );
    let module = b.build();

    let run = |budget: Option<u64>| {
        let mut store = Store::new(ExecConfig::default());
        let h = store
            .instantiate(&module, &Imports::new())
            .expect("instantiates");
        store.set_fuel(h, budget);
        let result = store.call(h, 0, &[Value::I64(41)]);
        (result, store.cycles(h).to_bits(), store.fuel_consumed(h))
    };

    let (starved, starved_cycles, starved_consumed) = run(Some(0));
    assert_eq!(starved, Err(Trap::FuelExhausted));
    assert_eq!(starved_consumed, 0);
    let (fed, fed_cycles, fed_consumed) = run(Some(1));
    assert_eq!(fed, Ok(vec![Value::I64(42)]));
    assert_eq!(fed_consumed, 1);
    let (unmetered, unmetered_cycles, unmetered_consumed) = run(None);
    assert_eq!(unmetered, Ok(vec![Value::I64(42)]));
    assert_eq!(unmetered_consumed, 0);
    // Fuel accounting must never leak into the cycle model: the trap
    // fires at the end of the same charge sequence the full run replays.
    assert_eq!(starved_cycles, fed_cycles);
    assert_eq!(fed_cycles, unmetered_cycles);
}

/// The `EpochInterrupt` row: epoch preemption rides the same charge-free
/// control transitions as fuel, so a deadline that is already due when
/// the call starts must trap at the identical retired-instruction count
/// and cycle bits — across repeated runs, across the adjacent vs fenced
/// lowering, and across the register and stack tiers. An embedder thread
/// ticking the shared epoch can move *when* the trap fires in wall-clock
/// time, but never *where* it lands in the cycle model.
#[test]
fn epoch_interrupt_is_deterministic_across_runs_and_lowerings() {
    let adjacent = vec![
        Instr::Loop(
            BlockType::Empty,
            vec![
                Instr::LocalGet(1),
                Instr::I64Const(1),
                Instr::I64Add,
                Instr::LocalSet(1),
                Instr::Br(0),
            ],
        ),
        Instr::LocalGet(1),
    ];
    let fenced = vec![
        Instr::Loop(
            BlockType::Empty,
            vec![
                Instr::LocalGet(1),
                Instr::Block(BlockType::Value(ValType::I64), vec![Instr::I64Const(1)]),
                Instr::I64Add,
                Instr::LocalSet(1),
                Instr::Br(0),
            ],
        ),
        Instr::LocalGet(1),
    ];
    let mut b = ModuleBuilder::new();
    b.add_memory64(1);
    let a = b.add_function(&[ValType::I64], &[ValType::I64], &[ValType::I64], adjacent);
    let f = b.add_function(&[ValType::I64], &[ValType::I64], &[ValType::I64], fenced);
    assert_eq!((a, f), (0, 1));
    let module = b.build();

    // `ticks` epochs elapse before the call, against a deadline of 1:
    // 0 ticks -> the deadline is still ahead and an infinite loop would
    // hang, so that case runs with fuel as a backstop instead (below).
    let run = |func: u32, ticks: u64, stack: bool| {
        let mut store = Store::new(ExecConfig::default());
        let h = store
            .instantiate(&module, &Imports::new())
            .expect("instantiates");
        store.set_epoch_deadline(h, Some(1));
        for _ in 0..ticks {
            store.increment_epoch();
        }
        let args = [Value::I64(0)];
        let result = if stack {
            store.call_stack(h, func, &args)
        } else {
            store.call(h, func, &args)
        };
        (result, store.cycles(h).to_bits(), store.instr_count(h))
    };

    for ticks in [1u64, 2, 100] {
        let first = run(0, ticks, false);
        assert_eq!(
            first,
            run(0, ticks, false),
            "ticks {ticks}: epoch trap is not reproducible across runs"
        );
        assert_eq!(
            first,
            run(1, ticks, false),
            "ticks {ticks}: epoch trap diverged between adjacent and fenced lowering"
        );
        assert_eq!(
            first,
            run(0, ticks, true),
            "ticks {ticks}: epoch trap diverged between register and stack tiers"
        );
        assert_eq!(
            first,
            run(1, ticks, true),
            "ticks {ticks}: fenced epoch trap diverged between register and stack tiers"
        );
        assert_eq!(
            first.0,
            Err(Trap::EpochInterrupt),
            "ticks {ticks}: expected preemption"
        );
    }
    // However far past the deadline the epoch has advanced, the trap
    // lands at the same first preemption point: identical everything.
    assert_eq!(run(0, 1, false), run(0, 100, false));
}

/// Where fuel and epoch expire at the same preemption point, fuel wins —
/// the check order is part of the deterministic contract — and the cycle
/// bits match the fuel-only and epoch-only traps at that point.
#[test]
fn fuel_beats_epoch_when_both_expire_at_the_same_transition() {
    let mut b = ModuleBuilder::new();
    b.add_memory64(1);
    b.add_function(
        &[ValType::I64],
        &[ValType::I64],
        &[],
        vec![Instr::LocalGet(0), Instr::I64Const(1), Instr::I64Add],
    );
    let module = b.build();

    let run = |fuel: Option<u64>, deadline_due: bool, stack: bool| {
        let mut store = Store::new(ExecConfig::default());
        let h = store
            .instantiate(&module, &Imports::new())
            .expect("instantiates");
        store.set_fuel(h, fuel);
        if deadline_due {
            store.set_epoch_deadline(h, Some(0));
        }
        let result = if stack {
            store.call_stack(h, 0, &[Value::I64(41)])
        } else {
            store.call(h, 0, &[Value::I64(41)])
        };
        (result, store.cycles(h).to_bits())
    };

    for stack in [false, true] {
        let fuel_only = run(Some(0), false, stack);
        let epoch_only = run(None, true, stack);
        let both = run(Some(0), true, stack);
        assert_eq!(fuel_only.0, Err(Trap::FuelExhausted));
        assert_eq!(epoch_only.0, Err(Trap::EpochInterrupt));
        // Same preemption point, so the cycle model cannot tell the three
        // apart; the trap kind is pinned to fuel when both are due.
        assert_eq!(both.0, Err(Trap::FuelExhausted), "stack={stack}");
        assert_eq!(fuel_only.1, epoch_only.1, "stack={stack}");
        assert_eq!(fuel_only.1, both.1, "stack={stack}");
    }
}

/// The register lowering must dissolve the stack shuffles the retired
/// superinstruction zoo existed to fuse: both the adjacent and the
/// block-fenced body lower to the same generic 3-address access, the
/// fence surviving only as a label `nop` and a different split of the
/// charge recipe — and the access itself dispatches as ONE op whose
/// recipe replays the retired `local.get`s' charges in source order.
#[test]
fn register_lowering_dissolves_stack_shuffles() {
    let module = matrix_module(Access::Load(LoadOp::I64Load));
    let adjacent = cage_engine::disassemble(&module, 0).expect("local function");
    let fenced = cage_engine::disassemble(&module, 1).expect("local function");
    // Adjacent: the load absorbs the retired local.get's simple charge.
    assert!(
        adjacent.contains("r1 <- I64Load offset=0 addr=r0  ; charges sm"),
        "adjacent load did not lower to a charged 3-address op:\n{adjacent}"
    );
    // Fenced: same 3-address op, but the block's label keeps the
    // local.get charge on its own nop and the load charges only memory.
    assert!(
        fenced.contains("r1 <- I64Load offset=0 addr=r0  ; charges m"),
        "fence leaked into the 3-address access:\n{fenced}"
    );
    assert!(
        fenced.contains("nop  ; charges s"),
        "fenced body lost the label nop carrying the operand charge:\n{fenced}"
    );

    let module = matrix_module(Access::Store(StoreOp::I32Store16));
    let adjacent = cage_engine::disassemble(&module, 0).expect("local function");
    let fenced = cage_engine::disassemble(&module, 1).expect("local function");
    assert!(
        adjacent.contains("I32Store16 offset=0 addr=r0, val=r1  ; charges ssm"),
        "adjacent store did not absorb both operand charges:\n{adjacent}"
    );
    assert!(
        fenced.contains("I32Store16 offset=0 addr=r0, val=r1  ; charges m"),
        "fence leaked into the 3-address store:\n{fenced}"
    );

    // The register stream is strictly shorter than the stack stream it
    // replaced: the stack shuffles are gone, not renamed.
    let reg_ops = cage_engine::disassemble(&module, 0)
        .expect("local function")
        .lines()
        .count()
        - 1;
    let stack_ops = cage_engine::disassemble_stack(&module, 0)
        .expect("local function")
        .lines()
        .count()
        - 1;
    assert!(
        reg_ops < stack_ops,
        "register stream ({reg_ops} ops) not shorter than stack stream ({stack_ops} ops)"
    );
}
