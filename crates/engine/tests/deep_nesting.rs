//! Deep-nesting regression test: the flat dispatcher must execute guest
//! control flow in host stack space that is *constant* in guest nesting
//! depth.
//!
//! The pre-flat-bytecode tree walker recursed one `exec_seq`/`exec_instr`
//! Rust frame per `block` level, so a 50 000-deep nest consumed megabytes
//! of host stack and could overflow outright. After flattening, blocks
//! compile to nothing and a `br` out of the whole nest is one
//! collapse-and-jump, so the dispatch loop's stack usage does not move.
//!
//! Measurement: a host function records the address of one of its stack
//! locals. It is called twice — once at function entry and once from the
//! innermost block, 50 000 levels down — and the two addresses must be
//! within a small constant of each other. (The tree walker put ≥64 bytes
//! per level between them: several megabytes.) Compile-time work
//! (validation, lowering, drop) still recurses over the structured tree,
//! so the whole test runs on a thread with a generous stack; the
//! *execution* bound is what the address probe asserts.

use std::cell::RefCell;
use std::rc::Rc;

use cage_engine::{ExecConfig, HostFunc, Imports, Store, Value};
use cage_wasm::builder::ModuleBuilder;
use cage_wasm::{BlockType, Instr, ValType};

const DEPTH: u32 = 50_000;

fn deeply_nested_module() -> cage_wasm::Module {
    let mut b = ModuleBuilder::new();
    let probe = b.import_func("env", "probe", &[], &[]);
    // Innermost: probe the stack, then exit the entire nest in one br
    // carrying the function result.
    let mut nest = vec![Instr::Call(probe), Instr::I64Const(42), Instr::Br(DEPTH)];
    for _ in 0..DEPTH {
        nest = vec![Instr::Block(BlockType::Empty, nest)];
    }
    let mut body = vec![Instr::Call(probe)];
    body.extend(nest);
    body.push(Instr::I64Const(7)); // unreachable: the br exits first
    let f = b.add_function(&[], &[ValType::I64], &[], body);
    b.export_func("run", f);
    b.build()
}

/// Compile-time recursion (validator, lowering, tree drop) needs a big
/// stack at this depth — debug-build frames are several KiB per nesting
/// level, and 512 MiB measurably overflows at DEPTH = 50 000. Execution
/// must not need any of it, which is what the probes assert.
const COMPILE_STACK: usize = 2048 * 1024 * 1024;

#[test]
fn fifty_thousand_nested_blocks_execute_in_constant_host_stack() {
    std::thread::Builder::new()
        .stack_size(COMPILE_STACK)
        .spawn(|| {
            let module = deeply_nested_module();
            let addrs: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
            let sink = Rc::clone(&addrs);
            let mut imports = Imports::new();
            imports.define(
                "env",
                "probe",
                HostFunc::new(&[], &[], move |_, _| {
                    let marker = 0u8;
                    sink.borrow_mut().push(std::ptr::addr_of!(marker) as usize);
                    Ok(vec![])
                }),
            );
            let mut store = Store::new(ExecConfig::default());
            let h = store.instantiate(&module, &imports).expect("instantiates");
            let out = store.invoke(h, "run", &[]).expect("runs");
            assert_eq!(out, vec![Value::I64(42)], "deep br carried the result out");

            let addrs = addrs.borrow();
            assert_eq!(addrs.len(), 2, "probe called at entry and innermost");
            let distance = addrs[0].abs_diff(addrs[1]);
            // The tree walker placed >= 64 bytes of Rust frame per nesting
            // level between these probes (>= 3 MiB at this depth). The
            // flat dispatcher runs both probes from the same dispatch
            // frame: allow generous slack for host-call plumbing only.
            assert!(
                distance < 1 << 20,
                "executing {DEPTH} nested blocks moved the host stack by {distance} bytes \
                 — dispatch is consuming stack proportional to guest nesting again"
            );
        })
        .expect("spawn")
        .join()
        .expect("deep-nesting thread");
}

#[test]
fn deep_branch_is_cheap_in_cycles_too() {
    // Sanity on the collapse descriptor: exiting 50k blocks is ONE branch
    // charge, not 50k — blocks are free, so the whole run retires exactly
    // the ops the guest executes.
    std::thread::Builder::new()
        .stack_size(COMPILE_STACK)
        .spawn(|| {
            let mut b = ModuleBuilder::new();
            let mut nest = vec![Instr::I64Const(42), Instr::Br(DEPTH)];
            for _ in 0..DEPTH {
                nest = vec![Instr::Block(BlockType::Empty, nest)];
            }
            nest.push(Instr::I64Const(7));
            let f = b.add_function(&[], &[ValType::I64], &[], nest);
            b.export_func("run", f);
            let module = b.build();
            let mut store = Store::new(ExecConfig::default());
            let h = store
                .instantiate(&module, &Imports::new())
                .expect("instantiates");
            let out = store.invoke(h, "run", &[]).expect("runs");
            assert_eq!(out, vec![Value::I64(42)]);
            // const + br: two retired instructions, whatever the depth.
            assert_eq!(store.instr_count(h), 2);
        })
        .expect("spawn")
        .join()
        .expect("deep-branch thread");
}
