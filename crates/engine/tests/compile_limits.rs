//! Compile-limit and hostile-parameter regressions: a module with
//! pathological sizes must come back as a structured error from the
//! bounded entry points ([`Precompiled::with_limits`],
//! [`Store::instantiate`]) — never a panic, abort, or runaway
//! allocation.

use cage_engine::{ExecConfig, Imports, InstantiateError, Precompiled, Store};
use cage_wasm::builder::ModuleBuilder;
use cage_wasm::{BlockType, CompileLimits, Instr, MemoryType, ValType};

/// A valid single-function module whose body nests `depth` blocks.
fn nested_module(depth: u32) -> cage_wasm::Module {
    let mut b = ModuleBuilder::new();
    let mut nest = vec![Instr::I64Const(42), Instr::Br(depth)];
    for _ in 0..depth {
        nest = vec![Instr::Block(BlockType::Empty, nest)];
    }
    nest.push(Instr::I64Const(7));
    let f = b.add_function(&[], &[ValType::I64], &[], nest);
    b.export_func("run", f);
    b.build()
}

/// Iteratively tears down a deeply nested module so the test does not
/// pay a recursive drop at the end.
fn drop_nested(mut module: cage_wasm::Module) {
    let mut work: Vec<Instr> = module.funcs.drain(..).flat_map(|f| f.body).collect();
    while let Some(i) = work.pop() {
        match i {
            Instr::Block(_, seq) | Instr::Loop(_, seq) => work.extend(seq),
            Instr::If(_, t, e) => {
                work.extend(t);
                work.extend(e);
            }
            _ => {}
        }
    }
}

#[test]
fn deep_nesting_is_rejected_by_default_limits_without_recursion() {
    // 10k nested blocks: far beyond the default 100-level bound. The
    // pre-scan must reject it on this ordinary-sized test stack — the
    // rejection path is iterative, so no giant compile stack is needed.
    let module = nested_module(10_000);
    let err = Precompiled::new(&module).expect_err("rejected");
    match err {
        InstantiateError::CompileLimit(l) => {
            assert!(
                l.what.contains("nesting depth"),
                "expected a depth limit, got {l}"
            );
        }
        other => panic!("expected CompileLimit, got {other}"),
    }
    drop_nested(module);
}

#[test]
fn nesting_within_limits_still_compiles_and_runs() {
    let module = nested_module(80);
    let pre = Precompiled::new(&module).expect("80 levels is within the default bound");
    let mut store = Store::new(ExecConfig::default());
    let h = store
        .instantiate_precompiled(&pre, &Imports::new())
        .expect("instantiates");
    let out = store.invoke(h, "run", &[]).expect("runs");
    assert_eq!(out, vec![cage_engine::Value::I64(42)]);
}

#[test]
fn body_op_budget_is_enforced() {
    let mut b = ModuleBuilder::new();
    let mut body = Vec::new();
    for _ in 0..5_000 {
        body.push(Instr::I64Const(1));
        body.push(Instr::Drop);
    }
    body.push(Instr::I64Const(0));
    let f = b.add_function(&[], &[ValType::I64], &[], body);
    b.export_func("run", f);
    let module = b.build();

    let limits = CompileLimits {
        max_body_ops: 1_000,
        ..CompileLimits::generous()
    };
    let err = Precompiled::with_limits(&module, &limits).expect_err("rejected");
    match err {
        InstantiateError::CompileLimit(l) => assert_eq!(l.what, "body ops"),
        other => panic!("expected CompileLimit, got {other}"),
    }
    // The same module is fine under the default generous bounds.
    Precompiled::new(&module).expect("10k ops is nothing");
}

#[test]
fn compile_fuel_budget_is_enforced_across_functions() {
    let mut b = ModuleBuilder::new();
    for i in 0..10 {
        let body = vec![Instr::I64Const(i), Instr::Drop, Instr::I64Const(0)];
        let f = b.add_function(&[], &[ValType::I64], &[], body);
        if i == 0 {
            b.export_func("run", f);
        }
    }
    let module = b.build();
    let limits = CompileLimits {
        max_compile_fuel: 20,
        ..CompileLimits::generous()
    };
    let err = Precompiled::with_limits(&module, &limits).expect_err("rejected");
    match err {
        InstantiateError::CompileLimit(l) => assert_eq!(l.what, "compile fuel"),
        other => panic!("expected CompileLimit, got {other}"),
    }
}

#[test]
fn ssa_value_budget_is_enforced() {
    // Distinct constants and a running sum: the SSA builder interns
    // repeated constants, so every value here must be unique to actually
    // grow the value table.
    let mut b = ModuleBuilder::new();
    let mut body = vec![Instr::I64Const(0)];
    for i in 1..200 {
        body.push(Instr::I64Const(i));
        body.push(Instr::I64Add);
    }
    let f = b.add_function(&[], &[ValType::I64], &[], body);
    b.export_func("run", f);
    let module = b.build();
    let limits = CompileLimits {
        max_ssa_values: 50,
        ..CompileLimits::generous()
    };
    let err = Precompiled::with_limits(&module, &limits).expect_err("rejected");
    match err {
        InstantiateError::CompileLimit(l) => assert_eq!(l.what, "ssa values"),
        other => panic!("expected CompileLimit, got {other}"),
    }
}

#[test]
fn huge_memory64_minimum_is_an_error_not_an_abort() {
    // 2^52 pages * 64KiB/page overflows the u64 byte size outright.
    let mut b = ModuleBuilder::new();
    b.add_memory(MemoryType {
        limits: cage_wasm::Limits {
            min: 1 << 52,
            max: None,
        },
        memory64: true,
    });
    let f = b.add_function(&[], &[ValType::I64], &[], vec![Instr::I64Const(0)]);
    b.export_func("run", f);
    let module = b.build();
    let mut store = Store::new(ExecConfig::default());
    match store.instantiate(&module, &Imports::new()) {
        Err(InstantiateError::LimitExceeded(msg)) => {
            assert!(msg.contains("unallocatable"), "{msg}");
        }
        Err(other) => panic!("expected LimitExceeded, got {other}"),
        Ok(_) => panic!("a 2^52-page memory must not instantiate"),
    }
}

#[test]
fn large_but_representable_memory_fails_cleanly() {
    // 2^40 pages = 64 PiB: representable byte size, impossible
    // allocation. `try_reserve` must surface it as an error.
    let mut b = ModuleBuilder::new();
    b.add_memory(MemoryType {
        limits: cage_wasm::Limits {
            min: 1 << 40,
            max: None,
        },
        memory64: true,
    });
    let f = b.add_function(&[], &[ValType::I64], &[], vec![Instr::I64Const(0)]);
    b.export_func("run", f);
    let module = b.build();
    let mut store = Store::new(ExecConfig::default());
    assert!(matches!(
        store.instantiate(&module, &Imports::new()),
        Err(InstantiateError::LimitExceeded(_))
    ));
}

#[test]
fn huge_table_minimum_is_an_error_not_an_abort() {
    let mut b = ModuleBuilder::new();
    let f = b.add_function(&[], &[ValType::I64], &[], vec![Instr::I64Const(0)]);
    b.export_func("run", f);
    b.add_table(u64::MAX / 2);
    let module = b.build();
    let mut store = Store::new(ExecConfig::default());
    assert!(matches!(
        store.instantiate(&module, &Imports::new()),
        Err(InstantiateError::LimitExceeded(_))
    ));
}

#[test]
fn element_segment_offset_near_usize_max_does_not_wrap() {
    let mut b = ModuleBuilder::new();
    let f = b.add_function(&[], &[ValType::I64], &[], vec![Instr::I64Const(0)]);
    b.export_func("run", f);
    b.add_table(4);
    b.add_elem(u64::MAX - 1, vec![f]);
    let module = b.build();
    let mut store = Store::new(ExecConfig::default());
    assert!(matches!(
        store.instantiate(&module, &Imports::new()),
        Err(InstantiateError::SegmentOutOfRange)
    ));
}
