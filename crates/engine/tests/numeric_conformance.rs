//! WASM numeric-semantics conformance: edge cases from the spec that an
//! interpreter must get exactly right (shift masking, division traps,
//! NaN-aware min/max, rounding modes, saturating conversions are NOT in
//! this subset — trapping conversions are).

use cage_engine::{ExecConfig, Imports, Store, Trap, Value};
use cage_wasm::builder::ModuleBuilder;
use cage_wasm::{Instr, Module, ValType};

fn unop_module(op: Instr, param: ValType, result: ValType) -> Module {
    let mut b = ModuleBuilder::new();
    let f = b.add_function(&[param], &[result], &[], vec![Instr::LocalGet(0), op]);
    b.export_func("f", f);
    b.build()
}

fn binop_module(op: Instr, ty: ValType, result: ValType) -> Module {
    let mut b = ModuleBuilder::new();
    let f = b.add_function(
        &[ty, ty],
        &[result],
        &[],
        vec![Instr::LocalGet(0), Instr::LocalGet(1), op],
    );
    b.export_func("f", f);
    b.build()
}

fn run1(m: &Module, args: &[Value]) -> Result<Value, Trap> {
    let mut store = Store::new(ExecConfig::default());
    let h = store.instantiate(m, &Imports::new()).unwrap();
    store.invoke(h, "f", args).map(|v| v[0])
}

#[test]
fn shift_counts_are_masked() {
    // i32 shifts mask the count to 5 bits, i64 to 6 bits.
    let m = binop_module(Instr::I32Shl, ValType::I32, ValType::I32);
    assert_eq!(
        run1(&m, &[Value::I32(1), Value::I32(33)]).unwrap(),
        Value::I32(2)
    );
    let m = binop_module(Instr::I32ShrU, ValType::I32, ValType::I32);
    assert_eq!(
        run1(&m, &[Value::I32(-1), Value::I32(32)]).unwrap(),
        Value::I32(-1),
        "shift by 32 is shift by 0"
    );
    let m = binop_module(Instr::I64Shl, ValType::I64, ValType::I64);
    assert_eq!(
        run1(&m, &[Value::I64(1), Value::I64(65)]).unwrap(),
        Value::I64(2)
    );
}

#[test]
fn rotates_wrap_correctly() {
    let m = binop_module(Instr::I32Rotl, ValType::I32, ValType::I32);
    assert_eq!(
        run1(&m, &[Value::I32(0x8000_0000u32 as i32), Value::I32(1)]).unwrap(),
        Value::I32(1)
    );
    let m = binop_module(Instr::I64Rotr, ValType::I64, ValType::I64);
    assert_eq!(
        run1(&m, &[Value::I64(1), Value::I64(1)]).unwrap(),
        Value::I64(i64::MIN)
    );
}

#[test]
fn signed_division_edge_cases() {
    let m = binop_module(Instr::I64DivS, ValType::I64, ValType::I64);
    assert_eq!(
        run1(&m, &[Value::I64(i64::MIN), Value::I64(-1)]).unwrap_err(),
        Trap::IntegerOverflow
    );
    assert_eq!(
        run1(&m, &[Value::I64(7), Value::I64(0)]).unwrap_err(),
        Trap::DivideByZero
    );
    // Truncated (not floored) division.
    assert_eq!(
        run1(&m, &[Value::I64(-7), Value::I64(2)]).unwrap(),
        Value::I64(-3)
    );
}

#[test]
fn remainder_min_by_minus_one_is_zero_not_trap() {
    let m = binop_module(Instr::I32RemS, ValType::I32, ValType::I32);
    assert_eq!(
        run1(&m, &[Value::I32(i32::MIN), Value::I32(-1)]).unwrap(),
        Value::I32(0)
    );
    let m = binop_module(Instr::I64RemS, ValType::I64, ValType::I64);
    assert_eq!(
        run1(&m, &[Value::I64(i64::MIN), Value::I64(-1)]).unwrap(),
        Value::I64(0)
    );
}

#[test]
fn unsigned_comparisons_treat_negatives_as_large() {
    let m = binop_module(Instr::I32LtU, ValType::I32, ValType::I32);
    assert_eq!(
        run1(&m, &[Value::I32(-1), Value::I32(1)]).unwrap(),
        Value::I32(0)
    );
    let m = binop_module(Instr::I64GtU, ValType::I64, ValType::I32);
    assert_eq!(
        run1(&m, &[Value::I64(-1), Value::I64(1)]).unwrap(),
        Value::I32(1)
    );
}

#[test]
fn clz_ctz_popcnt() {
    let m = unop_module(Instr::I32Clz, ValType::I32, ValType::I32);
    assert_eq!(run1(&m, &[Value::I32(0)]).unwrap(), Value::I32(32));
    assert_eq!(run1(&m, &[Value::I32(1)]).unwrap(), Value::I32(31));
    let m = unop_module(Instr::I64Ctz, ValType::I64, ValType::I64);
    assert_eq!(run1(&m, &[Value::I64(0)]).unwrap(), Value::I64(64));
    assert_eq!(run1(&m, &[Value::I64(8)]).unwrap(), Value::I64(3));
    let m = unop_module(Instr::I64Popcnt, ValType::I64, ValType::I64);
    assert_eq!(run1(&m, &[Value::I64(-1)]).unwrap(), Value::I64(64));
}

#[test]
fn float_min_max_nan_and_zero_semantics() {
    let m = binop_module(Instr::F64Min, ValType::F64, ValType::F64);
    let nan = run1(&m, &[Value::F64(f64::NAN), Value::F64(1.0)]).unwrap();
    assert!(nan.as_f64().is_nan(), "min propagates NaN");
    let z = run1(&m, &[Value::F64(0.0), Value::F64(-0.0)]).unwrap();
    assert!(z.as_f64().is_sign_negative(), "min(0, -0) = -0");
    let m = binop_module(Instr::F64Max, ValType::F64, ValType::F64);
    let z = run1(&m, &[Value::F64(-0.0), Value::F64(0.0)]).unwrap();
    assert!(z.as_f64().is_sign_positive(), "max(-0, 0) = +0");
}

#[test]
fn nearest_rounds_ties_to_even() {
    let m = unop_module(Instr::F64Nearest, ValType::F64, ValType::F64);
    assert_eq!(run1(&m, &[Value::F64(2.5)]).unwrap(), Value::F64(2.0));
    assert_eq!(run1(&m, &[Value::F64(3.5)]).unwrap(), Value::F64(4.0));
    assert_eq!(run1(&m, &[Value::F64(-2.5)]).unwrap(), Value::F64(-2.0));
    assert_eq!(run1(&m, &[Value::F64(0.5)]).unwrap(), Value::F64(0.0));
}

#[test]
fn trunc_conversions_trap_on_nan_and_range() {
    let m = unop_module(Instr::I32TruncF64S, ValType::F64, ValType::I32);
    assert_eq!(
        run1(&m, &[Value::F64(f64::NAN)]).unwrap_err(),
        Trap::InvalidConversion
    );
    assert_eq!(
        run1(&m, &[Value::F64(2_147_483_648.0)]).unwrap_err(),
        Trap::IntegerOverflow
    );
    assert_eq!(
        run1(&m, &[Value::F64(-2_147_483_648.9)]).unwrap(),
        Value::I32(i32::MIN)
    );
    let m = unop_module(Instr::I64TruncF64U, ValType::F64, ValType::I64);
    assert_eq!(
        run1(&m, &[Value::F64(-0.9)]).unwrap(),
        Value::I64(0),
        "fraction truncates"
    );
    assert_eq!(
        run1(&m, &[Value::F64(-1.0)]).unwrap_err(),
        Trap::IntegerOverflow
    );
}

#[test]
fn unsigned_convert_to_float() {
    let m = unop_module(Instr::F64ConvertI64U, ValType::I64, ValType::F64);
    assert_eq!(
        run1(&m, &[Value::I64(-1)]).unwrap(),
        Value::F64(18_446_744_073_709_551_615.0)
    );
    let m = unop_module(Instr::F64ConvertI32U, ValType::I32, ValType::F64);
    assert_eq!(
        run1(&m, &[Value::I32(-1)]).unwrap(),
        Value::F64(4_294_967_295.0)
    );
}

#[test]
fn reinterpret_preserves_bits() {
    let m = unop_module(Instr::I64ReinterpretF64, ValType::F64, ValType::I64);
    let bits = run1(&m, &[Value::F64(-0.0)]).unwrap();
    assert_eq!(bits, Value::I64(i64::MIN));
    let m = unop_module(Instr::F32ReinterpretI32, ValType::I32, ValType::F32);
    let v = run1(&m, &[Value::I32(0x7FC0_0001u32 as i32)]).unwrap();
    assert!(v.as_f32().is_nan(), "NaN payloads survive reinterpret");
}

#[test]
fn sign_extension_operators() {
    let m = unop_module(Instr::I32Extend8S, ValType::I32, ValType::I32);
    assert_eq!(run1(&m, &[Value::I32(0x80)]).unwrap(), Value::I32(-128));
    assert_eq!(run1(&m, &[Value::I32(0x7F)]).unwrap(), Value::I32(127));
    let m = unop_module(Instr::I64Extend32S, ValType::I64, ValType::I64);
    assert_eq!(
        run1(&m, &[Value::I64(0x8000_0000)]).unwrap(),
        Value::I64(-2_147_483_648)
    );
}

#[test]
fn wrap_and_extend_roundtrip() {
    let m = unop_module(Instr::I32WrapI64, ValType::I64, ValType::I32);
    assert_eq!(
        run1(&m, &[Value::I64(0x1_2345_6789)]).unwrap(),
        Value::I32(0x2345_6789)
    );
    let m = unop_module(Instr::I64ExtendI32U, ValType::I32, ValType::I64);
    assert_eq!(
        run1(&m, &[Value::I32(-1)]).unwrap(),
        Value::I64(0xFFFF_FFFF)
    );
}

#[test]
fn float_copysign_and_abs() {
    let m = binop_module(Instr::F64Copysign, ValType::F64, ValType::F64);
    assert_eq!(
        run1(&m, &[Value::F64(3.0), Value::F64(-0.0)]).unwrap(),
        Value::F64(-3.0)
    );
    let m = unop_module(Instr::F64Abs, ValType::F64, ValType::F64);
    let v = run1(&m, &[Value::F64(-0.0)]).unwrap();
    assert!(v.as_f64().is_sign_positive());
}

#[test]
fn select_and_drop() {
    let mut b = ModuleBuilder::new();
    let f = b.add_function(
        &[ValType::I32],
        &[ValType::I64],
        &[],
        vec![
            Instr::I64Const(111),
            Instr::I64Const(222),
            Instr::LocalGet(0),
            Instr::Select,
        ],
    );
    b.export_func("f", f);
    let m = b.build();
    assert_eq!(run1(&m, &[Value::I32(1)]).unwrap(), Value::I64(111));
    assert_eq!(run1(&m, &[Value::I32(0)]).unwrap(), Value::I64(222));
}

#[test]
fn float_division_produces_ieee_specials() {
    let m = binop_module(Instr::F64Div, ValType::F64, ValType::F64);
    assert_eq!(
        run1(&m, &[Value::F64(1.0), Value::F64(0.0)]).unwrap(),
        Value::F64(f64::INFINITY)
    );
    assert_eq!(
        run1(&m, &[Value::F64(-1.0), Value::F64(0.0)]).unwrap(),
        Value::F64(f64::NEG_INFINITY)
    );
    let v = run1(&m, &[Value::F64(0.0), Value::F64(0.0)]).unwrap();
    assert!(v.as_f64().is_nan());
}
