//! End-to-end execution semantics: whole modules through the interpreter.

use cage_engine::{BoundsCheckStrategy, ExecConfig, Imports, InternalSafety, Store, Trap, Value};
use cage_wasm::builder::ModuleBuilder;
use cage_wasm::instr::{LoadOp, StoreOp};
use cage_wasm::{BlockType, Instr, MemArg, Module, ValType};

fn run1(module: &Module, name: &str, args: &[Value]) -> Result<Vec<Value>, Trap> {
    let mut store = Store::new(ExecConfig::default());
    let h = store.instantiate(module, &Imports::new()).unwrap();
    store.invoke(h, name, args)
}

/// iterative factorial: tests loop + br_if + locals.
#[test]
fn factorial_loop() {
    let mut b = ModuleBuilder::new();
    // fn fact(n: i64) -> i64 { let mut acc = 1; while n > 1 { acc *= n; n -= 1 } acc }
    let f = b.add_function(
        &[ValType::I64],
        &[ValType::I64],
        &[ValType::I64], // acc
        vec![
            Instr::I64Const(1),
            Instr::LocalSet(1),
            Instr::Block(
                BlockType::Empty,
                vec![Instr::Loop(
                    BlockType::Empty,
                    vec![
                        // if n <= 1 break
                        Instr::LocalGet(0),
                        Instr::I64Const(1),
                        Instr::I64LeS,
                        Instr::BrIf(1),
                        // acc *= n
                        Instr::LocalGet(1),
                        Instr::LocalGet(0),
                        Instr::I64Mul,
                        Instr::LocalSet(1),
                        // n -= 1
                        Instr::LocalGet(0),
                        Instr::I64Const(1),
                        Instr::I64Sub,
                        Instr::LocalSet(0),
                        Instr::Br(0),
                    ],
                )],
            ),
            Instr::LocalGet(1),
        ],
    );
    b.export_func("fact", f);
    let m = b.build();
    cage_wasm::validate(&m).unwrap();
    assert_eq!(
        run1(&m, "fact", &[Value::I64(10)]).unwrap(),
        vec![Value::I64(3_628_800)]
    );
    assert_eq!(
        run1(&m, "fact", &[Value::I64(0)]).unwrap(),
        vec![Value::I64(1)]
    );
}

/// Recursive fibonacci: tests direct calls and the call-depth guard.
#[test]
fn fibonacci_recursion() {
    let mut b = ModuleBuilder::new();
    let f = b.add_function(
        &[ValType::I64],
        &[ValType::I64],
        &[],
        vec![], // patched below (needs own index)
    );
    b.set_body(
        f,
        vec![
            Instr::LocalGet(0),
            Instr::I64Const(2),
            Instr::I64LtS,
            Instr::If(
                BlockType::Value(ValType::I64),
                vec![Instr::LocalGet(0)],
                vec![
                    Instr::LocalGet(0),
                    Instr::I64Const(1),
                    Instr::I64Sub,
                    Instr::Call(f),
                    Instr::LocalGet(0),
                    Instr::I64Const(2),
                    Instr::I64Sub,
                    Instr::Call(f),
                    Instr::I64Add,
                ],
            ),
        ],
    );
    b.export_func("fib", f);
    let m = b.build();
    cage_wasm::validate(&m).unwrap();
    assert_eq!(
        run1(&m, "fib", &[Value::I64(15)]).unwrap(),
        vec![Value::I64(610)]
    );
}

#[test]
fn infinite_recursion_exhausts_call_stack() {
    let mut b = ModuleBuilder::new();
    let f = b.add_function(&[], &[], &[], vec![]);
    b.set_body(f, vec![Instr::Call(f)]);
    b.export_func("spin", f);
    let m = b.build();
    assert_eq!(run1(&m, "spin", &[]).unwrap_err(), Trap::CallStackExhausted);
}

#[test]
fn br_table_dispatch() {
    // switch (x) { 0 => 100, 1 => 200, default => 300 }
    let mut b = ModuleBuilder::new();
    let f = b.add_function(
        &[ValType::I32],
        &[ValType::I32],
        &[],
        vec![Instr::Block(
            BlockType::Value(ValType::I32),
            vec![
                Instr::Block(
                    BlockType::Empty,
                    vec![
                        Instr::Block(
                            BlockType::Empty,
                            vec![
                                Instr::Block(
                                    BlockType::Empty,
                                    vec![Instr::LocalGet(0), Instr::BrTable(vec![0, 1], 2)],
                                ),
                                Instr::I32Const(100),
                                Instr::Br(2),
                            ],
                        ),
                        Instr::I32Const(200),
                        Instr::Br(1),
                    ],
                ),
                Instr::I32Const(300),
            ],
        )],
    );
    b.export_func("switch", f);
    let m = b.build();
    cage_wasm::validate(&m).unwrap();
    assert_eq!(
        run1(&m, "switch", &[Value::I32(0)]).unwrap(),
        vec![Value::I32(100)]
    );
    assert_eq!(
        run1(&m, "switch", &[Value::I32(1)]).unwrap(),
        vec![Value::I32(200)]
    );
    assert_eq!(
        run1(&m, "switch", &[Value::I32(9)]).unwrap(),
        vec![Value::I32(300)]
    );
}

#[test]
fn division_traps() {
    let mut b = ModuleBuilder::new();
    let f = b.add_function(
        &[ValType::I32, ValType::I32],
        &[ValType::I32],
        &[],
        vec![Instr::LocalGet(0), Instr::LocalGet(1), Instr::I32DivS],
    );
    b.export_func("div", f);
    let m = b.build();
    assert_eq!(
        run1(&m, "div", &[Value::I32(7), Value::I32(0)]).unwrap_err(),
        Trap::DivideByZero
    );
    assert_eq!(
        run1(&m, "div", &[Value::I32(i32::MIN), Value::I32(-1)]).unwrap_err(),
        Trap::IntegerOverflow
    );
    assert_eq!(
        run1(&m, "div", &[Value::I32(-7), Value::I32(2)]).unwrap(),
        vec![Value::I32(-3)]
    );
}

#[test]
fn trunc_traps_on_nan() {
    let mut b = ModuleBuilder::new();
    let f = b.add_function(
        &[ValType::F64],
        &[ValType::I32],
        &[],
        vec![Instr::LocalGet(0), Instr::I32TruncF64S],
    );
    b.export_func("t", f);
    let m = b.build();
    assert_eq!(
        run1(&m, "t", &[Value::F64(f64::NAN)]).unwrap_err(),
        Trap::InvalidConversion
    );
    assert_eq!(
        run1(&m, "t", &[Value::F64(1e300)]).unwrap_err(),
        Trap::IntegerOverflow
    );
    assert_eq!(
        run1(&m, "t", &[Value::F64(-3.9)]).unwrap(),
        vec![Value::I32(-3)]
    );
}

#[test]
fn memory_load_store_roundtrip_wasm64() {
    let mut b = ModuleBuilder::new();
    b.add_memory64(1);
    let store_fn = b.add_function(
        &[ValType::I64, ValType::F64],
        &[],
        &[],
        vec![
            Instr::LocalGet(0),
            Instr::LocalGet(1),
            Instr::Store(StoreOp::F64Store, MemArg::none()),
        ],
    );
    let load_fn = b.add_function(
        &[ValType::I64],
        &[ValType::F64],
        &[],
        vec![
            Instr::LocalGet(0),
            Instr::Load(LoadOp::F64Load, MemArg::none()),
        ],
    );
    b.export_func("set", store_fn);
    b.export_func("get", load_fn);
    let m = b.build();

    let mut store = Store::new(ExecConfig::default());
    let h = store.instantiate(&m, &Imports::new()).unwrap();
    store
        .invoke(h, "set", &[Value::I64(1024), Value::F64(2.75)])
        .unwrap();
    assert_eq!(
        store.invoke(h, "get", &[Value::I64(1024)]).unwrap(),
        vec![Value::F64(2.75)]
    );
    // OOB traps.
    let err = store.invoke(h, "get", &[Value::I64(65_536)]).unwrap_err();
    assert!(matches!(err, Trap::OutOfBounds { .. }));
}

#[test]
fn memory_grow_and_size() {
    let mut b = ModuleBuilder::new();
    b.add_memory(cage_wasm::MemoryType {
        limits: cage_wasm::Limits::bounded(1, 3),
        memory64: true,
    });
    let grow = b.add_function(
        &[ValType::I64],
        &[ValType::I64],
        &[],
        vec![Instr::LocalGet(0), Instr::MemoryGrow],
    );
    let size = b.add_function(&[], &[ValType::I64], &[], vec![Instr::MemorySize]);
    b.export_func("grow", grow);
    b.export_func("size", size);
    let m = b.build();
    let mut store = Store::new(ExecConfig::default());
    let h = store.instantiate(&m, &Imports::new()).unwrap();
    assert_eq!(store.invoke(h, "size", &[]).unwrap(), vec![Value::I64(1)]);
    assert_eq!(
        store.invoke(h, "grow", &[Value::I64(2)]).unwrap(),
        vec![Value::I64(1)]
    );
    assert_eq!(store.invoke(h, "size", &[]).unwrap(), vec![Value::I64(3)]);
    // Past the max: -1.
    assert_eq!(
        store.invoke(h, "grow", &[Value::I64(1)]).unwrap(),
        vec![Value::I64(-1)]
    );
}

fn indirect_module() -> (Module, u32, u32) {
    let mut b = ModuleBuilder::new();
    let double = b.add_function(
        &[ValType::I64],
        &[ValType::I64],
        &[],
        vec![Instr::LocalGet(0), Instr::LocalGet(0), Instr::I64Add],
    );
    let square = b.add_function(
        &[ValType::I64],
        &[ValType::I64],
        &[],
        vec![Instr::LocalGet(0), Instr::LocalGet(0), Instr::I64Mul],
    );
    let wrong_sig = b.add_function(&[], &[], &[], vec![]);
    b.add_table(4);
    b.add_elem(0, vec![double, square, wrong_sig]);
    let ty = b.intern_type(cage_wasm::FuncType::new(&[ValType::I64], &[ValType::I64]));
    let dispatch = b.add_function(
        &[ValType::I32, ValType::I64],
        &[ValType::I64],
        &[],
        vec![
            Instr::LocalGet(1),
            Instr::LocalGet(0),
            Instr::CallIndirect(ty),
        ],
    );
    b.export_func("dispatch", dispatch);
    (b.build(), double, square)
}

#[test]
fn call_indirect_dispatches_by_table_index() {
    let (m, _, _) = indirect_module();
    cage_wasm::validate(&m).unwrap();
    assert_eq!(
        run1(&m, "dispatch", &[Value::I32(0), Value::I64(21)]).unwrap(),
        vec![Value::I64(42)]
    );
    assert_eq!(
        run1(&m, "dispatch", &[Value::I32(1), Value::I64(6)]).unwrap(),
        vec![Value::I64(36)]
    );
}

#[test]
fn call_indirect_traps() {
    let (m, _, _) = indirect_module();
    // Signature mismatch at index 2.
    assert_eq!(
        run1(&m, "dispatch", &[Value::I32(2), Value::I64(1)]).unwrap_err(),
        Trap::IndirectCallTypeMismatch
    );
    // Uninitialised element at index 3.
    assert_eq!(
        run1(&m, "dispatch", &[Value::I32(3), Value::I64(1)]).unwrap_err(),
        Trap::UndefinedElement
    );
    // Out of table bounds.
    assert_eq!(
        run1(&m, "dispatch", &[Value::I32(99), Value::I64(1)]).unwrap_err(),
        Trap::UndefinedElement
    );
}

#[test]
fn pointer_sign_auth_roundtrip_in_guest() {
    let mut b = ModuleBuilder::new();
    let f = b.add_function(
        &[ValType::I64],
        &[ValType::I64],
        &[],
        vec![Instr::LocalGet(0), Instr::PointerSign, Instr::PointerAuth],
    );
    let forge = b.add_function(
        &[ValType::I64],
        &[ValType::I64],
        &[],
        vec![Instr::LocalGet(0), Instr::PointerAuth],
    );
    b.export_func("roundtrip", f);
    b.export_func("forge", forge);
    let m = b.build();

    let config = ExecConfig {
        pointer_auth: true,
        ..ExecConfig::default()
    };
    let mut store = Store::new(config);
    let h = store.instantiate(&m, &Imports::new()).unwrap();
    assert_eq!(
        store.invoke(h, "roundtrip", &[Value::I64(0x4000)]).unwrap(),
        vec![Value::I64(0x4000)]
    );
    // Authenticating an unsigned pointer traps (FPAC).
    let err = store.invoke(h, "forge", &[Value::I64(0x4000)]).unwrap_err();
    assert!(matches!(err, Trap::PointerAuth(_)));
}

#[test]
fn pointer_auth_disabled_is_a_move() {
    let mut b = ModuleBuilder::new();
    let f = b.add_function(
        &[ValType::I64],
        &[ValType::I64],
        &[],
        vec![Instr::LocalGet(0), Instr::PointerAuth],
    );
    b.export_func("auth", f);
    let m = b.build();
    // Baseline config: auth is a no-op, nothing traps.
    assert_eq!(
        run1(&m, "auth", &[Value::I64(123)]).unwrap(),
        vec![Value::I64(123)]
    );
}

#[test]
fn segments_detect_overflow_between_allocations() {
    // Two adjacent segments; writing past the first through its tagged
    // pointer traps — Fig. 2's spatial-safety picture as a wasm program.
    let mut b = ModuleBuilder::new();
    b.add_memory64(1);
    let alloc = b.add_function(
        &[ValType::I64, ValType::I64],
        &[ValType::I64],
        &[],
        vec![Instr::LocalGet(0), Instr::LocalGet(1), Instr::SegmentNew(0)],
    );
    let poke = b.add_function(
        &[ValType::I64, ValType::I64],
        &[],
        &[],
        vec![
            Instr::LocalGet(0),
            Instr::LocalGet(1),
            Instr::Store(StoreOp::I64Store8, MemArg::none()),
        ],
    );
    b.export_func("alloc", alloc);
    b.export_func("poke", poke);
    let m = b.build();

    let config = ExecConfig {
        internal: InternalSafety::Mte,
        ..ExecConfig::default()
    };
    let mut store = Store::new(config);
    let h = store.instantiate(&m, &Imports::new()).unwrap();
    let p1 = store
        .invoke(h, "alloc", &[Value::I64(0), Value::I64(32)])
        .unwrap()[0];
    let _p2 = store
        .invoke(h, "alloc", &[Value::I64(32), Value::I64(32)])
        .unwrap()[0];
    // In-bounds write through p1 is fine.
    store.invoke(h, "poke", &[p1, Value::I64(7)]).unwrap();
    // Off-by-32 (into the second segment) through p1's tag: caught.
    let p1_past = Value::I64(p1.as_i64() + 32);
    let err = store
        .invoke(h, "poke", &[p1_past, Value::I64(7)])
        .unwrap_err();
    assert!(err.is_memory_safety_violation(), "{err}");
}

#[test]
fn segment_instructions_inert_on_baseline() {
    let mut b = ModuleBuilder::new();
    b.add_memory64(1);
    let f = b.add_function(
        &[],
        &[ValType::I64],
        &[],
        vec![
            Instr::I64Const(64),
            Instr::I64Const(32),
            Instr::SegmentNew(0),
        ],
    );
    b.export_func("new", f);
    let m = b.build();
    // Baseline: pointer passes through untagged.
    assert_eq!(run1(&m, "new", &[]).unwrap(), vec![Value::I64(64)]);
}

#[test]
fn mte_sandbox_runs_normal_code_and_catches_oob() {
    let mut b = ModuleBuilder::new();
    b.add_memory64(1);
    let touch = b.add_function(
        &[ValType::I64],
        &[ValType::I64],
        &[],
        vec![
            Instr::LocalGet(0),
            Instr::I64Const(1),
            Instr::Store(StoreOp::I64Store8, MemArg::none()),
            Instr::LocalGet(0),
            Instr::Load(LoadOp::I64Load8U, MemArg::none()),
        ],
    );
    b.export_func("touch", touch);
    let m = b.build();

    let config = ExecConfig {
        bounds: BoundsCheckStrategy::MteSandbox,
        ..ExecConfig::default()
    };
    let mut store = Store::new(config);
    let h = store.instantiate(&m, &Imports::new()).unwrap();
    assert_eq!(
        store.invoke(h, "touch", &[Value::I64(100)]).unwrap(),
        vec![Value::I64(1)]
    );
    let err = store
        .invoke(h, "touch", &[Value::I64(65_536 + 128)])
        .unwrap_err();
    assert!(matches!(err, Trap::TagCheck(_)), "{err}");
}

#[test]
fn cycle_accounting_is_deterministic() {
    let (m, _, _) = indirect_module();
    let run = || {
        let mut store = Store::new(ExecConfig::default());
        let h = store.instantiate(&m, &Imports::new()).unwrap();
        store
            .invoke(h, "dispatch", &[Value::I32(1), Value::I64(9)])
            .unwrap();
        (store.cycles(h), store.instr_count(h))
    };
    assert_eq!(run(), run());
}

#[test]
fn host_function_call_and_memory_access() {
    let mut b = ModuleBuilder::new();
    let log = b.import_func("env", "accumulate", &[ValType::I64], &[ValType::I64]);
    b.add_memory64(1);
    let f = b.add_function(
        &[ValType::I64],
        &[ValType::I64],
        &[],
        vec![Instr::LocalGet(0), Instr::Call(log)],
    );
    b.export_func("run", f);
    let m = b.build();

    use std::cell::RefCell;
    use std::rc::Rc;
    let seen: Rc<RefCell<Vec<i64>>> = Rc::new(RefCell::new(Vec::new()));
    let seen2 = seen.clone();
    let mut imports = Imports::new();
    imports.define(
        "env",
        "accumulate",
        cage_engine::host::HostFunc::new(&[ValType::I64], &[ValType::I64], move |ctx, args| {
            seen2.borrow_mut().push(args[0].as_i64());
            // The host can read/write guest memory through checks.
            ctx.write_bytes(8, &[0xAB])?;
            Ok(vec![Value::I64(args[0].as_i64() * 2)])
        }),
    );
    let mut store = Store::new(ExecConfig::default());
    let h = store.instantiate(&m, &imports).unwrap();
    assert_eq!(
        store.invoke(h, "run", &[Value::I64(5)]).unwrap(),
        vec![Value::I64(10)]
    );
    assert_eq!(*seen.borrow(), vec![5]);
    assert_eq!(store.memory(h).unwrap().read_resolved(8, 1), &[0xAB]);
}

#[test]
fn tag_reuse_extension_allows_more_than_fifteen_sandboxes() {
    // The §6.4 future-work mode: beyond 15 instances, sandbox tags wrap.
    // Isolation still holds because per-instance memories are disjoint and
    // out-of-bounds accesses land in zero-tagged runtime slack.
    let mut b = ModuleBuilder::new();
    b.add_memory64(1);
    let touch = b.add_function(
        &[ValType::I64],
        &[ValType::I64],
        &[],
        vec![
            Instr::LocalGet(0),
            Instr::I64Const(9),
            Instr::Store(StoreOp::I64Store8, MemArg::none()),
            Instr::LocalGet(0),
            Instr::Load(LoadOp::I64Load8U, MemArg::none()),
        ],
    );
    b.export_func("touch", touch);
    let m = b.build();

    let config = ExecConfig {
        bounds: BoundsCheckStrategy::MteSandbox,
        sandbox_tag_reuse: true,
        ..ExecConfig::default()
    };
    let mut store = Store::new(config);
    let mut handles = Vec::new();
    for i in 0..40 {
        let h = store
            .instantiate(&m, &Imports::new())
            .unwrap_or_else(|e| panic!("instance {i}: {e}"));
        handles.push(h);
    }
    // Every instance works, and every instance's escapes are still caught.
    for &h in &handles {
        assert_eq!(
            store.invoke(h, "touch", &[Value::I64(64)]).unwrap(),
            vec![Value::I64(9)]
        );
        let err = store
            .invoke(h, "touch", &[Value::I64(65_536 + 32)])
            .unwrap_err();
        assert!(matches!(err, Trap::TagCheck(_)), "{err}");
    }
    // Without the extension the 16th instantiation fails.
    let strict = ExecConfig {
        bounds: BoundsCheckStrategy::MteSandbox,
        ..ExecConfig::default()
    };
    let mut store = Store::new(strict);
    for _ in 0..15 {
        store.instantiate(&m, &Imports::new()).unwrap();
    }
    assert!(store.instantiate(&m, &Imports::new()).is_err());
}

#[test]
fn async_mode_defers_guest_fault_to_call_boundary() {
    // §2.3 asynchronous mode: the faulting store completes; the fault
    // surfaces at the next check point (our call boundary, standing in for
    // the kernel's context switch).
    let mut b = ModuleBuilder::new();
    b.add_memory64(1);
    let f = b.add_function(
        &[],
        &[ValType::I64],
        &[],
        vec![
            // Create a segment over [0,32), then store through an
            // untagged pointer (tag mismatch).
            Instr::I64Const(0),
            Instr::I64Const(32),
            Instr::SegmentNew(0),
            Instr::Drop,
            Instr::I64Const(0),
            Instr::I64Const(77),
            Instr::Store(StoreOp::I64Store, MemArg::none()),
            // The store completed; keep computing.
            Instr::I64Const(1),
        ],
    );
    b.export_func("f", f);
    let m = b.build();

    let config = ExecConfig {
        internal: InternalSafety::Mte,
        mte_mode: cage_mte::MteMode::Asynchronous,
        ..ExecConfig::default()
    };
    let mut store = Store::new(config);
    let h = store.instantiate(&m, &Imports::new()).unwrap();
    let err = store.invoke(h, "f", &[]).unwrap_err();
    assert!(matches!(err, Trap::AsyncTagCheck(_)), "{err}");
    // The write took effect before detection — async's weaker guarantee.
    let mem = store.memory(h).unwrap();
    assert_eq!(mem.read_resolved(0, 1)[0], 77);

    // Synchronous mode: the same program faults before the store lands.
    let config = ExecConfig {
        internal: InternalSafety::Mte,
        mte_mode: cage_mte::MteMode::Synchronous,
        ..ExecConfig::default()
    };
    let mut store = Store::new(config);
    let h = store.instantiate(&m, &Imports::new()).unwrap();
    let err = store.invoke(h, "f", &[]).unwrap_err();
    assert!(matches!(err, Trap::TagCheck(_)), "{err}");
    assert_eq!(store.memory(h).unwrap().read_resolved(0, 1)[0], 0);
}

#[test]
fn bulk_memory_fill_and_copy() {
    let mut b = ModuleBuilder::new();
    b.add_memory64(1);
    let f = b.add_function(
        &[],
        &[ValType::I64],
        &[],
        vec![
            // fill [64, 96) with 0xAB
            Instr::I64Const(64),
            Instr::I32Const(0xAB),
            Instr::I64Const(32),
            Instr::MemoryFill,
            // copy [64,96) -> [256,288)
            Instr::I64Const(256),
            Instr::I64Const(64),
            Instr::I64Const(32),
            Instr::MemoryCopy,
            // read back one byte
            Instr::I64Const(287),
            Instr::Load(LoadOp::I64Load8U, MemArg::none()),
        ],
    );
    b.export_func("f", f);
    let m = b.build();
    assert_eq!(run1(&m, "f", &[]).unwrap(), vec![Value::I64(0xAB)]);
}

#[test]
fn zero_length_bulk_ops_at_memory_boundary_do_not_trap() {
    // The Wasm bulk-memory spec permits `memory.fill`/`memory.copy` with
    // len == 0 when dst/src equal the memory size; only one-past traps.
    let mut b = ModuleBuilder::new();
    b.add_memory64(1);
    let fill = b.add_function(
        &[ValType::I64, ValType::I64],
        &[],
        &[],
        vec![
            Instr::LocalGet(0),
            Instr::I32Const(0xCC),
            Instr::LocalGet(1),
            Instr::MemoryFill,
        ],
    );
    let copy = b.add_function(
        &[ValType::I64, ValType::I64, ValType::I64],
        &[],
        &[],
        vec![
            Instr::LocalGet(0),
            Instr::LocalGet(1),
            Instr::LocalGet(2),
            Instr::MemoryCopy,
        ],
    );
    b.export_func("fill", fill);
    b.export_func("copy", copy);
    let m = b.build();
    let size = cage_wasm::types::PAGE_SIZE as i64;
    for config in [
        ExecConfig::default(),
        ExecConfig {
            bounds: BoundsCheckStrategy::MteSandbox,
            ..ExecConfig::default()
        },
        ExecConfig {
            internal: InternalSafety::Mte,
            ..ExecConfig::default()
        },
    ] {
        let mut store = Store::new(config);
        let h = store.instantiate(&m, &Imports::new()).unwrap();
        // Exactly at the boundary: permitted.
        store
            .invoke(h, "fill", &[Value::I64(size), Value::I64(0)])
            .unwrap();
        store
            .invoke(
                h,
                "copy",
                &[Value::I64(size), Value::I64(size), Value::I64(0)],
            )
            .unwrap();
    }
    // One past the boundary still traps under software bounds.
    let mut store = Store::new(ExecConfig::default());
    let h = store.instantiate(&m, &Imports::new()).unwrap();
    let err = store
        .invoke(h, "fill", &[Value::I64(size + 1), Value::I64(0)])
        .unwrap_err();
    assert!(matches!(err, Trap::OutOfBounds { .. }), "{err}");
}

#[test]
fn segment_tag_costs_round_partial_granules_up() {
    // A 15-byte segment occupies one 16-byte granule and must pay one
    // stzg's worth of cycles, not zero (div_ceil, not floor). The lengths
    // here are deliberately unaligned so segment.new traps immediately
    // after charging, leaving the charge isolated on the counter.
    let mut b = ModuleBuilder::new();
    b.add_memory64(1);
    let f = b.add_function(
        &[ValType::I64],
        &[ValType::I64],
        &[],
        vec![Instr::I64Const(0), Instr::LocalGet(0), Instr::SegmentNew(0)],
    );
    b.export_func("f", f);
    let m = b.build();
    let config = ExecConfig {
        internal: InternalSafety::Mte,
        ..ExecConfig::default()
    };
    let cycles_for = |len: i64| {
        let mut store = Store::new(config);
        let h = store.instantiate(&m, &Imports::new()).unwrap();
        store.invoke(h, "f", &[Value::I64(len)]).unwrap_err();
        (
            store.cycles(h),
            store.cost_model().segment_new_cost(1),
            store.cost_model().segment_new_cost(2),
        )
    };
    let (c15, one_granule, two_granules) = cycles_for(15);
    let (c31, _, _) = cycles_for(31);
    assert!(one_granule > 0.0, "stzg must cost cycles under MTE");
    // Same instruction mix, one extra granule of tagging cost.
    assert_eq!(c31 - c15, two_granules - one_granule);
    // And the 15-byte segment already pays for its single granule: the
    // only other charges in the body are the two const/local pushes.
    let store = Store::new(config);
    let simple = store
        .cost_model()
        .class_cost(cage_engine::InstrClass::Simple);
    assert_eq!(c15, 2.0 * simple + one_granule);
}

#[test]
fn bulk_ops_respect_tag_checks() {
    // memory.fill across a segment boundary must trap under MTE.
    let mut b = ModuleBuilder::new();
    b.add_memory64(1);
    let f = b.add_function(
        &[ValType::I64],
        &[],
        &[ValType::I64],
        vec![
            Instr::I64Const(64),
            Instr::I64Const(32),
            Instr::SegmentNew(0),
            Instr::LocalSet(1),
            // fill len bytes from the tagged pointer
            Instr::LocalGet(1),
            Instr::I32Const(7),
            Instr::LocalGet(0),
            Instr::MemoryFill,
        ],
    );
    b.export_func("f", f);
    let m = b.build();
    let config = ExecConfig {
        internal: InternalSafety::Mte,
        ..ExecConfig::default()
    };
    let mut store = Store::new(config);
    let h = store.instantiate(&m, &Imports::new()).unwrap();
    // Within the segment: ok.
    store.invoke(h, "f", &[Value::I64(32)]).unwrap();
    // Past it: trap.
    let mut store = Store::new(config);
    let h = store.instantiate(&m, &Imports::new()).unwrap();
    let err = store.invoke(h, "f", &[Value::I64(48)]).unwrap_err();
    assert!(matches!(err, Trap::TagCheck(_)), "{err}");
}
