//! Property tests for the allocation-free memory hot path.
//!
//! The scalar `read_scalar`/`write_scalar` pair must round-trip
//! bit-identically with the legacy byte-slice `read`/`write` pair across
//! every `LoadOp`/`StoreOp` width and every tag scheme, and the in-place
//! bulk `copy` must match a naive temp-buffer copy on every overlap shape.

use cage_engine::memory::PAGE_SIZE;
use cage_engine::{BoundsCheckStrategy, ExecConfig, InternalSafety, LinearMemory, TagScheme};
use cage_mte::{MteMode, Tag};
use cage_wasm::instr::{LoadOp, StoreOp};

const LOAD_OPS: [LoadOp; 14] = [
    LoadOp::I32Load,
    LoadOp::I64Load,
    LoadOp::F32Load,
    LoadOp::F64Load,
    LoadOp::I32Load8S,
    LoadOp::I32Load8U,
    LoadOp::I32Load16S,
    LoadOp::I32Load16U,
    LoadOp::I64Load8S,
    LoadOp::I64Load8U,
    LoadOp::I64Load16S,
    LoadOp::I64Load16U,
    LoadOp::I64Load32S,
    LoadOp::I64Load32U,
];

const STORE_OPS: [StoreOp; 9] = [
    StoreOp::I32Store,
    StoreOp::I64Store,
    StoreOp::F32Store,
    StoreOp::F64Store,
    StoreOp::I32Store8,
    StoreOp::I32Store16,
    StoreOp::I64Store8,
    StoreOp::I64Store16,
    StoreOp::I64Store32,
];

/// Every tag scheme with its matching execution config.
fn schemes() -> Vec<(TagScheme, ExecConfig)> {
    let base = ExecConfig::default();
    vec![
        (
            TagScheme::None,
            ExecConfig {
                bounds: BoundsCheckStrategy::Software,
                internal: InternalSafety::Off,
                ..base
            },
        ),
        (
            TagScheme::InternalOnly,
            ExecConfig {
                bounds: BoundsCheckStrategy::Software,
                internal: InternalSafety::Mte,
                ..base
            },
        ),
        (
            TagScheme::ExternalOnly {
                instance_tag: Tag::new(5).expect("valid tag"),
            },
            ExecConfig {
                bounds: BoundsCheckStrategy::MteSandbox,
                internal: InternalSafety::Off,
                ..base
            },
        ),
        (
            TagScheme::Combined,
            ExecConfig {
                bounds: BoundsCheckStrategy::MteSandbox,
                internal: InternalSafety::Mte,
                ..base
            },
        ),
    ]
}

fn mem(scheme: TagScheme) -> LinearMemory {
    let mode = if scheme == TagScheme::None {
        MteMode::Disabled
    } else {
        MteMode::Synchronous
    };
    LinearMemory::new(1, None, true, scheme, mode, 7)
}

fn mask(width: u64) -> u64 {
    if width == 8 {
        u64::MAX
    } else {
        (1u64 << (width * 8)) - 1
    }
}

/// Assembles the legacy byte-slice read the way the old interpreter did.
fn legacy_read(m: &mut LinearMemory, index: u64, width: u64, config: &ExecConfig) -> u64 {
    let bytes = m.read(index, 0, width, config).expect("in-bounds read");
    let mut buf = [0u8; 8];
    buf[..bytes.len()].copy_from_slice(&bytes);
    u64::from_le_bytes(buf)
}

proptest::proptest! {
    /// Scalar writes read back bit-identically through both the legacy
    /// byte-slice path and the scalar path, for every store width and
    /// every tag scheme — and vice versa for legacy writes.
    #[test]
    fn prop_scalar_and_slice_paths_agree(raw: u64, addr in 0u64..(PAGE_SIZE - 8)) {
        for (scheme, config) in schemes() {
            let mut m = mem(scheme);
            for op in STORE_OPS {
                let width = op.width();
                m.write_scalar(addr, 0, width, raw, &config).expect("scalar write");
                let expected = raw & mask(width);
                // Legacy byte-slice readback sees the same bits...
                proptest::prop_assert_eq!(
                    legacy_read(&mut m, addr, width, &config), expected,
                    "store {:?} under {:?}", op, scheme
                );
                // ...as does the scalar readback.
                let scalar = m.read_scalar(addr, 0, width, &config).expect("scalar read");
                proptest::prop_assert_eq!(scalar, expected);
            }
            for op in LOAD_OPS {
                let width = op.width();
                // Legacy byte-slice write, scalar readback.
                let bytes = raw.to_le_bytes();
                m.write(addr, 0, &bytes[..width as usize], &config).expect("slice write");
                let scalar = m.read_scalar(addr, 0, width, &config).expect("scalar read");
                proptest::prop_assert_eq!(
                    scalar, raw & mask(width),
                    "load {:?} under {:?}", op, scheme
                );
            }
        }
    }

    /// In-place `copy` matches a naive temp-buffer copy on arbitrary
    /// (including overlapping, in both directions) ranges.
    #[test]
    fn prop_bulk_copy_matches_temp_buffer_semantics(
        seed: u64,
        dst in 0u64..512,
        src in 0u64..512,
        len in 0u64..300,
    ) {
        let config = ExecConfig::default();
        let mut m = mem(TagScheme::None);
        // Deterministic pseudo-random initial contents.
        let mut state = seed | 1;
        let mut image: Vec<u8> = (0..1024u64)
            .map(|_| {
                state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                (state >> 56) as u8
            })
            .collect();
        m.write(0, 0, &image, &config).expect("init write");
        // Naive model: read through a temporary buffer, then write.
        let temp = image[src as usize..(src + len) as usize].to_vec();
        image[dst as usize..(dst + len) as usize].copy_from_slice(&temp);
        // In-place engine copy.
        m.copy(dst, src, len, &config).expect("bulk copy");
        proptest::prop_assert_eq!(m.read_resolved(0, 1024), &image[..]);
    }

    /// Bulk `fill` matches a byte-loop on arbitrary in-bounds ranges.
    #[test]
    fn prop_bulk_fill_matches_byte_loop(
        val: u64,
        dst in 0u64..900,
        len in 0u64..100,
    ) {
        let config = ExecConfig::default();
        let mut m = mem(TagScheme::None);
        let val = val as u8;
        m.fill(dst, val, len, &config).expect("bulk fill");
        let got = m.read_resolved(dst, len.max(1));
        if len > 0 {
            proptest::prop_assert!(got.iter().all(|b| *b == val));
        }
    }
}

/// Zero-length bulk operations are permitted exactly at the memory
/// boundary (Wasm bulk-memory semantics) but not past it.
#[test]
fn zero_length_bulk_ops_at_boundary() {
    for (scheme, config) in schemes() {
        let mut m = mem(scheme);
        let size = m.size();
        m.fill(size, 0xAB, 0, &config)
            .unwrap_or_else(|e| panic!("fill len=0 at boundary under {scheme:?}: {e}"));
        m.copy(size, size, 0, &config)
            .unwrap_or_else(|e| panic!("copy len=0 at boundary under {scheme:?}: {e}"));
        m.copy(0, size, 0, &config).expect("src at boundary");
        m.copy(size, 0, 0, &config).expect("dst at boundary");
    }
    // One past the end traps under every strategy: zero-width accesses
    // touch no granule, so even the MTE-sandbox variants fall back to the
    // spec's `addr <= len(mem)` bounds check.
    for (scheme, config) in schemes() {
        let mut m = mem(scheme);
        let size = m.size();
        assert!(
            m.fill(size + 1, 0, 0, &config).is_err(),
            "fill past boundary under {scheme:?}"
        );
        assert!(m.copy(size + 1, 0, 0, &config).is_err());
        assert!(m.copy(0, size + 1, 0, &config).is_err());
    }
}
