//! `cagec` — the Cage toolchain driver.
//!
//! Compile a C file to hardened wasm64, optionally emit the binary module,
//! list its exports, and/or run an exported function on a simulated
//! Tensor G3 core:
//!
//! ```sh
//! cagec program.c --variant cage --invoke main
//! cagec program.c --variant wasm64 --emit program.wasm
//! cagec program.c --list-exports
//! cagec program.c --invoke work 42 7 --core a510 --stats
//! ```
//!
//! Exit codes distinguish failure stages: `1` for compile/build errors,
//! `2` for usage errors, `3` for guest traps, `4` for instantiation
//! failures (e.g. the §6.4 sandbox-tag budget), `5` when the input
//! exceeds the engine's compile limits (too big or too deep to ingest).

use std::process::ExitCode;

use cage::{Core, Engine, Error, OptPasses, Value, Variant};

/// Compile (or usage/I-O) failure.
const EXIT_COMPILE: u8 = 1;
/// Bad command line.
const EXIT_USAGE: u8 = 2;
/// The guest trapped.
const EXIT_TRAP: u8 = 3;
/// Instantiation failed.
const EXIT_INSTANTIATE: u8 = 4;
/// The input exceeded a compile limit — a resource-bound rejection
/// (distinct from a malformed program, which is `EXIT_COMPILE`).
const EXIT_LIMIT: u8 = 5;

struct Args {
    input: String,
    variant: Variant,
    core: Core,
    emit: Option<String>,
    emit_wat: Option<String>,
    invoke: Option<(String, Vec<i64>)>,
    list_exports: bool,
    dump_bytecode: Option<String>,
    stats: bool,
    memory_pages: u64,
    opt: OptLevel,
}

/// Optimisation level selected on the command line.
#[derive(Clone, Copy, PartialEq, Eq)]
enum OptLevel {
    /// The standard pipeline (mem2reg, const-fold, DCE).
    Default,
    /// `--opt`: standard plus CSE, store-to-load forwarding, strength
    /// reduction and CFG simplification.
    Full,
    /// `-O0`: no optimisation passes at all (sanitizers only).
    None,
}

const USAGE: &str = "\
usage: cagec <file.c> [options]

options:
  --variant <v>    wasm32 | wasm64 | mem-safety | ptr-auth | sandboxing | cage
                   (default: cage)
  --core <c>       x3 | a715 | a510 (default: x3)
  --emit <path>    write the compiled wasm module to <path>
  --emit-wat <path> write a WAT-flavoured text dump to <path>
  --invoke <fn> [int args...]
                   run an exported function with i64 arguments
  --list-exports   print the exported functions and their signatures
  --dump-bytecode <fn>
                   disassemble the flat bytecode of an exported function
                   (pc, op, resolved branch targets)
  --memory <pages> linear memory size in 64 KiB pages (default: 64)
  --opt            enable the full IR optimiser (CSE, load forwarding,
                   strength reduction, CFG simplify) on top of the
                   standard passes
  -O0              disable all optimisation passes (sanitizers only)
  --stats          print simulated cycles/time and memory report

exit codes: 1 compile error, 2 usage, 3 guest trap, 4 instantiation failure,
            5 input exceeds compile limits
";

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1).peekable();
    let mut input = None;
    let mut variant = Variant::CageFull;
    let mut core = Core::CortexX3;
    let mut emit = None;
    let mut emit_wat = None;
    let mut invoke = None;
    let mut list_exports = false;
    let mut dump_bytecode = None;
    let mut stats = false;
    let mut memory_pages = 64;
    let mut opt = OptLevel::Default;
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--variant" => {
                let v = argv.next().ok_or("--variant needs a value")?;
                variant = match v.as_str() {
                    "wasm32" => Variant::BaselineWasm32,
                    "wasm64" => Variant::BaselineWasm64,
                    "mem-safety" => Variant::CageMemSafety,
                    "ptr-auth" => Variant::CagePtrAuth,
                    "sandboxing" => Variant::CageSandboxing,
                    "cage" => Variant::CageFull,
                    other => return Err(format!("unknown variant `{other}`")),
                };
            }
            "--core" => {
                let v = argv.next().ok_or("--core needs a value")?;
                core = match v.as_str() {
                    "x3" => Core::CortexX3,
                    "a715" => Core::CortexA715,
                    "a510" => Core::CortexA510,
                    other => return Err(format!("unknown core `{other}`")),
                };
            }
            "--emit" => emit = Some(argv.next().ok_or("--emit needs a path")?),
            "--emit-wat" => emit_wat = Some(argv.next().ok_or("--emit-wat needs a path")?),
            "--invoke" => {
                let name = argv.next().ok_or("--invoke needs a function name")?;
                let mut args = Vec::new();
                while let Some(peek) = argv.peek() {
                    match peek.parse::<i64>() {
                        Ok(v) => {
                            args.push(v);
                            argv.next();
                        }
                        Err(_) => break,
                    }
                }
                invoke = Some((name, args));
            }
            "--list-exports" => list_exports = true,
            "--dump-bytecode" => {
                dump_bytecode = Some(argv.next().ok_or("--dump-bytecode needs a function name")?);
            }
            "--memory" => {
                memory_pages = argv
                    .next()
                    .ok_or("--memory needs a page count")?
                    .parse()
                    .map_err(|_| "--memory needs an integer")?;
            }
            "--stats" => stats = true,
            "--opt" => opt = OptLevel::Full,
            "-O0" => opt = OptLevel::None,
            "--help" | "-h" => return Err(String::new()),
            other if input.is_none() && !other.starts_with('-') => {
                input = Some(other.to_string());
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    Ok(Args {
        input: input.ok_or("missing input file")?,
        variant,
        core,
        emit,
        emit_wat,
        invoke,
        list_exports,
        dump_bytecode,
        stats,
        memory_pages,
        opt,
    })
}

/// Renders the unified error with its full source-context chain, skipping
/// causes whose text the parent message already embeds.
fn report(err: &Error) {
    let mut shown = err.to_string();
    eprintln!("cagec: error: {shown}");
    let mut source = std::error::Error::source(err);
    while let Some(cause) = source {
        let text = cause.to_string();
        if !shown.contains(&text) {
            eprintln!("cagec:   caused by: {text}");
            shown = text;
        }
        source = cause.source();
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("cagec: {msg}\n");
            }
            eprint!("{USAGE}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    // Read as bytes first: a non-UTF-8 (e.g. binary) input gets its own
    // message instead of a raw io error — and never a panic, whatever
    // the file holds. Empty input is fine; it compiles to an empty
    // module.
    let bytes = match std::fs::read(&args.input) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cagec: cannot read {}: {e}", args.input);
            return ExitCode::from(EXIT_COMPILE);
        }
    };
    let source = match String::from_utf8(bytes) {
        Ok(s) => s,
        Err(e) => {
            eprintln!(
                "cagec: {}: source is not valid UTF-8 (bad byte at offset {})",
                args.input,
                e.utf8_error().valid_up_to()
            );
            return ExitCode::from(EXIT_COMPILE);
        }
    };
    let mut builder = Engine::builder(args.variant)
        .core(args.core)
        .memory_pages(args.memory_pages);
    match args.opt {
        OptLevel::Default => {}
        OptLevel::Full => builder = builder.opt_passes(OptPasses::full()),
        OptLevel::None => builder = builder.optimize(false),
    }
    let engine = builder.build();
    let artifact = match engine.compile(&source) {
        Ok(a) => a,
        Err(e) => {
            report(&e);
            return ExitCode::from(if e.limit().is_some() {
                EXIT_LIMIT
            } else {
                EXIT_COMPILE
            });
        }
    };
    eprintln!(
        "compiled {} ({} bytes of wasm, variant {})",
        args.input,
        artifact.wasm_bytes().len(),
        artifact.variant()
    );

    if let Some(path) = &args.emit {
        if let Err(e) = std::fs::write(path, artifact.wasm_bytes()) {
            eprintln!("cagec: cannot write {path}: {e}");
            return ExitCode::from(EXIT_COMPILE);
        }
        eprintln!("wrote {path}");
    }

    if let Some(path) = &args.emit_wat {
        let text = cage::wasm::text::print_module(artifact.module());
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("cagec: cannot write {path}: {e}");
            return ExitCode::from(EXIT_COMPILE);
        }
        eprintln!("wrote {path}");
    }

    if args.list_exports {
        // Static listing from the artifact: needs no host surface, so it
        // works even when the program declares unbound `env.*` imports.
        println!("exports of {} ({}):", args.input, artifact.variant());
        for (name, sig) in artifact.exports() {
            println!("  {name} {sig}");
        }
    }

    if let Some(name) = &args.dump_bytecode {
        match artifact.disassemble(name) {
            Some(text) => print!("{text}"),
            None => {
                eprintln!("cagec: no exported function \"{name}\" to disassemble");
                return ExitCode::from(EXIT_USAGE);
            }
        }
    }

    if args.invoke.is_some() {
        let mut instance = match engine.instantiate(&artifact) {
            Ok(i) => i,
            Err(e) => {
                report(&e);
                return ExitCode::from(EXIT_INSTANTIATE);
            }
        };

        if let Some((name, int_args)) = &args.invoke {
            let values: Vec<Value> = int_args.iter().map(|v| Value::I64(*v)).collect();
            match instance.invoke(name, &values) {
                Ok(results) => {
                    print!("{}", instance.stdout());
                    for r in &results {
                        println!("{r}");
                    }
                    if args.stats {
                        eprintln!(
                            "[stats] {:.0} cycles, {:.6} ms simulated on {}, {} instructions",
                            instance.cycles(),
                            instance.simulated_ms(),
                            args.core,
                            instance.instr_count()
                        );
                        let mem = instance.memory_report();
                        eprintln!(
                            "[stats] linear {} B, tag space {} B, heap peak {} B",
                            mem.linear_bytes, mem.tag_bytes, mem.heap_peak_bytes
                        );
                    }
                }
                Err(err) => {
                    print!("{}", instance.stdout());
                    report(&err);
                    if err.is_memory_safety_violation() {
                        eprintln!("cagec: (memory-safety violation caught by Cage)");
                    }
                    return ExitCode::from(EXIT_TRAP);
                }
            }
        }
    }
    ExitCode::SUCCESS
}
