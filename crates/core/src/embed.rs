//! The embedder API: [`Engine`], [`Artifact`], [`Instance`] and
//! [`TypedFunc`] — the wasmtime-style embedding model.
//!
//! An `Engine` is the shared, cheaply-cloneable compilation environment:
//! variant, simulated core, cost model, memory/stack sizing and the pass
//! pipeline. One engine compiles any number of [`Artifact`]s; one artifact
//! instantiates any number of times — against the engine's default libc
//! linker, a custom [`Linker`], or into a shared [`Runtime`] for
//! multi-instance processes under the §6.4 MTE tag budget.

use std::fmt;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cage_engine::{CostModel, ExecConfig, WasmParams, WasmResults};
use cage_ir::passes::{HardenConfig, OptPasses, PipelineConfig};
use cage_mte::Core;
use cage_runtime::{InstanceToken, Linker, MemoryReport, Runtime, Variant};
use cage_wasm::{CompileLimits, ValType};

use crate::error::Error;
use crate::Value;

/// The shared compilation environment (cheap to clone, wasmtime-style).
///
/// ```
/// use cage::{Engine, Variant};
///
/// # fn main() -> Result<(), cage::Error> {
/// let engine = Engine::new(Variant::CageFull);
/// let artifact = engine.compile("long f(long x) { return x * 2; }")?;
/// let mut instance = engine.instantiate(&artifact)?;
/// let f = instance.get_typed::<i64, i64>("f")?;
/// assert_eq!(f.call(&mut instance, 21)?, 42);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Engine {
    inner: Arc<EngineInner>,
}

#[derive(Debug)]
struct EngineInner {
    variant: Variant,
    core: Core,
    memory_pages: u64,
    stack_size: u64,
    pipeline: PipelineConfig,
    limits: CompileLimits,
}

impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("variant", &self.inner.variant)
            .field("core", &self.inner.core)
            .field("memory_pages", &self.inner.memory_pages)
            .field("stack_size", &self.inner.stack_size)
            .field("pipeline", &self.inner.pipeline)
            .finish()
    }
}

impl Engine {
    /// An engine with the standard configuration for `variant`: the
    /// Cortex-X3 core, 64 pages of linear memory, a 64 KiB shadow stack
    /// and the variant's own pass pipeline.
    #[must_use]
    pub fn new(variant: Variant) -> Self {
        Engine::builder(variant).build()
    }

    /// Starts configuring an engine for `variant`.
    #[must_use]
    pub fn builder(variant: Variant) -> EngineBuilder {
        EngineBuilder {
            variant,
            core: Core::CortexX3,
            memory_pages: 64,
            stack_size: 64 * 1024,
            pipeline: PipelineConfig::standard(variant.harden_config()),
            limits: CompileLimits::default(),
        }
    }

    /// The Table 3 variant.
    #[must_use]
    pub fn variant(&self) -> Variant {
        self.inner.variant
    }

    /// The simulated Tensor G3 core.
    #[must_use]
    pub fn core(&self) -> Core {
        self.inner.core
    }

    /// Linear memory in 64 KiB pages.
    #[must_use]
    pub fn memory_pages(&self) -> u64 {
        self.inner.memory_pages
    }

    /// Shadow-stack bytes.
    #[must_use]
    pub fn stack_size(&self) -> u64 {
        self.inner.stack_size
    }

    /// The configured pass pipeline.
    #[must_use]
    pub fn pipeline(&self) -> PipelineConfig {
        self.inner.pipeline
    }

    /// The compile limits every [`Engine::compile`] runs under.
    #[must_use]
    pub fn compile_limits(&self) -> CompileLimits {
        self.inner.limits
    }

    /// The execution configuration instances run under.
    #[must_use]
    pub fn exec_config(&self) -> ExecConfig {
        self.inner.variant.exec_config(self.inner.core)
    }

    /// The cycle cost model for this engine's core and configuration.
    #[must_use]
    pub fn cost_model(&self) -> CostModel {
        CostModel::for_config(&self.exec_config())
    }

    /// Compiles and hardens C `source` into an [`Artifact`].
    ///
    /// Every stage runs under the engine's [`CompileLimits`] and a
    /// shared compile-fuel budget, so arbitrary (hostile) source is
    /// rejected with a structured error instead of wedging the process.
    /// A residual panic in any stage is caught here, counted in
    /// [`compile_panic_count`], and reported as
    /// [`Error::CompilePanic`] — never propagated to the caller's
    /// thread.
    ///
    /// # Errors
    ///
    /// [`Error::Compile`] / [`Error::Lower`] / [`Error::Validate`] on
    /// malformed input, [`Error::LimitExceeded`] on oversized input,
    /// [`Error::CompilePanic`] if a stage panicked (a toolchain bug).
    pub fn compile(&self, source: &str) -> Result<Artifact, Error> {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.compile_inner(source)))
        {
            Ok(result) => result,
            Err(payload) => {
                COMPILE_PANICS.fetch_add(1, Ordering::Relaxed);
                Err(Error::CompilePanic {
                    message: panic_message(&*payload),
                })
            }
        }
    }

    /// The compile pipeline proper: frontend → passes → lowering →
    /// validation, one limit policy and one fuel budget across all of
    /// it. [`Engine::compile`] wraps this in the panic backstop.
    fn compile_inner(&self, source: &str) -> Result<Artifact, Error> {
        let limits = self.inner.limits;
        let fuel = limits.fuel();
        let ptr_bytes = self.inner.variant.ptr_width().bytes();
        let ast = cage_cc::parse_with(source, &limits, &fuel)?;
        let mut ir_module =
            cage_cc::codegen::compile_ast_for_with(&ast, ptr_bytes, &limits, &fuel)?;
        cage_ir::passes::run_pipeline_config_fueled(&mut ir_module, &self.inner.pipeline, &fuel)?;
        let lowered = cage_ir::lower_with_limits(
            &ir_module,
            &cage_ir::LowerOptions {
                ptr_width: self.inner.variant.ptr_width(),
                memory_pages: self.inner.memory_pages,
                stack_size: self.inner.stack_size,
            },
            &limits,
            &fuel,
        )?;
        cage_wasm::validate_with_limits(&lowered.module, &limits, &fuel)?;
        Ok(Artifact {
            module: lowered.module,
            heap_base: lowered.heap_base,
            variant: self.inner.variant,
            memory_pages: self.inner.memory_pages,
        })
    }

    /// A fresh simulated process (engine store) for this configuration —
    /// instantiate several artifacts into it to share the §6.4 sandbox-tag
    /// budget.
    #[must_use]
    pub fn runtime(&self) -> Runtime {
        Runtime::new(self.inner.variant, self.inner.core)
    }

    /// Builds a `Send + Sync` serving template from `artifact`: validated
    /// and compiled once, then stamped out by per-worker
    /// [`cage_serve::Pool`]s without re-running compilation or link
    /// resolution.
    ///
    /// # Errors
    ///
    /// [`Error::VariantMismatch`] when the artifact was compiled for a
    /// different variant; [`Error::Instantiate`] when validation fails;
    /// [`Error::LimitExceeded`] when the module busts the engine's
    /// compile limits.
    pub fn instance_pre(
        &self,
        artifact: &Artifact,
        host: cage_serve::HostProfile,
    ) -> Result<cage_serve::InstancePre, Error> {
        if artifact.variant != self.inner.variant {
            return Err(Error::VariantMismatch {
                artifact: artifact.variant.to_string(),
                engine: self.inner.variant.to_string(),
            });
        }
        cage_serve::InstancePre::with_limits(
            self.inner.variant,
            self.inner.core,
            &artifact.module,
            artifact.heap_base,
            host,
            &self.inner.limits,
        )
        .map_err(|e| match e {
            cage_serve::ServeError::Rejected(l) => Error::LimitExceeded(l),
            cage_serve::ServeError::CompilePanic(message) => Error::CompilePanic { message },
            cage_serve::ServeError::Instantiate(i) => Error::Instantiate(i),
            cage_serve::ServeError::Trap(t) => Error::Trap(t),
            // A template build never checks out pool slots, so
            // `Exhausted` cannot occur here; route it through the
            // internal-bug bucket rather than panicking if that ever
            // changes.
            other => Error::CompilePanic {
                message: other.to_string(),
            },
        })
    }

    /// Instantiates `artifact` in its own process with the hardened libc.
    ///
    /// # Errors
    ///
    /// [`Error::Instantiate`].
    pub fn instantiate(&self, artifact: &Artifact) -> Result<Instance, Error> {
        self.instantiate_with(artifact, &Linker::with_libc())
    }

    /// Instantiates `artifact` in its own process against `linker`.
    ///
    /// # Errors
    ///
    /// [`Error::VariantMismatch`] when the artifact was compiled for a
    /// different variant than this engine runs (its hardening
    /// instructions would not match the execution config), and
    /// [`Error::Instantiate`] — including unresolved imports when the
    /// linker does not cover the module's host surface.
    pub fn instantiate_with(
        &self,
        artifact: &Artifact,
        linker: &Linker,
    ) -> Result<Instance, Error> {
        if artifact.variant != self.inner.variant {
            return Err(Error::VariantMismatch {
                artifact: artifact.variant.to_string(),
                engine: self.inner.variant.to_string(),
            });
        }
        let mut rt = self.runtime();
        let token = rt.instantiate_linked(&artifact.module, artifact.heap_base, linker)?;
        Ok(Instance::new(rt, token))
    }
}

/// Configures an [`Engine`] beyond the variant defaults.
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    variant: Variant,
    core: Core,
    memory_pages: u64,
    stack_size: u64,
    pipeline: PipelineConfig,
    limits: CompileLimits,
}

impl EngineBuilder {
    /// Selects the simulated core.
    #[must_use]
    pub fn core(mut self, core: Core) -> Self {
        self.core = core;
        self
    }

    /// Sets linear memory size in 64 KiB pages.
    #[must_use]
    pub fn memory_pages(mut self, pages: u64) -> Self {
        self.memory_pages = pages;
        self
    }

    /// Sets the shadow-stack size in bytes.
    #[must_use]
    pub fn stack_size(mut self, bytes: u64) -> Self {
        self.stack_size = bytes;
        self
    }

    /// Overrides the sanitizer passes (defaults to the variant's own).
    #[must_use]
    pub fn passes(mut self, harden: HardenConfig) -> Self {
        self.pipeline.harden = harden;
        self
    }

    /// Enables or disables the optimisation passes that precede the
    /// sanitizers (on by default; off is useful for ablations).
    #[must_use]
    pub fn optimize(mut self, optimize: bool) -> Self {
        self.pipeline.optimize = optimize;
        self
    }

    /// Selects the extended optimiser passes (CSE, store-to-load
    /// forwarding, strength reduction, CFG simplification) layered on
    /// top of the standard trio. Off by default: the default
    /// pipeline's output is pinned byte-for-byte by the PolyBench
    /// cycle golden file, while the optimised pipeline has its own
    /// golden variant (charges follow the surviving ops).
    #[must_use]
    pub fn opt_passes(mut self, opt: OptPasses) -> Self {
        self.pipeline.opt = opt;
        self
    }

    /// Overrides the compile limits (defaults to
    /// [`CompileLimits::default`] — generous, but bounded). Use
    /// [`CompileLimits::unlimited`] only for trusted input.
    #[must_use]
    pub fn limits(mut self, limits: CompileLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Finishes the engine.
    #[must_use]
    pub fn build(self) -> Engine {
        Engine {
            inner: Arc::new(EngineInner {
                variant: self.variant,
                core: self.core,
                memory_pages: self.memory_pages,
                stack_size: self.stack_size,
                pipeline: self.pipeline,
                limits: self.limits,
            }),
        }
    }
}

/// A compiled, hardened module ready to instantiate.
#[derive(Debug, Clone)]
pub struct Artifact {
    pub(crate) module: cage_wasm::Module,
    pub(crate) heap_base: u64,
    pub(crate) variant: Variant,
    pub(crate) memory_pages: u64,
}

impl Artifact {
    /// The wasm module.
    #[must_use]
    pub fn module(&self) -> &cage_wasm::Module {
        &self.module
    }

    /// First heap byte (where the hardened allocator starts).
    #[must_use]
    pub fn heap_base(&self) -> u64 {
        self.heap_base
    }

    /// The variant this artifact was compiled for.
    #[must_use]
    pub fn variant(&self) -> Variant {
        self.variant
    }

    /// Linear-memory pages the module declares.
    #[must_use]
    pub fn memory_pages(&self) -> u64 {
        self.memory_pages
    }

    /// Serialises to the binary format (with Cage's `0xFB` instructions).
    #[must_use]
    pub fn wasm_bytes(&self) -> Vec<u8> {
        cage_wasm::binary::encode(&self.module)
    }

    /// The exported function names and their signatures, in module order —
    /// available without instantiating (no host surface required).
    #[must_use]
    pub fn exports(&self) -> Vec<(String, String)> {
        list_exports(&self.module)
    }

    /// Disassembles the flat bytecode the interpreter will execute for the
    /// exported function `name` — program counters, ops and resolved
    /// branch targets (the `cagec --dump-bytecode` backend).
    ///
    /// Returns `None` when `name` is not an exported local function
    /// (imported host functions have no bytecode).
    #[must_use]
    pub fn disassemble(&self, name: &str) -> Option<String> {
        match self.module.export(name)?.kind {
            cage_wasm::ExportKind::Func(idx) => cage_engine::disassemble(&self.module, idx),
            _ => None,
        }
    }

    /// Instantiates into an existing runtime against `linker` — the
    /// multi-instance path sharing one store's MTE tag budget (§6.4).
    ///
    /// # Errors
    ///
    /// [`Error::VariantMismatch`] when `rt` runs a different variant than
    /// this artifact was compiled for, and [`Error::Instantiate`] —
    /// including `TooManySandboxes` past the 15-instance limit.
    pub fn instantiate_into(
        &self,
        rt: &mut Runtime,
        linker: &Linker,
    ) -> Result<InstanceToken, Error> {
        if rt.variant() != self.variant {
            return Err(Error::VariantMismatch {
                artifact: self.variant.to_string(),
                engine: rt.variant().to_string(),
            });
        }
        Ok(rt.instantiate_linked(&self.module, self.heap_base, linker)?)
    }

    /// Instantiates on `core` with a fresh runtime and libc.
    ///
    /// # Errors
    ///
    /// Instantiation errors (e.g. sandbox-tag exhaustion).
    #[deprecated(
        since = "0.2.0",
        note = "use `Engine::instantiate` / `Engine::instantiate_with`"
    )]
    pub fn instantiate(&self, core: Core) -> Result<Instance, cage_runtime::RuntimeError> {
        let mut rt = Runtime::new(self.variant, core);
        let token = rt.instantiate_linked(&self.module, self.heap_base, &Linker::with_libc())?;
        Ok(Instance::new(rt, token))
    }

    /// Instantiates into an existing runtime (multi-instance processes).
    ///
    /// # Errors
    ///
    /// Instantiation errors.
    #[deprecated(
        since = "0.2.0",
        note = "use `Artifact::instantiate_into` with a `Linker`"
    )]
    pub fn instantiate_in(
        &self,
        rt: &mut Runtime,
    ) -> Result<InstanceToken, cage_runtime::RuntimeError> {
        rt.instantiate_linked(&self.module, self.heap_base, &Linker::with_libc())
    }
}

/// A live instance with its runtime.
pub struct Instance {
    rt: Runtime,
    token: InstanceToken,
    /// Process-unique identity: lets a [`TypedFunc`] detect being called
    /// on a different instance than the one that validated it.
    id: u64,
}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Instance")
            .field("variant", &self.rt.variant())
            .finish()
    }
}

/// Source of unique [`Instance`] identities.
static NEXT_INSTANCE_ID: AtomicU64 = AtomicU64::new(0);

/// Compile stages that panicked and were caught at the
/// [`Engine::compile`] boundary (each one is a toolchain bug — the
/// pipeline is supposed to reject every input with a structured error).
static COMPILE_PANICS: AtomicU64 = AtomicU64::new(0);

/// How many [`Engine::compile`] calls have ever panicked inside a
/// compile stage (and been converted to [`Error::CompilePanic`]).
/// Process-wide, monotonic — the fuzz harness asserts it stays zero.
#[must_use]
pub fn compile_panic_count() -> u64 {
    COMPILE_PANICS.load(Ordering::Relaxed)
}

/// Renders a caught panic payload for diagnostics.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

impl Instance {
    /// Wraps a freshly instantiated (runtime, token) pair.
    pub(crate) fn new(rt: Runtime, token: InstanceToken) -> Self {
        Instance {
            rt,
            token,
            id: NEXT_INSTANCE_ID.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Invokes an exported C function with untyped values.
    ///
    /// Prefer [`Instance::get_typed`] for statically-known signatures.
    ///
    /// # Errors
    ///
    /// [`Error::Trap`] on guest traps (memory-safety violations
    /// included) — the same unified error type as the typed path.
    pub fn invoke(&mut self, name: &str, args: &[Value]) -> Result<Vec<Value>, Error> {
        Ok(self.rt.invoke(self.token, name, args)?)
    }

    /// Creates a typed handle to the export `name`, checking the module's
    /// signature against `Params` / `Results` once.
    ///
    /// # Errors
    ///
    /// [`Error::MissingExport`], [`Error::NotAFunction`], or
    /// [`Error::SignatureMismatch`] with both signatures rendered.
    pub fn get_typed<Params, Results>(
        &self,
        name: &str,
    ) -> Result<TypedFunc<Params, Results>, Error>
    where
        Params: WasmParams,
        Results: WasmResults,
    {
        check_signature::<Params, Results>(self.rt.module(self.token), name)?;
        Ok(TypedFunc {
            name: name.to_string(),
            instance_id: self.id,
            _marker: PhantomData,
        })
    }

    /// The exported function names and their signatures, in module order.
    #[must_use]
    pub fn exports(&self) -> Vec<(String, String)> {
        list_exports(self.rt.module(self.token))
    }

    /// Captured `print_*` output.
    #[must_use]
    pub fn stdout(&self) -> String {
        self.rt.stdout(self.token)
    }

    /// Simulated milliseconds on the configured core.
    #[must_use]
    pub fn simulated_ms(&self) -> f64 {
        self.rt.simulated_ms(self.token)
    }

    /// Simulated cycles.
    #[must_use]
    pub fn cycles(&self) -> f64 {
        self.rt.cycles(self.token)
    }

    /// Instructions retired.
    #[must_use]
    pub fn instr_count(&self) -> u64 {
        self.rt.instr_count(self.token)
    }

    /// Resets timing counters (between benchmark phases).
    pub fn reset_counters(&mut self) {
        self.rt.reset_counters(self.token);
    }

    /// Memory report (§7.3 accounting).
    #[must_use]
    pub fn memory_report(&self) -> MemoryReport {
        self.rt.memory_report(self.token)
    }

    /// The underlying runtime (advanced use).
    pub fn runtime_mut(&mut self) -> &mut Runtime {
        &mut self.rt
    }
}

/// Renders a function signature for diagnostics.
fn render_sig(params: &[ValType], results: &[ValType]) -> String {
    let list = |tys: &[ValType]| {
        tys.iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    };
    format!("({}) -> ({})", list(params), list(results))
}

/// Checks that `module` exports `name` as a function whose signature
/// matches `Params` / `Results`.
fn check_signature<Params, Results>(module: &cage_wasm::Module, name: &str) -> Result<(), Error>
where
    Params: WasmParams,
    Results: WasmResults,
{
    let export = module.export(name).ok_or_else(|| Error::MissingExport {
        name: name.to_string(),
    })?;
    let cage_wasm::ExportKind::Func(idx) = export.kind else {
        return Err(Error::NotAFunction {
            name: name.to_string(),
        });
    };
    let ty = module.func_type(idx).ok_or_else(|| Error::NotAFunction {
        name: name.to_string(),
    })?;
    let requested_params = Params::val_types();
    let requested_results = Results::val_types();
    if ty.params != requested_params || ty.results != requested_results {
        return Err(Error::SignatureMismatch {
            name: name.to_string(),
            requested: render_sig(&requested_params, &requested_results),
            actual: render_sig(&ty.params, &ty.results),
        });
    }
    Ok(())
}

/// Lists a module's exported functions with rendered signatures.
fn list_exports(module: &cage_wasm::Module) -> Vec<(String, String)> {
    module
        .exports
        .iter()
        .filter_map(|e| match e.kind {
            cage_wasm::ExportKind::Func(idx) => {
                let sig = module
                    .func_type(idx)
                    .map(|t| render_sig(&t.params, &t.results))
                    .unwrap_or_else(|| "?".to_string());
                Some((e.name.clone(), sig))
            }
            _ => None,
        })
        .collect()
}

/// A typed handle to one exported function of an [`Instance`].
///
/// Created by [`Instance::get_typed`], which validates the signature once;
/// calls then convert arguments and results without `&[Value]`
/// boilerplate.
pub struct TypedFunc<Params, Results> {
    name: String,
    /// The [`Instance`] the signature was validated against.
    instance_id: u64,
    _marker: PhantomData<fn(Params) -> Results>,
}

impl<Params, Results> fmt::Debug for TypedFunc<Params, Results> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TypedFunc")
            .field("name", &self.name)
            .finish()
    }
}

impl<Params, Results> Clone for TypedFunc<Params, Results> {
    fn clone(&self) -> Self {
        TypedFunc {
            name: self.name.clone(),
            instance_id: self.instance_id,
            _marker: PhantomData,
        }
    }
}

impl<Params, Results> TypedFunc<Params, Results>
where
    Params: WasmParams,
    Results: WasmResults,
{
    /// The export name this handle is bound to.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Calls the function on `instance`.
    ///
    /// The handle is bound to the instance that created it; calling with
    /// a *different* instance re-validates the signature against that
    /// instance's module first, so a mismatched module surfaces as
    /// [`Error::SignatureMismatch`] (never a panic inside the engine).
    /// The re-check runs on every such call — in a hot loop over another
    /// instance, create a handle with that instance's
    /// [`Instance::get_typed`] instead.
    ///
    /// # Errors
    ///
    /// [`Error::Trap`] on guest traps; [`Error::MissingExport`] /
    /// [`Error::SignatureMismatch`] when called on an incompatible
    /// instance.
    pub fn call(&self, instance: &mut Instance, params: Params) -> Result<Results, Error> {
        if instance.id != self.instance_id {
            check_signature::<Params, Results>(instance.rt.module(instance.token), &self.name)?;
        }
        let out = instance
            .rt
            .invoke(instance.token, &self.name, &params.into_values())?;
        Results::from_values(&out).ok_or_else(|| Error::SignatureMismatch {
            name: self.name.clone(),
            requested: render_sig(&Params::val_types(), &Results::val_types()),
            actual: "a result of a different shape".to_string(),
        })
    }
}
