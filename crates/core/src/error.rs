//! The unified embedder error.
//!
//! One `cage::Error` spans the whole pipeline — frontend, lowering,
//! validation, instantiation, execution traps, and typed-call signature
//! checking — replacing the old scatter of `BuildError`, `RuntimeError`
//! and bare `Trap` returns that every embedder had to convert between.

use std::fmt;

use cage_engine::store::InstantiateError;
use cage_engine::Trap;
use cage_wasm::LimitError;

/// Any failure an embedder can see, from C source to guest trap.
#[derive(Debug)]
pub enum Error {
    /// Frontend (parse/typecheck) failure.
    Compile(cage_cc::CompileError),
    /// A [`cage_wasm::CompileLimits`] bound was exceeded while ingesting
    /// the program — any stage (frontend, passes, lowering, validation,
    /// instantiation-time compilation) can report it. The input was too
    /// big or too deep, not malformed.
    LimitExceeded(LimitError),
    /// A compile stage panicked on this input. The panic was caught at
    /// the [`crate::Engine::compile`] boundary (the process is fine) and
    /// counted in [`crate::compile_panic_count`]; the input is rejected.
    /// Any occurrence is a toolchain bug worth reporting — the pipeline
    /// is supposed to return structured errors on all inputs.
    CompilePanic {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// IR → wasm lowering failure.
    Lower(cage_ir::LowerError),
    /// The produced module failed validation (a toolchain bug if it ever
    /// happens — surfaced rather than panicking).
    Validate(cage_wasm::ValidationError),
    /// Instantiation failure (unresolved imports, the §6.4 15-sandbox MTE
    /// tag budget, trapping start functions).
    Instantiate(InstantiateError),
    /// The guest trapped during execution — including Cage's
    /// memory-safety violations.
    Trap(Trap),
    /// A requested export does not exist.
    MissingExport {
        /// The export name looked up.
        name: String,
    },
    /// A requested export exists but is not a function.
    NotAFunction {
        /// The export name looked up.
        name: String,
    },
    /// A typed function handle was requested with the wrong Rust
    /// signature.
    SignatureMismatch {
        /// The export name looked up.
        name: String,
        /// The signature the caller's Rust types imply.
        requested: String,
        /// The signature the module actually exports.
        actual: String,
    },
    /// An artifact compiled for one Table 3 variant was instantiated on an
    /// engine configured for another — the hardening instructions in the
    /// module would not match the execution config enforcing them.
    VariantMismatch {
        /// The variant the artifact was compiled for.
        artifact: String,
        /// The variant the engine is configured for.
        engine: String,
    },
}

impl Error {
    /// The underlying trap, when execution (rather than building or
    /// linking) failed.
    #[must_use]
    pub fn as_trap(&self) -> Option<&Trap> {
        match self {
            Error::Trap(t) => Some(t),
            _ => None,
        }
    }

    /// Whether this is one of Cage's memory-safety trap classes (tag-check
    /// or pointer-authentication faults) — the Table 2 "mitigated" signal.
    #[must_use]
    pub fn is_memory_safety_violation(&self) -> bool {
        self.as_trap().is_some_and(Trap::is_memory_safety_violation)
    }

    /// The compile limit that was exceeded, when this error is a
    /// resource-bound rejection rather than a malformed-input one —
    /// how `cagec` picks its "too big" exit code.
    #[must_use]
    pub fn limit(&self) -> Option<&LimitError> {
        match self {
            Error::LimitExceeded(l) => Some(l),
            _ => None,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Compile(e) => write!(f, "compile error: {e}"),
            Error::LimitExceeded(l) => write!(f, "{l}"),
            Error::CompilePanic { message } => {
                write!(f, "internal compiler panic (caught): {message}")
            }
            Error::Lower(e) => write!(f, "lowering error: {e}"),
            Error::Validate(e) => write!(f, "validation error: {e}"),
            Error::Instantiate(e) => write!(f, "instantiation error: {e}"),
            Error::Trap(t) => write!(f, "trap: {t}"),
            Error::MissingExport { name } => write!(f, "no export named \"{name}\""),
            Error::NotAFunction { name } => {
                write!(f, "export \"{name}\" is not a function")
            }
            Error::SignatureMismatch {
                name,
                requested,
                actual,
            } => write!(
                f,
                "typed call signature mismatch for \"{name}\": requested {requested}, \
                 module exports {actual}"
            ),
            Error::VariantMismatch { artifact, engine } => write!(
                f,
                "artifact compiled for variant \"{artifact}\" cannot be instantiated on \
                 an engine configured for \"{engine}\""
            ),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Compile(e) => Some(e),
            Error::LimitExceeded(e) => Some(e),
            Error::Lower(e) => Some(e),
            Error::Validate(e) => Some(e),
            Error::Instantiate(e) => Some(e),
            Error::Trap(t) => Some(t),
            _ => None,
        }
    }
}

// The `From` conversions below pull a carried `LimitError` out of each
// stage's own error type, so every stage's resource-bound rejection
// surfaces uniformly as `Error::LimitExceeded` — the embedder never has
// to know which stage noticed first.

impl From<LimitError> for Error {
    fn from(l: LimitError) -> Self {
        Error::LimitExceeded(l)
    }
}

impl From<cage_cc::CompileError> for Error {
    fn from(e: cage_cc::CompileError) -> Self {
        match e.limit() {
            Some(l) => Error::LimitExceeded(l.clone()),
            None => Error::Compile(e),
        }
    }
}

impl From<cage_ir::LowerError> for Error {
    fn from(e: cage_ir::LowerError) -> Self {
        match e {
            cage_ir::LowerError::Limit(l) => Error::LimitExceeded(l),
            other => Error::Lower(other),
        }
    }
}

impl From<cage_wasm::ValidationError> for Error {
    fn from(e: cage_wasm::ValidationError) -> Self {
        match e.limit() {
            Some(l) => Error::LimitExceeded(l.clone()),
            None => Error::Validate(e),
        }
    }
}

impl From<InstantiateError> for Error {
    fn from(e: InstantiateError) -> Self {
        match e {
            InstantiateError::CompileLimit(l) => Error::LimitExceeded(l),
            other => Error::Instantiate(other),
        }
    }
}

impl From<Trap> for Error {
    fn from(t: Trap) -> Self {
        Error::Trap(t)
    }
}

impl From<cage_runtime::RuntimeError> for Error {
    fn from(e: cage_runtime::RuntimeError) -> Self {
        match e {
            cage_runtime::RuntimeError::Instantiate(i) => Error::Instantiate(i),
        }
    }
}

#[allow(deprecated)]
impl From<crate::BuildError> for Error {
    fn from(e: crate::BuildError) -> Self {
        match e {
            crate::BuildError::Compile(c) => Error::Compile(c),
            crate::BuildError::Lower(l) => Error::Lower(l),
            crate::BuildError::Validate(v) => Error::Validate(v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trap_classification_flows_through() {
        let err = Error::Trap(Trap::Unreachable);
        assert!(err.as_trap().is_some());
        assert!(!err.is_memory_safety_violation());
        let missing = Error::MissingExport { name: "f".into() };
        assert!(missing.as_trap().is_none());
    }

    #[test]
    fn sources_are_preserved() {
        use std::error::Error as _;
        let err = Error::Trap(Trap::DivideByZero);
        assert!(err.source().is_some());
        let mismatch = Error::SignatureMismatch {
            name: "f".into(),
            requested: "(i64) -> i64".into(),
            actual: "(f64) -> f64".into(),
        };
        assert!(mismatch.source().is_none());
        let text = mismatch.to_string();
        assert!(text.contains("requested (i64) -> i64"));
        assert!(text.contains("module exports (f64) -> f64"));
    }
}
