//! The Table 2 CVE gallery: micro-programs reproducing the memory-safety
//! *classes* of the paper's exemplary CVEs, compiled unmodified through the
//! Cage toolchain.
//!
//! Each program exports `long run(long trigger)`: `run(0)` is the benign
//! path, `run(1)` exercises the bug. Under the baselines the bug corrupts
//! or leaks memory silently ("Mitigated in WASM: No"); under Cage it traps
//! with a memory-safety violation.

/// One CVE-class reproduction.
#[derive(Debug, Clone, Copy)]
pub struct CveCase {
    /// CVE identifier from Table 2.
    pub cve: &'static str,
    /// Underlying cause, as in the table.
    pub cause: &'static str,
    /// What the paper says plain WASM does ("No" / "Partially").
    pub mitigated_in_wasm: &'static str,
    /// The micro-program.
    pub source: &'static str,
}

/// CVE-2023-4863 (libwebp): heap buffer overflow — out-of-bounds write
/// while decoding attacker-controlled lengths.
pub const CVE_2023_4863: &str = r#"
long run(long trigger) {
    char* table = malloc(32);
    char* secret = malloc(16);
    secret[0] = 'K';
    long len = 32;
    if (trigger) {
        len = 48; // attacker-controlled huffman table size
    }
    for (long i = 0; i < len; i++) {
        table[i] = 'A';
    }
    long leaked = secret[0];
    free(secret);
    free(table);
    return leaked;
}
"#;

/// CVE-2014-0160 (Heartbleed): out-of-bounds read past a heap buffer,
/// leaking adjacent allocations.
pub const CVE_2014_0160: &str = r#"
long run(long trigger) {
    char* payload = malloc(16);
    char* key = malloc(32);
    for (long i = 0; i < 32; i++) {
        key[i] = 'S';
    }
    for (long i = 0; i < 16; i++) {
        payload[i] = 'p';
    }
    long claimed_len = 16;
    if (trigger) {
        claimed_len = 64; // the lie in the heartbeat length field
    }
    long leak = 0;
    for (long i = 0; i < claimed_len; i++) {
        leak = leak + payload[i]; // reads run off into the key material
    }
    free(key);
    free(payload);
    return leak;
}
"#;

/// CVE-2021-3999 (glibc getcwd): off-by-one — a write one byte *before*
/// the buffer.
pub const CVE_2021_3999: &str = r#"
long run(long trigger) {
    char* buf = malloc(16);
    buf[0] = '/';
    if (trigger) {
        char* p = buf - 1;
        *p = 0; // off-by-one underflow into allocator metadata
    }
    long v = buf[0];
    free(buf);
    return v;
}
"#;

/// CVE-2018-14550 (libpng): stack buffer overflow via an unbounded copy.
pub const CVE_2018_14550: &str = r#"
long run(long trigger) {
    char state[96];
    char chunk[16];
    long n = 8;
    if (trigger) {
        n = 40; // oversized PNM header field
    }
    for (long i = 0; i < 96; i++) {
        state[i] = 'x';
    }
    for (long i = 0; i < n; i++) {
        chunk[i] = 'A'; // strcpy-style copy into the 16-byte buffer
    }
    return chunk[0] + state[0];
}
"#;

/// CVE-2021-22940 (Node.js): use-after-free read.
pub const CVE_2021_22940: &str = r#"
long run(long trigger) {
    long* session = (long*)malloc(32);
    session[0] = 1234;
    long v = session[0];
    free((char*)session);
    if (trigger) {
        v = session[0]; // handle used after teardown
    }
    return v;
}
"#;

/// CVE-2021-33574 (glibc mq_notify): use-after-free write through a
/// dangling struct holding a function pointer.
pub const CVE_2021_33574: &str = r#"
struct Notify {
    long (*handler)(long);
    long arg;
};

long on_event(long x) { return x * 2; }

long run(long trigger) {
    struct Notify* n = (struct Notify*)malloc(16);
    n->handler = on_event;
    n->arg = 21;
    long v = n->handler(n->arg);
    free((char*)n);
    if (trigger) {
        n->arg = 999; // write through the dangling notification
        v = n->handler(n->arg);
    }
    return v;
}
"#;

/// CVE-2020-1752 (glibc glob): use-after-free write through a dangling
/// pointer. (Detection is deterministic until the freed block is reused
/// with a colliding tag — §7.4 "caught at least until the reuse of a
/// memory allocation"; the different-sized `fresh` allocation below keeps
/// the freed block unreused, the deterministic case.)
pub const CVE_2020_1752: &str = r#"
long run(long trigger) {
    char* dir = malloc(24);
    char* pin = malloc(16); // keeps the freed block off the heap frontier
    dir[0] = 'd';
    char* keep = dir;
    free(dir);
    char* fresh = malloc(80); // too big for the freed block: no reuse
    fresh[0] = 'f';
    long v = fresh[0];
    if (trigger) {
        keep[0] = '!'; // stale pointer writes into freed memory
        v = fresh[0];
    }
    free(fresh);
    free(pin);
    return v;
}
"#;

/// CVE-2019-11932 (WhatsApp GIF): double free.
pub const CVE_2019_11932: &str = r#"
long run(long trigger) {
    char* frame = malloc(64);
    frame[0] = 'g';
    long v = frame[0];
    free(frame);
    if (trigger) {
        free(frame); // second free of the same decode buffer
    }
    return v;
}
"#;

/// The full Table 2 gallery.
#[must_use]
pub fn cases() -> Vec<CveCase> {
    vec![
        CveCase {
            cve: "CVE-2023-4863",
            cause: "Out-of-bounds",
            mitigated_in_wasm: "No",
            source: CVE_2023_4863,
        },
        CveCase {
            cve: "CVE-2014-0160",
            cause: "Out-of-bounds",
            mitigated_in_wasm: "No",
            source: CVE_2014_0160,
        },
        CveCase {
            cve: "CVE-2021-3999",
            cause: "Out-of-bounds",
            mitigated_in_wasm: "Partially",
            source: CVE_2021_3999,
        },
        CveCase {
            cve: "CVE-2018-14550",
            cause: "Out-of-bounds",
            mitigated_in_wasm: "No",
            source: CVE_2018_14550,
        },
        CveCase {
            cve: "CVE-2021-22940",
            cause: "Use-after-free",
            mitigated_in_wasm: "No",
            source: CVE_2021_22940,
        },
        CveCase {
            cve: "CVE-2021-33574",
            cause: "Use-after-free",
            mitigated_in_wasm: "No",
            source: CVE_2021_33574,
        },
        CveCase {
            cve: "CVE-2020-1752",
            cause: "Use-after-free",
            mitigated_in_wasm: "No",
            source: CVE_2020_1752,
        },
        CveCase {
            cve: "CVE-2019-11932",
            cause: "Double-free",
            mitigated_in_wasm: "Partially",
            source: CVE_2019_11932,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, Variant};

    #[test]
    fn gallery_matches_table2_size() {
        assert_eq!(cases().len(), 8);
    }

    #[test]
    fn every_case_is_caught_by_cage_and_missed_by_baseline() {
        for case in cases() {
            let run = |variant: Variant, trigger: i64| {
                let engine = Engine::new(variant);
                let artifact = engine
                    .compile(case.source)
                    .unwrap_or_else(|e| panic!("{}: {e}", case.cve));
                let mut inst = engine.instantiate(&artifact).unwrap();
                let f = inst.get_typed::<i64, i64>("run").unwrap();
                f.call(&mut inst, trigger)
            };
            // Benign path works everywhere.
            for variant in [Variant::BaselineWasm64, Variant::CageFull] {
                run(variant, 0)
                    .unwrap_or_else(|e| panic!("{} benign under {variant}: {e}", case.cve));
            }
            // Trigger: silent under the baseline…
            assert!(
                run(Variant::BaselineWasm64, 1).is_ok(),
                "{}: baseline should miss the bug",
                case.cve
            );
            // …trapped under Cage.
            let err = run(Variant::CageFull, 1).expect_err(case.cve);
            assert!(err.is_memory_safety_violation(), "{}: {err}", case.cve);
        }
    }
}
