//! # cage — Hardware-Accelerated Safe WebAssembly (CGO 2025 reproduction)
//!
//! The facade crate: one API spanning the whole toolchain of the paper's
//! Fig. 5 — C source → sanitizer passes → hardened WASM → MTE/PAC-backed
//! execution:
//!
//! ```text
//! C source ──cage-cc──▶ IR ──passes──▶ IR' ──lower──▶ wasm64 ──cage-runtime──▶ result
//!                        (Algorithm 1,              (segment.new,        (MTE tags,
//!                         ptr-auth pass)             pointer_sign/auth)   PAC keys)
//! ```
//!
//! ## Quick start
//!
//! ```
//! use cage::{build, Core, Value, Variant};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let artifact = build(
//!     r#"
//!     long sum(long n) {
//!         long acc = 0;
//!         for (long i = 0; i < n; i++) acc += i;
//!         return acc;
//!     }
//!     "#,
//!     Variant::CageFull,
//! )?;
//! let mut instance = artifact.instantiate(Core::CortexX3)?;
//! let out = instance.invoke("sum", &[Value::I64(10)])?;
//! assert_eq!(out, vec![Value::I64(45)]);
//! # Ok(())
//! # }
//! ```
//!
//! The same `build` with a buggy program and [`Variant::CageFull`] traps on
//! the paper's CVE classes (heap/stack overflow, use-after-free, double
//! free) instead of silently corrupting memory — see `examples/` and the
//! `tests/security_cves.rs` suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub mod gallery;

pub use cage_engine::{Trap, Value};
pub use cage_mte::Core;
pub use cage_runtime::{MemoryReport, StartupReport, Variant};

pub use cage_cc as cc;
pub use cage_engine as engine;
pub use cage_ir as ir;
pub use cage_libc as libc;
pub use cage_mte as mte;
pub use cage_pac as pac;
pub use cage_runtime as runtime;
pub use cage_wasm as wasm;

/// Build failures across the pipeline.
#[derive(Debug)]
pub enum BuildError {
    /// Frontend (parse/typecheck) error.
    Compile(cage_cc::CompileError),
    /// Backend (lowering) error.
    Lower(cage_ir::LowerError),
    /// The produced module failed validation (a toolchain bug if it ever
    /// happens — surfaced rather than panicking).
    Validate(cage_wasm::ValidationError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Compile(e) => write!(f, "compile error: {e}"),
            BuildError::Lower(e) => write!(f, "lowering error: {e}"),
            BuildError::Validate(e) => write!(f, "validation error: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Build options beyond the variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildOptions {
    /// Table 3 configuration.
    pub variant: Variant,
    /// Linear memory in 64 KiB pages.
    pub memory_pages: u64,
    /// Shadow-stack bytes.
    pub stack_size: u64,
}

impl BuildOptions {
    /// Default options for `variant`.
    #[must_use]
    pub fn new(variant: Variant) -> Self {
        BuildOptions {
            variant,
            memory_pages: 64,
            stack_size: 64 * 1024,
        }
    }
}

/// A compiled, hardened module ready to instantiate.
#[derive(Debug, Clone)]
pub struct Artifact {
    module: cage_wasm::Module,
    heap_base: u64,
    variant: Variant,
    memory_pages: u64,
}

impl Artifact {
    /// The wasm module.
    #[must_use]
    pub fn module(&self) -> &cage_wasm::Module {
        &self.module
    }

    /// First heap byte (where the hardened allocator starts).
    #[must_use]
    pub fn heap_base(&self) -> u64 {
        self.heap_base
    }

    /// The variant this artifact was compiled for.
    #[must_use]
    pub fn variant(&self) -> Variant {
        self.variant
    }

    /// Linear-memory pages the module declares.
    #[must_use]
    pub fn memory_pages(&self) -> u64 {
        self.memory_pages
    }

    /// Serialises to the binary format (with Cage's `0xFB` instructions).
    #[must_use]
    pub fn wasm_bytes(&self) -> Vec<u8> {
        cage_wasm::binary::encode(&self.module)
    }

    /// Instantiates on `core` with a fresh runtime and libc.
    ///
    /// # Errors
    ///
    /// Instantiation errors (e.g. sandbox-tag exhaustion).
    pub fn instantiate(&self, core: Core) -> Result<Instance, cage_runtime::RuntimeError> {
        let mut rt = cage_runtime::Runtime::new(self.variant, core);
        let token = rt.instantiate(&self.module, self.heap_base)?;
        Ok(Instance { rt, token })
    }

    /// Instantiates into an existing runtime (multi-instance processes).
    ///
    /// # Errors
    ///
    /// Instantiation errors.
    pub fn instantiate_in(
        &self,
        rt: &mut cage_runtime::Runtime,
    ) -> Result<cage_runtime::InstanceToken, cage_runtime::RuntimeError> {
        rt.instantiate(&self.module, self.heap_base)
    }
}

/// Compiles and hardens `source` for `variant` with default options.
///
/// # Errors
///
/// [`BuildError`] on compile or lowering failures.
pub fn build(source: &str, variant: Variant) -> Result<Artifact, BuildError> {
    build_with(source, &BuildOptions::new(variant))
}

/// Compiles and hardens `source` with explicit options.
///
/// # Errors
///
/// [`BuildError`] on compile or lowering failures.
pub fn build_with(source: &str, opts: &BuildOptions) -> Result<Artifact, BuildError> {
    let ptr_bytes = opts.variant.ptr_width().bytes();
    let ast = cage_cc::parse(source).map_err(BuildError::Compile)?;
    let mut ir_module =
        cage_cc::codegen::compile_ast_for(&ast, ptr_bytes).map_err(BuildError::Compile)?;
    cage_ir::passes::run_pipeline(&mut ir_module, opts.variant.harden_config());
    let lowered = cage_ir::lower(
        &ir_module,
        &cage_ir::LowerOptions {
            ptr_width: opts.variant.ptr_width(),
            memory_pages: opts.memory_pages,
            stack_size: opts.stack_size,
        },
    )
    .map_err(BuildError::Lower)?;
    cage_wasm::validate(&lowered.module).map_err(BuildError::Validate)?;
    Ok(Artifact {
        module: lowered.module,
        heap_base: lowered.heap_base,
        variant: opts.variant,
        memory_pages: opts.memory_pages,
    })
}

/// A live instance with its runtime.
pub struct Instance {
    rt: cage_runtime::Runtime,
    token: cage_runtime::InstanceToken,
}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Instance")
            .field("variant", &self.rt.variant())
            .finish()
    }
}

impl Instance {
    /// Invokes an exported C function.
    ///
    /// # Errors
    ///
    /// Guest traps (memory-safety violations included).
    pub fn invoke(&mut self, name: &str, args: &[Value]) -> Result<Vec<Value>, Trap> {
        self.rt.invoke(self.token, name, args)
    }

    /// Captured `print_*` output.
    #[must_use]
    pub fn stdout(&self) -> String {
        self.rt.stdout(self.token)
    }

    /// Simulated milliseconds on the configured core.
    #[must_use]
    pub fn simulated_ms(&self) -> f64 {
        self.rt.simulated_ms(self.token)
    }

    /// Simulated cycles.
    #[must_use]
    pub fn cycles(&self) -> f64 {
        self.rt.cycles(self.token)
    }

    /// Instructions retired.
    #[must_use]
    pub fn instr_count(&self) -> u64 {
        self.rt.instr_count(self.token)
    }

    /// Resets timing counters (between benchmark phases).
    pub fn reset_counters(&mut self) {
        self.rt.reset_counters(self.token);
    }

    /// Memory report (§7.3 accounting).
    #[must_use]
    pub fn memory_report(&self) -> MemoryReport {
        self.rt.memory_report(self.token)
    }

    /// The underlying runtime (advanced use).
    pub fn runtime_mut(&mut self) -> &mut cage_runtime::Runtime {
        &mut self.rt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_rejects_bad_c() {
        assert!(matches!(
            build("long f( {", Variant::BaselineWasm64),
            Err(BuildError::Compile(_))
        ));
    }

    #[test]
    fn artifact_roundtrips_through_binary_format() {
        let artifact = build("long f() { return 7; }", Variant::CageFull).unwrap();
        let bytes = artifact.wasm_bytes();
        let decoded = cage_wasm::binary::decode(&bytes).unwrap();
        assert_eq!(&decoded, artifact.module());
    }

    #[test]
    fn end_to_end_all_variants() {
        for variant in Variant::ALL {
            let artifact = build(
                "long f(long x) { long a[4]; a[x % 4] = x; return a[x % 4] * 2; }",
                variant,
            )
            .unwrap();
            let mut inst = artifact.instantiate(Core::CortexA715).unwrap();
            assert_eq!(
                inst.invoke("f", &[Value::I64(21)]).unwrap(),
                vec![Value::I64(42)],
                "{variant}"
            );
            assert!(inst.cycles() > 0.0);
        }
    }

    #[test]
    fn memory_report_shows_tag_overhead_only_for_cage() {
        let src = "long f() { return 0; }";
        let base = build(src, Variant::BaselineWasm64)
            .unwrap()
            .instantiate(Core::CortexX3)
            .unwrap();
        let caged = build(src, Variant::CageFull)
            .unwrap()
            .instantiate(Core::CortexX3)
            .unwrap();
        assert_eq!(base.memory_report().tag_bytes, 0);
        assert!(caged.memory_report().tag_bytes > 0);
    }
}
