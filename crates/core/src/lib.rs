//! # cage — Hardware-Accelerated Safe WebAssembly (CGO 2025 reproduction)
//!
//! The facade crate: one API spanning the whole toolchain of the paper's
//! Fig. 5 — C source → sanitizer passes → hardened WASM → MTE/PAC-backed
//! execution:
//!
//! ```text
//! C source ──cage-cc──▶ IR ──passes──▶ IR' ──lower──▶ wasm64 ──cage-runtime──▶ result
//!                        (Algorithm 1,              (segment.new,        (MTE tags,
//!                         ptr-auth pass)             pointer_sign/auth)   PAC keys)
//! ```
//!
//! ## Quick start
//!
//! The embedding model is wasmtime's: an [`Engine`] is the shared
//! compilation environment, a [`Linker`] names the host surface, and
//! typed function handles ([`Instance::get_typed`]) replace `&[Value]`
//! plumbing.
//!
//! ```
//! use cage::{Engine, Variant};
//!
//! # fn main() -> Result<(), cage::Error> {
//! let engine = Engine::new(Variant::CageFull);
//! let artifact = engine.compile(
//!     r#"
//!     long sum(long n) {
//!         long acc = 0;
//!         for (long i = 0; i < n; i++) acc += i;
//!         return acc;
//!     }
//!     "#,
//! )?;
//! let mut instance = engine.instantiate(&artifact)?;
//! let sum = instance.get_typed::<i64, i64>("sum")?;
//! assert_eq!(sum.call(&mut instance, 10)?, 45);
//! # Ok(())
//! # }
//! ```
//!
//! Custom host functions are first-class: declare a prototype in C and
//! register the implementation in a [`Linker`]:
//!
//! ```
//! use cage::{Engine, Linker, Value, Variant};
//! use cage::wasm::ValType;
//!
//! # fn main() -> Result<(), cage::Error> {
//! let engine = Engine::new(Variant::CageFull);
//! let artifact = engine.compile(
//!     r#"
//!     long next_id(long hint);           // host-provided (env.next_id)
//!     long fresh(long hint) { return next_id(hint) * 10; }
//!     "#,
//! )?;
//! let mut linker = Linker::with_libc();
//! linker.func("env", "next_id", &[ValType::I64], &[ValType::I64], |_ctx, args| {
//!     Ok(vec![Value::I64(args[0].as_i64() + 1)])
//! });
//! let mut instance = engine.instantiate_with(&artifact, &linker)?;
//! let fresh = instance.get_typed::<i64, i64>("fresh")?;
//! assert_eq!(fresh.call(&mut instance, 6)?, 70);
//! # Ok(())
//! # }
//! ```
//!
//! The same engine with a buggy program and [`Variant::CageFull`] traps on
//! the paper's CVE classes (heap/stack overflow, use-after-free, double
//! free) instead of silently corrupting memory — see `examples/` and the
//! `tests/security_cves.rs` suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

mod embed;
mod error;
pub mod gallery;

pub use cage_ir::passes::OptPasses;
pub use embed::{compile_panic_count, Artifact, Engine, EngineBuilder, Instance, TypedFunc};
pub use error::Error;

pub use cage_engine::{InstanceLimits, Trap, Value, WasmParams, WasmResults, WasmTy};
pub use cage_mte::Core;
pub use cage_runtime::{Linker, MemoryReport, PoolMetrics, StartupReport, Variant};
pub use cage_serve::{
    EpochTicker, Fault, FaultPlan, HostProfile, InstancePre, Pool, PooledInstance, ServeError,
};

pub use cage_cc as cc;
pub use cage_engine as engine;
pub use cage_ir as ir;
pub use cage_libc as libc;
pub use cage_mte as mte;
pub use cage_pac as pac;
pub use cage_runtime as runtime;
pub use cage_serve as serve;
pub use cage_wasm as wasm;

/// Build failures across the pipeline (legacy; absorbed by [`Error`]).
#[derive(Debug)]
pub enum BuildError {
    /// Frontend (parse/typecheck) error.
    Compile(cage_cc::CompileError),
    /// Backend (lowering) error.
    Lower(cage_ir::LowerError),
    /// The produced module failed validation (a toolchain bug if it ever
    /// happens — surfaced rather than panicking).
    Validate(cage_wasm::ValidationError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Compile(e) => write!(f, "compile error: {e}"),
            BuildError::Lower(e) => write!(f, "lowering error: {e}"),
            BuildError::Validate(e) => write!(f, "validation error: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Build options beyond the variant (legacy; superseded by
/// [`Engine::builder`]).
#[deprecated(since = "0.2.0", note = "configure an `Engine` via `Engine::builder`")]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildOptions {
    /// Table 3 configuration.
    pub variant: Variant,
    /// Linear memory in 64 KiB pages.
    pub memory_pages: u64,
    /// Shadow-stack bytes.
    pub stack_size: u64,
}

#[allow(deprecated)]
impl BuildOptions {
    /// Default options for `variant`.
    #[must_use]
    pub fn new(variant: Variant) -> Self {
        BuildOptions {
            variant,
            memory_pages: 64,
            stack_size: 64 * 1024,
        }
    }
}

/// Compiles and hardens `source` for `variant` with default options
/// (legacy; superseded by [`Engine::compile`]).
///
/// # Errors
///
/// [`BuildError`] on compile or lowering failures.
#[deprecated(since = "0.2.0", note = "use `Engine::new(variant).compile(source)`")]
pub fn build(source: &str, variant: Variant) -> Result<Artifact, BuildError> {
    to_build_error(Engine::new(variant).compile(source))
}

/// Compiles and hardens `source` with explicit options (legacy; superseded
/// by [`Engine::builder`] + [`Engine::compile`]).
///
/// # Errors
///
/// [`BuildError`] on compile or lowering failures.
#[deprecated(
    since = "0.2.0",
    note = "use `Engine::builder(variant)...build().compile(source)`"
)]
#[allow(deprecated)]
pub fn build_with(source: &str, opts: &BuildOptions) -> Result<Artifact, BuildError> {
    let engine = Engine::builder(opts.variant)
        .memory_pages(opts.memory_pages)
        .stack_size(opts.stack_size)
        .build();
    to_build_error(engine.compile(source))
}

/// Maps the unified error back onto the legacy build-error shape.
fn to_build_error(result: Result<Artifact, Error>) -> Result<Artifact, BuildError> {
    result.map_err(|e| match e {
        Error::Compile(c) => BuildError::Compile(c),
        Error::Lower(l) => BuildError::Lower(l),
        Error::Validate(v) => BuildError::Validate(v),
        // The legacy shape predates limit/panic rejection: fold both
        // into the frontend bucket rather than panicking on them.
        Error::LimitExceeded(l) => BuildError::Compile(cage_cc::CompileError::from_limit(l)),
        other => BuildError::Compile(cage_cc::CompileError::new(0, other.to_string())),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_rejects_bad_c() {
        assert!(matches!(
            Engine::new(Variant::BaselineWasm64).compile("long f( {"),
            Err(Error::Compile(_))
        ));
    }

    #[test]
    fn artifact_roundtrips_through_binary_format() {
        let artifact = Engine::new(Variant::CageFull)
            .compile("long f() { return 7; }")
            .unwrap();
        let bytes = artifact.wasm_bytes();
        let decoded = cage_wasm::binary::decode(&bytes).unwrap();
        assert_eq!(&decoded, artifact.module());
    }

    #[test]
    fn end_to_end_all_variants() {
        for variant in Variant::ALL {
            let engine = Engine::builder(variant).core(Core::CortexA715).build();
            let artifact = engine
                .compile("long f(long x) { long a[4]; a[x % 4] = x; return a[x % 4] * 2; }")
                .unwrap();
            let mut inst = engine.instantiate(&artifact).unwrap();
            let f = inst.get_typed::<i64, i64>("f").unwrap();
            assert_eq!(f.call(&mut inst, 21).unwrap(), 42, "{variant}");
            assert!(inst.cycles() > 0.0);
        }
    }

    #[test]
    fn memory_report_shows_tag_overhead_only_for_cage() {
        let src = "long f() { return 0; }";
        let instantiate = |variant: Variant| {
            let engine = Engine::new(variant);
            let artifact = engine.compile(src).unwrap();
            engine.instantiate(&artifact).unwrap()
        };
        let base = instantiate(Variant::BaselineWasm64);
        let caged = instantiate(Variant::CageFull);
        assert_eq!(base.memory_report().tag_bytes, 0);
        assert!(caged.memory_report().tag_bytes > 0);
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_build_shim_still_works() {
        let artifact = build("long f() { return 41; }", Variant::CageFull).unwrap();
        let mut inst = artifact.instantiate(Core::CortexX3).unwrap();
        assert_eq!(inst.invoke("f", &[]).unwrap(), vec![Value::I64(41)]);
        let opts = BuildOptions {
            memory_pages: 128,
            ..BuildOptions::new(Variant::BaselineWasm64)
        };
        let artifact = build_with("long g() { return 2; }", &opts).unwrap();
        assert_eq!(artifact.memory_pages(), 128);
    }

    #[test]
    fn typed_func_signature_mismatch_is_detected() {
        let engine = Engine::new(Variant::BaselineWasm64);
        let artifact = engine.compile("long f(long x) { return x; }").unwrap();
        let inst = engine.instantiate(&artifact).unwrap();
        let err = inst.get_typed::<(f64, f64), i64>("f").unwrap_err();
        assert!(matches!(err, Error::SignatureMismatch { .. }), "{err}");
        assert!(matches!(
            inst.get_typed::<i64, i64>("missing").unwrap_err(),
            Error::MissingExport { .. }
        ));
    }

    #[test]
    fn engine_is_cheap_to_clone_and_share() {
        let engine = Engine::builder(Variant::CageFull).memory_pages(128).build();
        let clone = engine.clone();
        assert_eq!(clone.memory_pages(), 128);
        assert_eq!(clone.variant(), Variant::CageFull);
        // Both handles compile against the same environment.
        let artifact = clone.compile("long f() { return 1; }").unwrap();
        assert_eq!(artifact.memory_pages(), 128);
    }
}
