//! Cycle-accounting regression gate for the execution hot path.
//!
//! The interpreter's allocation-free refactor (precompiled call frames,
//! shared operand stack, scalar memory access, in-place bulk ops) must not
//! move a single simulated cycle: the golden file pins the exact `f64`
//! bit pattern of the cycle counter and the retired-instruction count for
//! every PolyBench kernel under every Table 3 variant, captured from the
//! pre-refactor interpreter on Cortex-X3.
//!
//! Regenerate with `cargo run --release --example golden_cycles` — but
//! only when a cost-model change *intends* to shift cycles.

use cage::{Core, Engine, Variant};

const GOLDEN: &str = include_str!("golden_polybench_cycles.tsv");

fn variant_by_debug_name(name: &str) -> Variant {
    *Variant::ALL
        .iter()
        .find(|v| format!("{v:?}") == name)
        .unwrap_or_else(|| panic!("unknown variant {name} in golden file"))
}

#[test]
fn polybench_gallery_cycles_are_bit_identical_to_golden() {
    let mut checked = 0;
    for line in GOLDEN.lines().filter(|l| !l.trim().is_empty()) {
        let mut fields = line.split('\t');
        let kernel_name = fields.next().expect("kernel column");
        let variant = variant_by_debug_name(fields.next().expect("variant column"));
        let cycle_bits: u64 = fields
            .next()
            .expect("cycle-bits column")
            .parse()
            .expect("u64 cycle bits");
        let instr_count: u64 = fields
            .next()
            .expect("instr-count column")
            .parse()
            .expect("u64 instr count");

        let kernel = cage_polybench::kernel(kernel_name)
            .unwrap_or_else(|| panic!("golden kernel {kernel_name} missing from suite"));
        let engine = Engine::builder(variant).core(Core::CortexX3).build();
        let artifact = engine.compile(kernel.source).expect("builds");
        let mut inst = engine.instantiate(&artifact).expect("instantiates");
        inst.invoke("run", &[]).expect("runs");

        assert_eq!(
            inst.cycles().to_bits(),
            cycle_bits,
            "{kernel_name}/{variant:?}: simulated cycles drifted \
             (got {}, golden {})",
            inst.cycles(),
            f64::from_bits(cycle_bits),
        );
        assert_eq!(
            inst.instr_count(),
            instr_count,
            "{kernel_name}/{variant:?}: retired instruction count drifted"
        );
        checked += 1;
    }
    // 20 kernels x 6 variants at capture time; never shrink silently.
    assert!(checked >= 120, "golden file unexpectedly small: {checked}");
}
