//! Cycle-accounting regression gate for the execution hot path.
//!
//! The interpreter's allocation-free refactor (precompiled call frames,
//! shared operand stack, scalar memory access, in-place bulk ops) must not
//! move a single simulated cycle: the golden file pins the exact `f64`
//! bit pattern of the cycle counter and the retired-instruction count for
//! every PolyBench kernel under every Table 3 variant, captured from the
//! pre-refactor interpreter on Cortex-X3.
//!
//! Regenerate with `cargo run --release --example golden_cycles` — but
//! only when a cost-model change *intends* to shift cycles.

use cage::{Core, Engine, OptPasses, Variant};

const GOLDEN: &str = include_str!("golden_polybench_cycles.tsv");
const GOLDEN_OPT: &str = include_str!("golden_polybench_cycles_opt.tsv");

fn variant_by_debug_name(name: &str) -> Variant {
    *Variant::ALL
        .iter()
        .find(|v| format!("{v:?}") == name)
        .unwrap_or_else(|| panic!("unknown variant {name} in golden file"))
}

#[test]
fn polybench_gallery_cycles_are_bit_identical_to_golden() {
    let mut checked = 0;
    for line in GOLDEN.lines().filter(|l| !l.trim().is_empty()) {
        let mut fields = line.split('\t');
        let kernel_name = fields.next().expect("kernel column");
        let variant = variant_by_debug_name(fields.next().expect("variant column"));
        let cycle_bits: u64 = fields
            .next()
            .expect("cycle-bits column")
            .parse()
            .expect("u64 cycle bits");
        let instr_count: u64 = fields
            .next()
            .expect("instr-count column")
            .parse()
            .expect("u64 instr count");

        let kernel = cage_polybench::kernel(kernel_name)
            .unwrap_or_else(|| panic!("golden kernel {kernel_name} missing from suite"));
        let engine = Engine::builder(variant).core(Core::CortexX3).build();
        let artifact = engine.compile(kernel.source).expect("builds");
        let mut inst = engine.instantiate(&artifact).expect("instantiates");
        inst.invoke("run", &[]).expect("runs");

        assert_eq!(
            inst.cycles().to_bits(),
            cycle_bits,
            "{kernel_name}/{variant:?}: simulated cycles drifted \
             (got {}, golden {})",
            inst.cycles(),
            f64::from_bits(cycle_bits),
        );
        assert_eq!(
            inst.instr_count(),
            instr_count,
            "{kernel_name}/{variant:?}: retired instruction count drifted"
        );
        checked += 1;
    }
    // 20 kernels x 6 variants at capture time; never shrink silently.
    assert!(checked >= 120, "golden file unexpectedly small: {checked}");
}

/// The optimized-pipeline variant of the gate: same gallery, same
/// variants, with the full extended optimiser (CSE, store-to-load
/// forwarding, strength reduction, CFG simplification) enabled. The
/// cycle model charges only the ops that survive the passes, so this
/// golden file pins *what the optimiser leaves behind*: any pass change
/// that moves a cycle or a retired op on the gallery must regenerate it
/// deliberately (`cargo run --release --example golden_cycles_opt`).
/// The default-config golden file above stays byte-for-byte untouched —
/// the extended passes are off by default.
#[test]
fn optimized_pipeline_cycles_are_bit_identical_to_golden() {
    let mut checked = 0;
    for line in GOLDEN_OPT.lines().filter(|l| !l.trim().is_empty()) {
        let mut fields = line.split('\t');
        let kernel_name = fields.next().expect("kernel column");
        let variant = variant_by_debug_name(fields.next().expect("variant column"));
        let cycle_bits: u64 = fields
            .next()
            .expect("cycle-bits column")
            .parse()
            .expect("u64 cycle bits");
        let instr_count: u64 = fields
            .next()
            .expect("instr-count column")
            .parse()
            .expect("u64 instr count");

        let kernel = cage_polybench::kernel(kernel_name)
            .unwrap_or_else(|| panic!("golden kernel {kernel_name} missing from suite"));
        let engine = Engine::builder(variant)
            .core(Core::CortexX3)
            .opt_passes(OptPasses::full())
            .build();
        let artifact = engine.compile(kernel.source).expect("builds");
        let mut inst = engine.instantiate(&artifact).expect("instantiates");
        inst.invoke("run", &[]).expect("runs");

        assert_eq!(
            inst.cycles().to_bits(),
            cycle_bits,
            "{kernel_name}/{variant:?} (optimized): simulated cycles drifted \
             (got {}, golden {})",
            inst.cycles(),
            f64::from_bits(cycle_bits),
        );
        assert_eq!(
            inst.instr_count(),
            instr_count,
            "{kernel_name}/{variant:?} (optimized): retired instruction count drifted"
        );
        checked += 1;
    }
    assert!(
        checked >= 120,
        "optimized golden file unexpectedly small: {checked}"
    );
}

/// The optimiser must actually earn its keep on the gallery: for every
/// kernel/variant pair the optimized pipeline retires no more
/// instructions than the default pipeline, and in aggregate it retires
/// strictly fewer — the measured win the ROADMAP records.
#[test]
fn optimized_pipeline_retires_fewer_instructions() {
    let parse = |golden: &str| -> Vec<(String, String, u64)> {
        golden
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(|line| {
                let f: Vec<&str> = line.split('\t').collect();
                (
                    f[0].to_string(),
                    f[1].to_string(),
                    f[3].parse().expect("u64"),
                )
            })
            .collect()
    };
    let default_counts = parse(GOLDEN);
    let opt_counts = parse(GOLDEN_OPT);
    assert_eq!(default_counts.len(), opt_counts.len());
    let (mut total_default, mut total_opt) = (0u64, 0u64);
    for (d, o) in default_counts.iter().zip(&opt_counts) {
        assert_eq!((&d.0, &d.1), (&o.0, &o.1), "golden files out of order");
        assert!(
            o.2 <= d.2,
            "{}/{}: optimized pipeline retired MORE instructions ({} > {})",
            o.0,
            o.1,
            o.2,
            d.2
        );
        total_default += d.2;
        total_opt += o.2;
    }
    assert!(
        total_opt < total_default,
        "optimiser retired nothing across the whole gallery"
    );
}
