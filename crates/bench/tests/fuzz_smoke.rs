//! Seeded fuzz smoke test — the CI entry point for the cage-fuzz
//! harness.
//!
//! Runs the full mutational sweep (`CAGE_FUZZ_CASES` / `CAGE_FUZZ_SEED`
//! override the defaults; CI pins 5 000 release-mode cases at a fixed
//! seed) and asserts the robustness invariants: zero compile-stage
//! panics, bounded frontend fuel, all three mutation families
//! exercised, and at least one accepted module surviving the
//! three-tier differential.

use cage_bench::fuzz::{run, FuzzConfig};

#[test]
fn seeded_sweep_is_panic_free_and_bounded() {
    let config = FuzzConfig::from_env();
    let report = run(&config);
    // `run` already asserts zero caught panics and fuel-boundedness per
    // case; re-check the aggregate here so the report is load-bearing.
    assert_eq!(report.compile_panics, 0, "{report:?}");
    // Every acceptance surface saw traffic.
    let c_total = report.c_accepted + report.c_limit + report.c_malformed;
    let m_total = report.module_accepted + report.module_rejected;
    let d_total = report.decode_accepted + report.decode_rejected;
    assert!(c_total >= config.cases / 4, "{report:?}");
    assert!(m_total >= config.cases / 4, "{report:?}");
    assert!(d_total >= config.cases / 4, "{report:?}");
    // The mutators are not so aggressive that nothing survives: some
    // mutated C still compiles, and some mutated module still runs the
    // differential (otherwise the three-tier check is dead code).
    assert!(report.c_accepted > 0, "{report:?}");
    assert!(report.differential_runs > 0, "{report:?}");
    // The optimiser sweep is live: at least one accepted C source was
    // compiled at every pipeline level and compared across them.
    assert!(report.pipeline_sweeps > 0, "{report:?}");
    // The sampled frontend runs stayed inside the fuel budget.
    assert!(
        report.max_frontend_fuel <= cage::wasm::CompileLimits::default().max_compile_fuel,
        "{report:?}"
    );
    eprintln!(
        "fuzz: {} cases (seed {:#x}) — C {}/{}/{} ok/limit/malformed, \
         modules {}/{} ok/rejected, decode {}/{} ok/rejected, \
         {} differential runs, {} pipeline sweeps, max frontend fuel {}",
        report.cases,
        config.seed,
        report.c_accepted,
        report.c_limit,
        report.c_malformed,
        report.module_accepted,
        report.module_rejected,
        report.decode_accepted,
        report.decode_rejected,
        report.differential_runs,
        report.pipeline_sweeps,
        report.max_frontend_fuel,
    );
}
