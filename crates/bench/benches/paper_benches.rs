//! Criterion wall-clock benchmarks: real host-side throughput of the
//! reproduction's components, one group per paper artefact.
//!
//! These complement the regeneration binaries: the binaries report
//! *simulated* Tensor G3 time (the paper's axis), while these measure the
//! actual Rust implementation on the host — allocator ops, MTE tag checks,
//! PAC signing, interpreter throughput per Table 3 variant.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use cage::engine::{Imports, Store};
use cage::mte::{AccessKind, MteMode, Tag, TagMemory};
use cage::pac::{PacKey, PacSigner, PointerLayout};
use cage::{Core, Engine, Value, Variant};

/// Fig. 14 analogue: interpreter throughput on gemm per variant.
fn bench_fig14_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14_gemm");
    group.sample_size(10);
    let kernel = cage_polybench::kernel("gemm").expect("gemm");
    for variant in [
        Variant::BaselineWasm32,
        Variant::BaselineWasm64,
        Variant::CageMemSafety,
        Variant::CageSandboxing,
        Variant::CageFull,
    ] {
        let engine = Engine::new(variant);
        let artifact = engine.compile(kernel.source).expect("builds");
        group.bench_function(variant.label(), |b| {
            b.iter_batched(
                || engine.instantiate(&artifact).expect("instantiates"),
                |mut inst| inst.invoke("run", &[]).expect("runs"),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

/// Fig. 15 analogue: static vs dynamic vs authenticated dispatch.
fn bench_fig15_calls(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig15_calls");
    group.sample_size(10);
    for (label, source, variant) in [
        (
            "static",
            cage_polybench::calls::TWO_MM_STATIC,
            Variant::BaselineWasm64,
        ),
        (
            "dynamic",
            cage_polybench::calls::TWO_MM_DYNAMIC,
            Variant::BaselineWasm64,
        ),
        (
            "ptr_auth",
            cage_polybench::calls::TWO_MM_DYNAMIC,
            Variant::CagePtrAuth,
        ),
    ] {
        let engine = Engine::new(variant);
        let artifact = engine.compile(source).expect("builds");
        group.bench_function(label, |b| {
            b.iter_batched(
                || engine.instantiate(&artifact).expect("instantiates"),
                |mut inst| inst.invoke("run", &[]).expect("runs"),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

/// Table 1 analogue: host cost of the MTE architectural operations.
fn bench_table1_mte_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_mte_ops");
    let mut mem = TagMemory::new(1 << 20, MteMode::Synchronous);
    let tag = Tag::new(5).expect("tag");
    mem.set_tag_range(0, 1 << 20, tag).expect("tag range");
    group.bench_function("check_access_hit", |b| {
        b.iter(|| mem.check_access(4096, 8, tag, AccessKind::Read));
    });
    group.bench_function("set_tag_range_4k", |b| {
        b.iter(|| mem.set_tag_range(8192, 4096, tag));
    });
    group.finish();
}

/// Table 1 analogue: host cost of PAC sign/auth (SipHash-2-4 MAC).
fn bench_table1_pac(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_pac");
    let signer = PacSigner::new(PacKey::from_parts(1, 2), PointerLayout::MtePac, true);
    let signed = signer.sign(0x1000, 7);
    group.bench_function("pacda_sign", |b| b.iter(|| signer.sign(0x1000, 7)));
    group.bench_function("autda_auth", |b| b.iter(|| signer.auth(signed, 7)));
    group.finish();
}

/// §6.2 analogue: hardened allocator malloc/free round-trip.
fn bench_allocator(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocator");
    group.sample_size(20);
    let src = r#"
        long churn(long n) {
            for (long i = 0; i < n; i++) {
                char* p = malloc(64);
                p[0] = 'x';
                free(p);
            }
            return n;
        }
    "#;
    for variant in [Variant::BaselineWasm64, Variant::CageFull] {
        let engine = Engine::new(variant);
        let artifact = engine.compile(src).expect("builds");
        group.bench_function(variant.label(), |b| {
            b.iter_batched(
                || engine.instantiate(&artifact).expect("instantiates"),
                |mut inst| inst.invoke("churn", &[Value::I64(100)]).expect("runs"),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

/// §7.2 analogue: instantiation (startup) cost, host-side.
fn bench_startup(c: &mut Criterion) {
    let mut group = c.benchmark_group("startup");
    group.sample_size(10);
    let engine = Engine::new(Variant::CageFull);
    let artifact = engine.compile("long f() { return 0; }").expect("builds");
    let module = artifact.module().clone();
    group.bench_function("instantiate_cage_full", |b| {
        b.iter_batched(
            || Store::new(Variant::CageFull.exec_config(Core::CortexX3)),
            |mut store| {
                store
                    .instantiate(&module, &Imports::new())
                    .map_err(|e| format!("{e}"))
                    .map(|_| ())
            },
            BatchSize::SmallInput,
        );
    });
    // Codec throughput: encode+decode the hardened module.
    let kernel = cage_polybench::kernel("2mm").expect("2mm");
    let big = engine.compile(kernel.source).expect("builds");
    group.bench_function("encode_decode_module", |b| {
        b.iter(|| {
            let bytes = big.wasm_bytes();
            cage::wasm::binary::decode(&bytes).expect("decodes")
        });
    });
    group.finish();
}

fn noop_config() -> Criterion {
    Criterion::default().without_plots()
}

criterion_group! {
    name = benches;
    config = noop_config();
    targets = bench_fig14_variants, bench_fig15_calls, bench_table1_mte_ops,
              bench_table1_pac, bench_allocator, bench_startup
}
criterion_main!(benches);
