//! Criterion microbenchmarks for the allocation-free execution hot path.
//!
//! Two synthetic kernels stress exactly the paths the precompiled-frame
//! refactor targets: a call-heavy kernel (frame setup/teardown, direct and
//! indirect dispatch) and a load/store-heavy kernel (scalar memory access),
//! plus a bulk-op kernel exercising `memset`/`memcpy` through the new
//! resolve-then-`copy_within` entry points. Instantiation happens in the
//! setup closure, so only guest execution is measured.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use cage::{Engine, Value, Variant};

/// Call-heavy: a tight loop of direct calls through a tiny leaf, so frame
/// cost dominates over arithmetic.
const CALL_HEAVY: &str = r#"
    long leaf(long a, long b) {
        return a + b;
    }
    long mid(long a, long b) {
        return leaf(a, b) + leaf(b, a);
    }
    long run(long n) {
        long acc = 0;
        for (long i = 0; i < n; i++) {
            acc = acc + mid(acc, i);
        }
        return acc;
    }
"#;

/// Load/store-heavy: repeated array sweeps, so the scalar memory path
/// dominates.
const MEM_HEAVY: &str = r#"
    double a[2048];
    double run(long rounds) {
        for (long i = 0; i < 2048; i++) {
            a[i] = (double)i * 0.5;
        }
        double s = 0.0;
        for (long r = 0; r < rounds; r++) {
            for (long i = 0; i < 2048; i++) {
                s = s + a[i];
                a[i] = s * 0.000001;
            }
        }
        return s;
    }
"#;

/// Bulk-heavy: memset/memcpy churn through the libc host functions.
const BULK_HEAVY: &str = r#"
    long run(long rounds) {
        char* a = malloc(4096);
        char* b = malloc(4096);
        for (long r = 0; r < rounds; r++) {
            memset(a, 42, 4096);
            memcpy(b, a, 4096);
        }
        long v = b[4095];
        free(a);
        free(b);
        return v;
    }
"#;

fn bench_source(c: &mut Criterion, group_name: &str, source: &str, arg: i64) {
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    for variant in [Variant::BaselineWasm64, Variant::CageFull] {
        let engine = Engine::new(variant);
        let artifact = engine.compile(source).expect("builds");
        group.bench_function(variant.label(), |b| {
            b.iter_batched(
                || engine.instantiate(&artifact).expect("instantiates"),
                |mut inst| inst.invoke("run", &[Value::I64(arg)]).expect("runs"),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_hotpath_calls(c: &mut Criterion) {
    bench_source(c, "hotpath_calls", CALL_HEAVY, 20_000);
}

fn bench_hotpath_memory(c: &mut Criterion) {
    bench_source(c, "hotpath_memory", MEM_HEAVY, 20);
}

fn bench_hotpath_bulk(c: &mut Criterion) {
    bench_source(c, "hotpath_bulk", BULK_HEAVY, 200);
}

fn noop_config() -> Criterion {
    Criterion::default().without_plots()
}

criterion_group! {
    name = benches;
    config = noop_config();
    targets = bench_hotpath_calls, bench_hotpath_memory, bench_hotpath_bulk
}
criterion_main!(benches);
