//! Criterion microbenchmarks for the allocation-free execution hot path.
//!
//! Two synthetic kernels stress exactly the paths the precompiled-frame
//! refactor targets: a call-heavy kernel (frame setup/teardown, direct and
//! indirect dispatch) and a load/store-heavy kernel (scalar memory access),
//! plus a bulk-op kernel exercising `memset`/`memcpy` through the new
//! resolve-then-`copy_within` entry points. Instantiation happens in the
//! setup closure, so only guest execution is measured.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use cage::{Engine, Linker, Value, Variant};
use cage_bench::hotpath::{branch_module, BRANCH_HEAVY, BULK_HEAVY, CALL_HEAVY, MEM_HEAVY};

fn bench_source(c: &mut Criterion, group_name: &str, source: &str, arg: i64) {
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    for variant in [Variant::BaselineWasm64, Variant::CageFull] {
        let engine = Engine::new(variant);
        let artifact = engine.compile(source).expect("builds");
        group.bench_function(variant.label(), |b| {
            b.iter_batched(
                || engine.instantiate(&artifact).expect("instantiates"),
                |mut inst| inst.invoke("run", &[Value::I64(arg)]).expect("runs"),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_hotpath_calls(c: &mut Criterion) {
    bench_source(c, "hotpath_calls", CALL_HEAVY, 20_000);
}

fn bench_hotpath_memory(c: &mut Criterion) {
    bench_source(c, "hotpath_memory", MEM_HEAVY, 20);
}

fn bench_hotpath_bulk(c: &mut Criterion) {
    bench_source(c, "hotpath_bulk", BULK_HEAVY, 200);
}

fn bench_hotpath_branches(c: &mut Criterion) {
    bench_source(c, "hotpath_branches", BRANCH_HEAVY, 200_000);
}

fn bench_hotpath_br_table(c: &mut Criterion) {
    let module = branch_module();
    let mut group = c.benchmark_group("hotpath_br_table");
    group.sample_size(10);
    for export in ["dispatch", "unwind"] {
        for variant in [Variant::BaselineWasm64, Variant::CageFull] {
            let engine = Engine::new(variant);
            let id = format!("{export}/{}", variant.label());
            group.bench_function(&id, |b| {
                b.iter_batched(
                    || {
                        let mut rt = engine.runtime();
                        let token = rt
                            .instantiate_linked(&module, 0, &Linker::new())
                            .expect("instantiates");
                        (rt, token)
                    },
                    |(mut rt, token)| {
                        rt.invoke(token, export, &[Value::I64(500_000)])
                            .expect("runs")
                    },
                    BatchSize::SmallInput,
                );
            });
        }
    }
    group.finish();
}

fn noop_config() -> Criterion {
    Criterion::default().without_plots()
}

criterion_group! {
    name = benches;
    config = noop_config();
    targets = bench_hotpath_calls, bench_hotpath_memory, bench_hotpath_bulk,
        bench_hotpath_branches, bench_hotpath_br_table
}
criterion_main!(benches);
