//! Criterion microbenchmarks for the allocation-free execution hot path.
//!
//! Two synthetic kernels stress exactly the paths the precompiled-frame
//! refactor targets: a call-heavy kernel (frame setup/teardown, direct and
//! indirect dispatch) and a load/store-heavy kernel (scalar memory access),
//! plus a bulk-op kernel exercising `memset`/`memcpy` through the new
//! resolve-then-`copy_within` entry points. Instantiation happens in the
//! setup closure, so only guest execution is measured.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use cage::wasm::builder::ModuleBuilder;
use cage::wasm::{BlockType, Instr, ValType};
use cage::{Engine, Linker, Value, Variant};

/// Call-heavy: a tight loop of direct calls through a tiny leaf, so frame
/// cost dominates over arithmetic.
const CALL_HEAVY: &str = r#"
    long leaf(long a, long b) {
        return a + b;
    }
    long mid(long a, long b) {
        return leaf(a, b) + leaf(b, a);
    }
    long run(long n) {
        long acc = 0;
        for (long i = 0; i < n; i++) {
            acc = acc + mid(acc, i);
        }
        return acc;
    }
"#;

/// Load/store-heavy: repeated array sweeps, so the scalar memory path
/// dominates.
const MEM_HEAVY: &str = r#"
    double a[2048];
    double run(long rounds) {
        for (long i = 0; i < 2048; i++) {
            a[i] = (double)i * 0.5;
        }
        double s = 0.0;
        for (long r = 0; r < rounds; r++) {
            for (long i = 0; i < 2048; i++) {
                s = s + a[i];
                a[i] = s * 0.000001;
            }
        }
        return s;
    }
"#;

/// Bulk-heavy: memset/memcpy churn through the libc host functions.
const BULK_HEAVY: &str = r#"
    long run(long rounds) {
        char* a = malloc(4096);
        char* b = malloc(4096);
        for (long r = 0; r < rounds; r++) {
            memset(a, 42, 4096);
            memcpy(b, a, 4096);
        }
        long v = b[4095];
        free(a);
        free(b);
        return v;
    }
"#;

/// Branch-heavy C: a tight loop whose body is an if/else ladder plus an
/// inner loop with an early `break`, so `br`/`br_if` dispatch and block
/// exits dominate over arithmetic.
const BRANCH_HEAVY: &str = r#"
    long run(long n) {
        long acc = 0;
        for (long i = 0; i < n; i++) {
            if (i % 3 == 0) {
                acc = acc + 1;
            } else if (i % 5 == 0) {
                acc = acc + 2;
            } else if (i % 7 == 0) {
                acc = acc + 3;
            } else {
                acc = acc - 1;
            }
            long j = i & 15;
            while (j > 0) {
                j = j - 1;
                if (j == 7) { break; }
            }
        }
        return acc;
    }
"#;

/// Hand-built wasm exercising the control paths C codegen never emits: a
/// tight `br_table` dispatch loop (`dispatch`) and a loop that exits a
/// 32-deep block nest through a variable-depth `br_table` every iteration
/// (`unwind`) — the worst case for the tree walker's frame-by-frame
/// `Flow::Br(n)` unwinding.
/// Wraps `body` in the shared counting-loop harness:
/// `do { body; } while (++locals[i] < locals[n])`.
fn counted_loop(mut body: Vec<Instr>, n: u32, i: u32) -> Instr {
    body.extend([
        Instr::LocalGet(i),
        Instr::I64Const(1),
        Instr::I64Add,
        Instr::LocalSet(i),
        Instr::LocalGet(i),
        Instr::LocalGet(n),
        Instr::I64LtS,
        Instr::BrIf(0),
    ]);
    Instr::Loop(BlockType::Empty, body)
}

fn branch_module() -> cage::wasm::Module {
    let mut b = ModuleBuilder::new();
    let (n, i, acc) = (0, 1, 2);

    // dispatch(n): loop { switch (i % 4) { 0: acc+=1; 1: acc+=3; _: {} } }
    let selector = vec![
        Instr::LocalGet(i),
        Instr::I64Const(4),
        Instr::I64RemU,
        Instr::I32WrapI64,
        Instr::BrTable(vec![0, 1], 2),
    ];
    let case0 = vec![
        Instr::LocalGet(acc),
        Instr::I64Const(1),
        Instr::I64Add,
        Instr::LocalSet(acc),
        Instr::Br(1),
    ];
    let case1 = vec![
        Instr::LocalGet(acc),
        Instr::I64Const(3),
        Instr::I64Add,
        Instr::LocalSet(acc),
        Instr::Br(0),
    ];
    let mut b1 = vec![Instr::Block(BlockType::Empty, selector)];
    b1.extend(case0);
    let mut b2 = vec![Instr::Block(BlockType::Empty, b1)];
    b2.extend(case1);
    let dispatch = b.add_function(
        &[ValType::I64],
        &[ValType::I64],
        &[ValType::I64, ValType::I64],
        vec![
            counted_loop(vec![Instr::Block(BlockType::Empty, b2)], n, i),
            Instr::LocalGet(acc),
        ],
    );
    b.export_func("dispatch", dispatch);

    // unwind(n): every iteration enters 32 nested blocks and exits a
    // variable number of them in one br_table branch.
    const DEPTH: u32 = 32;
    let mut nest = vec![
        Instr::LocalGet(i),
        Instr::I64Const(i64::from(DEPTH)),
        Instr::I64RemU,
        Instr::I32WrapI64,
        Instr::BrTable((0..DEPTH - 1).collect(), DEPTH - 1),
    ];
    for _ in 0..DEPTH {
        nest = vec![Instr::Block(BlockType::Empty, nest)];
    }
    let unwind = b.add_function(
        &[ValType::I64],
        &[ValType::I64],
        &[ValType::I64, ValType::I64],
        vec![counted_loop(nest, n, i), Instr::LocalGet(i)],
    );
    b.export_func("unwind", unwind);
    b.build()
}

fn bench_source(c: &mut Criterion, group_name: &str, source: &str, arg: i64) {
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    for variant in [Variant::BaselineWasm64, Variant::CageFull] {
        let engine = Engine::new(variant);
        let artifact = engine.compile(source).expect("builds");
        group.bench_function(variant.label(), |b| {
            b.iter_batched(
                || engine.instantiate(&artifact).expect("instantiates"),
                |mut inst| inst.invoke("run", &[Value::I64(arg)]).expect("runs"),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_hotpath_calls(c: &mut Criterion) {
    bench_source(c, "hotpath_calls", CALL_HEAVY, 20_000);
}

fn bench_hotpath_memory(c: &mut Criterion) {
    bench_source(c, "hotpath_memory", MEM_HEAVY, 20);
}

fn bench_hotpath_bulk(c: &mut Criterion) {
    bench_source(c, "hotpath_bulk", BULK_HEAVY, 200);
}

fn bench_hotpath_branches(c: &mut Criterion) {
    bench_source(c, "hotpath_branches", BRANCH_HEAVY, 200_000);
}

fn bench_hotpath_br_table(c: &mut Criterion) {
    let module = branch_module();
    let mut group = c.benchmark_group("hotpath_br_table");
    group.sample_size(10);
    for export in ["dispatch", "unwind"] {
        for variant in [Variant::BaselineWasm64, Variant::CageFull] {
            let engine = Engine::new(variant);
            let id = format!("{export}/{}", variant.label());
            group.bench_function(&id, |b| {
                b.iter_batched(
                    || {
                        let mut rt = engine.runtime();
                        let token = rt
                            .instantiate_linked(&module, 0, &Linker::new())
                            .expect("instantiates");
                        (rt, token)
                    },
                    |(mut rt, token)| {
                        rt.invoke(token, export, &[Value::I64(500_000)])
                            .expect("runs")
                    },
                    BatchSize::SmallInput,
                );
            });
        }
    }
    group.finish();
}

fn noop_config() -> Criterion {
    Criterion::default().without_plots()
}

criterion_group! {
    name = benches;
    config = noop_config();
    targets = bench_hotpath_calls, bench_hotpath_memory, bench_hotpath_bulk,
        bench_hotpath_branches, bench_hotpath_br_table
}
criterion_main!(benches);
