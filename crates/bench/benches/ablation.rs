//! Ablation benches for the design choices DESIGN.md §5 calls out.
//!
//! Reported in *simulated* Tensor G3 milliseconds (the quantity the
//! design decisions trade off), measured through criterion so regressions
//! in the decision logic itself also show up as host-time changes.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use cage::engine::{BoundsCheckStrategy, ExecConfig, Imports, InternalSafety, Store};
use cage::ir::passes::{run_pipeline, HardenConfig};
use cage::ir::{lower, LowerOptions};
use cage::mte::MteMode;
use cage::{Core, Value};

fn build_module(harden: HardenConfig) -> (cage::wasm::Module, u64) {
    // A stack-heavy program: the sanitizer-selectivity ablation target.
    let src = r#"
        long f(long n) {
            long safe_acc = 0;
            long arr[16];
            for (long i = 0; i < n; i++) {
                arr[i % 16] = i;      // dynamic index: instrumented
                long x = i * 3;       // scalar: never instrumented
                safe_acc += x + arr[i % 16];
            }
            return safe_acc;
        }
    "#;
    let mut ir = cage::cc::compile(src).expect("compiles");
    run_pipeline(&mut ir, harden);
    let lowered = lower(&ir, &LowerOptions::default()).expect("lowers");
    (lowered.module, lowered.heap_base)
}

fn run_under(module: &cage::wasm::Module, config: ExecConfig) -> f64 {
    let mut store = Store::new(config);
    let h = store
        .instantiate(module, &Imports::new())
        .expect("instantiates");
    store.invoke(h, "f", &[Value::I64(2000)]).expect("runs");
    store.simulated_ms(h)
}

/// Ablation: Algorithm 1's escape/GEP selectivity vs a hypothetical
/// instrument-everything policy (approximated by also wrapping the safe
/// scalar in an array so it gets tagged).
fn ablate_sanitizer_selectivity(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_selectivity");
    group.sample_size(10);
    let (selective, _) = build_module(HardenConfig {
        stack_safety: true,
        ptr_auth: false,
    });
    let (off, _) = build_module(HardenConfig::none());
    let config = ExecConfig {
        internal: InternalSafety::Mte,
        ..ExecConfig::default()
    };
    group.bench_function("algorithm1_selective", |b| {
        b.iter_batched(
            || (),
            |()| run_under(&selective, config),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("uninstrumented", |b| {
        b.iter_batched(
            || (),
            |()| run_under(&off, ExecConfig::default()),
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

/// Ablation: bounds-check strategy (software / MTE / guard pages is
/// covered in fig14; here software-fallback tag checks vs hardware).
fn ablate_software_fallback(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_fallback");
    group.sample_size(10);
    let (module, _) = build_module(HardenConfig {
        stack_safety: true,
        ptr_auth: false,
    });
    for (label, internal) in [
        ("hardware_mte", InternalSafety::Mte),
        ("software_fallback", InternalSafety::Software),
    ] {
        let config = ExecConfig {
            internal,
            ..ExecConfig::default()
        };
        let module = module.clone();
        group.bench_function(label, move |b| {
            b.iter_batched(
                || (),
                |()| run_under(&module, config),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

/// Ablation: MTE mode (sync vs async vs asymmetric) on the same workload.
fn ablate_mte_mode(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_mte_mode");
    group.sample_size(10);
    let (module, _) = build_module(HardenConfig {
        stack_safety: true,
        ptr_auth: false,
    });
    for (label, mode) in [
        ("sync", MteMode::Synchronous),
        ("async", MteMode::Asynchronous),
        ("asymmetric", MteMode::Asymmetric),
    ] {
        let config = ExecConfig {
            internal: InternalSafety::Mte,
            bounds: BoundsCheckStrategy::MteSandbox,
            mte_mode: mode,
            core: Core::CortexA510,
            ..ExecConfig::default()
        };
        let module = module.clone();
        group.bench_function(label, move |b| {
            b.iter_batched(
                || (),
                |()| run_under(&module, config),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn noop_config() -> Criterion {
    Criterion::default().without_plots()
}

criterion_group! {
    name = benches;
    config = noop_config();
    targets = ablate_sanitizer_selectivity, ablate_software_fallback, ablate_mte_mode
}
criterion_main!(benches);
