//! # cage-fuzz — seeded, offline mutational fuzzing of the ingest path
//!
//! The serving story bounds *execution*; PR 9 bounds *ingest*. This
//! module proves the bound empirically: thousands of mutated inputs
//! pushed through every acceptance surface — C source through
//! [`Engine::compile`], structured modules through [`InstancePre::new`],
//! raw bytes through [`cage::wasm::binary::decode`] — asserting that
//! each one comes back as `Ok` or a structured `Err`, never a panic,
//! abort, or unbounded compile loop.
//!
//! Everything is seeded ([`FuzzConfig`]; `CAGE_FUZZ_SEED` /
//! `CAGE_FUZZ_CASES` env overrides), uses only the vendored offline
//! `rand` shim, and runs the same way in CI and on a laptop — a failure
//! reproduces from its seed.
//!
//! Three mutation families, round-robined per case:
//!
//! * **C source** — byte- and token-level mutations (truncate, delete,
//!   duplicate, splice across corpus entries, dictionary-token
//!   insertion) over the hot-path kernels and a PolyBench kernel.
//! * **Module structure** — instruction-level mutations of lowered
//!   modules (truncated bodies, duplicated/injected instructions with
//!   wild immediates, block-nest wrapping past the depth bound).
//! * **Binary bytes** — bit flips and truncations of encoded modules
//!   fed to the decoder, with survivors re-ingested as modules.
//!
//! When a mutated module is accepted and self-contained, all three
//! execution tiers (register, stack, tree oracle — the difftest chain)
//! run it under a fuel budget and must agree on values and traps.

use cage::engine::{ExecConfig, Imports, Store, Trap, Value};
use cage::serve::{HostProfile, InstancePre, ServeError};
use cage::wasm::builder::ModuleBuilder;
use cage::wasm::{BlockType, CompileLimits, Instr, Module, ValType};
use cage::{Core, Engine, Error, OptPasses, Variant};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::hotpath;

/// How many cases to run and from which seed — everything a failure
/// report needs to reproduce.
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// Total mutated inputs across all families.
    pub cases: u64,
    /// Root RNG seed; every case derives deterministically from it.
    pub seed: u64,
}

impl FuzzConfig {
    /// Reads `CAGE_FUZZ_CASES` / `CAGE_FUZZ_SEED`, defaulting to a quick
    /// debug sweep and a fuller release one (CI pins its own count).
    #[must_use]
    pub fn from_env() -> Self {
        let default_cases = if cfg!(debug_assertions) { 400 } else { 5_000 };
        let parse = |var: &str| std::env::var(var).ok().and_then(|v| v.parse().ok());
        FuzzConfig {
            cases: parse("CAGE_FUZZ_CASES").unwrap_or(default_cases),
            seed: parse("CAGE_FUZZ_SEED").unwrap_or(0xCA9E),
        }
    }
}

/// What a fuzz run observed, for the smoke test's assertions and the CI
/// log.
#[derive(Debug, Clone, Copy, Default)]
pub struct FuzzReport {
    /// Total cases executed.
    pub cases: u64,
    /// Mutated C sources compiled end-to-end.
    pub c_accepted: u64,
    /// Mutated C sources rejected by a compile limit.
    pub c_limit: u64,
    /// Mutated C sources rejected as malformed.
    pub c_malformed: u64,
    /// Mutated modules accepted by the serving template.
    pub module_accepted: u64,
    /// Mutated modules rejected (validation or limit).
    pub module_rejected: u64,
    /// Mutated binaries the decoder accepted.
    pub decode_accepted: u64,
    /// Mutated binaries the decoder rejected.
    pub decode_rejected: u64,
    /// Accepted modules run through all three execution tiers.
    pub differential_runs: u64,
    /// Accepted C sources swept across pipeline configs (no-opt,
    /// standard, full-opt) with cross-config outcome comparison.
    pub pipeline_sweeps: u64,
    /// Compile-stage panics caught by the backstops (must be zero).
    pub compile_panics: u64,
    /// Largest frontend fuel consumption observed on the sampled cases.
    pub max_frontend_fuel: u64,
}

/// Valid C seeds the source mutator starts from. Small but varied:
/// calls, arrays, libc churn, branch ladders, and a real PolyBench
/// kernel with nested loops over 2-D arrays.
fn c_corpus() -> Vec<&'static str> {
    let mut corpus = vec![
        hotpath::CALL_HEAVY,
        hotpath::MEM_HEAVY,
        hotpath::BULK_HEAVY,
        hotpath::BRANCH_HEAVY,
        // Switch fan-out and globals, which the hot-path kernels lack.
        r#"
        long table[16];
        long pick(long i) {
            switch (i % 5) {
                case 0: return table[0] + 1;
                case 1: return table[1] * 2;
                case 2: { long t = table[2]; return t - 3; }
                case 3: break;
                default: return 9;
            }
            return table[i % 16];
        }
        "#,
    ];
    if let Some(k) = cage_polybench::kernel("gemm") {
        corpus.push(k.source);
    }
    corpus
}

/// Dictionary tokens the source mutator splices in — chosen to steer
/// mutants toward the grammar's edges (nesting, huge literals, stray
/// punctuation) rather than pure noise.
const DICT: &[&str] = &[
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ";",
    ",",
    "*",
    "&",
    "!",
    "~",
    "%",
    "/",
    "=",
    "==",
    "->",
    "++",
    "--",
    "if",
    "else",
    "while",
    "for",
    "return",
    "break",
    "switch",
    "case",
    "default",
    "long",
    "double",
    "char",
    "void",
    "struct",
    "sizeof",
    "1000000000000",
    "0x7fffffffffffffff",
    "((((((",
    "))))))",
    "\"str\"",
    "'c'",
];

fn span(rng: &mut StdRng, len: usize) -> (usize, usize) {
    if len == 0 {
        return (0, 0);
    }
    let start = (rng.gen::<u64>() as usize) % len;
    let max = (len - start).min(32);
    (start, start + 1 + (rng.gen::<u64>() as usize) % max.max(1))
}

/// Applies 1–4 random byte/token mutations to `seed` (ASCII-safe; the
/// corpus is ASCII and insertions are ASCII, so the result stays valid
/// UTF-8 via the lossy fallback).
fn mutate_source(rng: &mut StdRng, seed: &str, other: &str) -> String {
    let mut bytes = seed.as_bytes().to_vec();
    let ops = 1 + rng.gen::<u64>() % 4;
    for _ in 0..ops {
        match rng.gen::<u64>() % 6 {
            0 => {
                // Truncate.
                let at = (rng.gen::<u64>() as usize) % (bytes.len() + 1);
                bytes.truncate(at);
            }
            1 => {
                // Delete a span.
                let (a, b) = span(rng, bytes.len());
                bytes.drain(a..b.min(bytes.len()));
            }
            2 => {
                // Duplicate a span in place.
                let (a, b) = span(rng, bytes.len());
                let chunk: Vec<u8> = bytes[a..b.min(bytes.len())].to_vec();
                let at = (rng.gen::<u64>() as usize) % (bytes.len() + 1);
                bytes.splice(at..at, chunk);
            }
            3 => {
                // Insert a dictionary token.
                let tok = DICT[(rng.gen::<u64>() as usize) % DICT.len()];
                let at = (rng.gen::<u64>() as usize) % (bytes.len() + 1);
                bytes.splice(at..at, tok.bytes());
            }
            4 => {
                // Splice a span from another corpus entry.
                let (a, b) = span(rng, other.len());
                let chunk: Vec<u8> = other.as_bytes()[a..b.min(other.len())].to_vec();
                let at = (rng.gen::<u64>() as usize) % (bytes.len() + 1);
                bytes.splice(at..at, chunk);
            }
            _ => {
                // Replace one byte with printable ASCII.
                if !bytes.is_empty() {
                    let at = (rng.gen::<u64>() as usize) % bytes.len();
                    bytes[at] = b' ' + (rng.gen::<u8>() % (b'~' - b' '));
                }
            }
        }
        // Keep mutants bounded so repeated duplication cannot turn the
        // sweep into an allocation benchmark.
        bytes.truncate(1 << 16);
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

/// A random instruction with wild immediates, for injection into
/// otherwise-valid bodies.
fn random_instr(rng: &mut StdRng) -> Instr {
    match rng.gen::<u64>() % 12 {
        0 => Instr::Nop,
        1 => Instr::Drop,
        2 => Instr::Unreachable,
        3 => Instr::I64Const(rng.gen()),
        4 => Instr::I32Const(rng.gen()),
        5 => Instr::LocalGet(rng.gen::<u32>() % 1024),
        6 => Instr::LocalSet(rng.gen::<u32>() % 1024),
        7 => Instr::I64Add,
        8 => Instr::Br(rng.gen::<u32>() % 300),
        9 => Instr::BrIf(rng.gen::<u32>() % 300),
        10 => {
            let fan = 1 + (rng.gen::<u64>() as usize) % 64;
            let t = rng.gen::<u32>() % 50;
            Instr::BrTable(vec![t; fan], rng.gen::<u32>() % 50)
        }
        _ => Instr::Call(rng.gen::<u32>() % 64),
    }
}

/// Applies 1–3 structural mutations to a copy of `seed`.
fn mutate_module(rng: &mut StdRng, seed: &Module) -> Module {
    let mut module = seed.clone();
    if module.funcs.is_empty() {
        return module;
    }
    let ops = 1 + rng.gen::<u64>() % 3;
    for _ in 0..ops {
        let fi = (rng.gen::<u64>() as usize) % module.funcs.len();
        let body = &mut module.funcs[fi].body;
        match rng.gen::<u64>() % 4 {
            0 => {
                let at = (rng.gen::<u64>() as usize) % (body.len() + 1);
                body.truncate(at);
            }
            1 => {
                if !body.is_empty() {
                    let at = (rng.gen::<u64>() as usize) % body.len();
                    let dup = body[at].clone();
                    body.insert(at, dup);
                }
            }
            2 => {
                let at = (rng.gen::<u64>() as usize) % (body.len() + 1);
                let instr = random_instr(rng);
                body.insert(at, instr);
            }
            _ => {
                // Wrap in a block nest — sometimes past the depth bound.
                let depth = 1 + rng.gen::<u64>() % 200;
                let mut nest = std::mem::take(body);
                for _ in 0..depth {
                    nest = vec![Instr::Block(BlockType::Empty, nest)];
                }
                *body = nest;
            }
        }
    }
    module
}

/// A tiny correct-by-construction module for the decode seeds, so the
/// binary fuzzing also covers encodings the C pipeline never produces
/// (`br_table` nests from [`hotpath::branch_module`] plus this one).
fn small_module() -> Module {
    let mut b = ModuleBuilder::new();
    let f = b.add_function(
        &[ValType::I64],
        &[ValType::I64],
        &[ValType::I64],
        vec![
            Instr::LocalGet(0),
            Instr::I64Const(3),
            Instr::I64Add,
            Instr::LocalSet(1),
            Instr::LocalGet(1),
        ],
    );
    b.export_func("f", f);
    b.build()
}

/// Exported functions whose parameters are all `i64` — the ones the
/// differential driver knows how to call.
fn i64_exports(module: &Module) -> Vec<(u32, usize)> {
    module
        .exports
        .iter()
        .filter_map(|e| match e.kind {
            cage::wasm::ExportKind::Func(idx) => {
                let ty = module.func_type(idx)?;
                ty.params
                    .iter()
                    .all(|p| *p == ValType::I64)
                    .then_some((idx, ty.params.len()))
            }
            _ => None,
        })
        .collect()
}

/// One execution tier's entry point, for the differential driver.
type Tier = fn(&mut Store, cage::engine::InstanceHandle, u32, &[Value]) -> Result<Vec<Value>, Trap>;

/// Per-export outcomes of one module on the register tier.
type ExportOutcomes = Vec<Result<Vec<Value>, Trap>>;

/// Register-tier outcome of every i64 export under a fuel budget —
/// the observable the pipeline sweep compares across configs.
/// `None` when the module needs imports (e.g. a mutant that calls
/// `malloc`); the sweep skips such sources, matching `run_differential`.
fn register_outcomes(module: &Module) -> Option<ExportOutcomes> {
    i64_exports(module)
        .into_iter()
        .map(|(func_idx, arity)| {
            let mut store = Store::new(ExecConfig::default());
            let handle = store.instantiate(module, &Imports::new()).ok()?;
            store.set_fuel(handle, Some(200_000));
            Some(store.call(handle, func_idx, &vec![Value::I64(3); arity]))
        })
        .collect()
}

/// Sweeps one accepted C source across the three `PipelineConfig`
/// levels: each level's module runs all three execution tiers (they
/// must agree), and the register-tier outcomes are compared across
/// levels — the optimiser may only change *cost*, never values or
/// traps. Returns whether a full cross-level comparison happened.
///
/// # Panics
///
/// Panics on any cross-config or cross-tier divergence — that is the
/// fuzz finding.
fn sweep_pipelines(source: &str, sweep_engines: &[Engine; 3]) -> bool {
    let mut modules = Vec::new();
    for engine in sweep_engines {
        match engine.compile(source) {
            Ok(artifact) => modules.push(artifact.module().clone()),
            // A level rejecting what another accepted is legitimate:
            // the extended passes charge more compile fuel.
            Err(_) => return false,
        }
    }
    let Some(outcomes): Option<Vec<ExportOutcomes>> =
        modules.iter().map(register_outcomes).collect()
    else {
        return false;
    };
    if outcomes
        .iter()
        .flatten()
        .any(|o| matches!(o, Err(Trap::FuelExhausted)))
    {
        // Fuel exhaustion is the one legitimate cross-level divergence
        // (fewer retired ops stretch the same budget further) — and the
        // tree oracle below does not implement fuel at all, so an
        // unbounded mutant (`for(;;)`) would hang it. Any level running
        // dry skips both comparisons.
        return false;
    }
    // The register tier completed on every level, so execution is
    // bounded and the fuel-less tree oracle is safe to run.
    for module in &modules {
        run_differential(module);
    }
    for (level, other) in outcomes.iter().enumerate().skip(1) {
        assert_eq!(
            &outcomes[0], other,
            "pipeline level {level} diverged from no-opt on accepted source:\n{source}"
        );
    }
    true
}

/// Runs one accepted, import-free module through all three execution
/// tiers under a fuel budget and asserts they agree on every export.
///
/// # Panics
///
/// Panics on tier disagreement — that is the fuzz finding.
fn run_differential(module: &Module) -> bool {
    let mut ran = false;
    let exports = i64_exports(module);
    let tiers: [Tier; 3] = [
        |s, h, f, a| s.call(h, f, a),
        |s, h, f, a| s.call_stack(h, f, a),
        |s, h, f, a| s.call_tree(h, f, a),
    ];
    for (func_idx, arity) in exports {
        let args = vec![Value::I64(3); arity];
        let mut outcomes: Vec<Result<Vec<Value>, Trap>> = Vec::new();
        for tier in tiers {
            let mut store = Store::new(ExecConfig::default());
            let Ok(handle) = store.instantiate(module, &Imports::new()) else {
                return ran;
            };
            store.set_fuel(handle, Some(200_000));
            outcomes.push(tier(&mut store, handle, func_idx, &args));
        }
        assert_eq!(
            outcomes[0], outcomes[1],
            "register and stack tiers disagree on func {func_idx}"
        );
        assert_eq!(
            outcomes[0], outcomes[2],
            "register and tree tiers disagree on func {func_idx}"
        );
        ran = true;
    }
    ran
}

/// Runs the whole sweep.
///
/// # Panics
///
/// Panics on any fuzz finding: a compile-stage panic leaking past the
/// backstops, frontend fuel exceeding its budget, or execution-tier
/// disagreement. A clean run returns the [`FuzzReport`].
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn run(config: &FuzzConfig) -> FuzzReport {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut report = FuzzReport {
        cases: config.cases,
        ..FuzzReport::default()
    };
    let corpus = c_corpus();
    let engines: Vec<Engine> = Variant::ALL.iter().map(|&v| Engine::new(v)).collect();
    // One engine per pipeline level for the optimiser sweep, all on the
    // same variant so the only degree of freedom is the pass set.
    let sweep_engines = [
        Engine::builder(Variant::BaselineWasm64)
            .optimize(false)
            .build(),
        Engine::builder(Variant::BaselineWasm64).build(),
        Engine::builder(Variant::BaselineWasm64)
            .opt_passes(OptPasses::full())
            .build(),
    ];

    // Module seeds: hand-built br_table nests plus real lowered C.
    let mut module_seeds: Vec<Module> = vec![hotpath::branch_module(), small_module()];
    for src in &corpus {
        if let Ok(artifact) = engines[0].compile(src) {
            module_seeds.push(artifact.module().clone());
        }
    }

    let panics_before = cage::compile_panic_count() + cage::serve::compile_panic_count();

    for case in 0..config.cases {
        match case % 3 {
            // --- C source mutations through the full Engine pipeline.
            0 => {
                let seed = corpus[(rng.gen::<u64>() as usize) % corpus.len()];
                let other = corpus[(rng.gen::<u64>() as usize) % corpus.len()];
                let mutated = mutate_source(&mut rng, seed, other);
                let engine = &engines[(case as usize / 3) % engines.len()];
                match engine.compile(&mutated) {
                    Ok(_) => {
                        report.c_accepted += 1;
                        if sweep_pipelines(&mutated, &sweep_engines) {
                            report.pipeline_sweeps += 1;
                        }
                    }
                    Err(e) if e.limit().is_some() => report.c_limit += 1,
                    Err(Error::CompilePanic { message }) => {
                        panic!("compile panic leaked to the report: {message}")
                    }
                    Err(_) => report.c_malformed += 1,
                }
                // Sampled fuel-boundedness check on the frontend alone:
                // consumption must never exceed the budget — exhaustion
                // has to surface as a structured limit error instead.
                if case % 24 == 0 {
                    let limits = CompileLimits::default();
                    let fuel = limits.fuel();
                    let _ = cage::cc::compile_with(&mutated, &limits, &fuel);
                    assert!(
                        fuel.consumed() <= limits.max_compile_fuel,
                        "frontend overdrew its fuel budget"
                    );
                    report.max_frontend_fuel = report.max_frontend_fuel.max(fuel.consumed());
                }
            }
            // --- Structural module mutations through the serving template.
            1 => {
                let seed = &module_seeds[(rng.gen::<u64>() as usize) % module_seeds.len()];
                let module = mutate_module(&mut rng, seed);
                match InstancePre::new(
                    Variant::BaselineWasm64,
                    Core::CortexX3,
                    &module,
                    0,
                    HostProfile::Empty,
                ) {
                    Ok(_) => {
                        report.module_accepted += 1;
                        if module.imported_func_count() == 0 && run_differential(&module) {
                            report.differential_runs += 1;
                        }
                    }
                    Err(ServeError::CompilePanic(msg)) => {
                        panic!("template compile panic leaked: {msg}")
                    }
                    Err(_) => report.module_rejected += 1,
                }
            }
            // --- Binary mutations through the decoder.
            _ => {
                let seed = &module_seeds[(rng.gen::<u64>() as usize) % module_seeds.len()];
                let mut bytes = cage::wasm::binary::encode(seed);
                if rng.gen::<bool>() {
                    let at = (rng.gen::<u64>() as usize) % (bytes.len() + 1);
                    bytes.truncate(at);
                }
                let flips = 1 + rng.gen::<u64>() % 8;
                for _ in 0..flips {
                    if bytes.is_empty() {
                        break;
                    }
                    let at = (rng.gen::<u64>() as usize) % bytes.len();
                    bytes[at] ^= 1 << (rng.gen::<u8>() % 8);
                }
                match cage::wasm::binary::decode(&bytes) {
                    Ok(module) => {
                        report.decode_accepted += 1;
                        // Survivors continue through the template path:
                        // decoding is only the first acceptance gate.
                        match InstancePre::new(
                            Variant::BaselineWasm64,
                            Core::CortexX3,
                            &module,
                            0,
                            HostProfile::Empty,
                        ) {
                            Ok(_) | Err(ServeError::Rejected(_) | ServeError::Instantiate(_)) => {}
                            Err(other) => panic!("decoded module broke the template: {other}"),
                        }
                    }
                    Err(_) => report.decode_rejected += 1,
                }
            }
        }
    }

    report.compile_panics =
        cage::compile_panic_count() + cage::serve::compile_panic_count() - panics_before;
    assert_eq!(
        report.compile_panics, 0,
        "compile stages panicked during the sweep (caught by the \
         backstops, but each one is a bug)"
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_is_deterministic_and_panic_free() {
        let config = FuzzConfig { cases: 60, seed: 7 };
        let a = run(&config);
        let b = run(&config);
        assert_eq!(a.c_accepted, b.c_accepted);
        assert_eq!(a.pipeline_sweeps, b.pipeline_sweeps);
        assert_eq!(a.module_rejected, b.module_rejected);
        assert_eq!(a.decode_rejected, b.decode_rejected);
        assert_eq!(a.compile_panics, 0);
        // The mutators reach every family.
        assert!(a.c_accepted + a.c_limit + a.c_malformed == 20, "{a:?}");
        assert!(a.module_accepted + a.module_rejected == 20, "{a:?}");
        assert!(a.decode_accepted + a.decode_rejected == 20, "{a:?}");
    }
}
