//! # cage-bench — the experiment harness
//!
//! One regeneration target per table/figure of the paper (see `DESIGN.md`
//! §4 for the experiment index). Each binary prints the paper-style rows
//! and writes machine-readable output under `results/`.
//!
//! | paper artefact | binary |
//! |---|---|
//! | Table 1 (MTE/PAC instruction timing)     | `table1_instructions` |
//! | Fig. 4 (MTE mode overhead on memset)     | `fig4_mte_modes` |
//! | Table 2 (CVE mitigation matrix)          | `table2_cves` |
//! | Fig. 14 (PolyBench runtime overheads)    | `fig14_polybench` |
//! | Fig. 15 (pointer-auth call overhead)     | `fig15_ptr_auth` |
//! | Fig. 16 / Table 4 (tagged-memory init)   | `fig16_stg_variants` |
//! | §7.3 (memory overhead)                   | `mem_overhead` |
//! | §7.2 (startup overhead)                  | `startup_overhead` |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs;
use std::path::PathBuf;

use cage::{Core, Engine, Variant};
use cage_polybench::Kernel;

/// One measured kernel execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Simulated milliseconds.
    pub simulated_ms: f64,
    /// Retired instruction count.
    pub instructions: u64,
    /// Checksum the guest returned.
    pub checksum: f64,
}

/// Builds and runs `source`'s `run()` under (variant, core).
///
/// # Panics
///
/// Panics on build or execution failure — benchmark inputs are trusted.
#[must_use]
pub fn measure_source(source: &str, variant: Variant, core: Core) -> Measurement {
    let engine = Engine::builder(variant).core(core).build();
    let artifact = engine.compile(source).expect("benchmark source builds");
    let mut inst = engine.instantiate(&artifact).expect("instantiates");
    let run = inst
        .get_typed::<(), f64>("run")
        .expect("kernels export double run()");
    let checksum = run.call(&mut inst, ()).expect("runs");
    Measurement {
        simulated_ms: inst.simulated_ms(),
        instructions: inst.instr_count(),
        checksum,
    }
}

/// Measures one PolyBench kernel, verifying the checksum against the
/// native reference.
#[must_use]
pub fn measure_kernel(kernel: &Kernel, variant: Variant, core: Core) -> Measurement {
    let m = measure_source(kernel.source, variant, core);
    let native = (kernel.native)();
    assert_eq!(
        m.checksum.to_bits(),
        native.to_bits(),
        "{} produced a wrong checksum under {variant}",
        kernel.name
    );
    m
}

/// Fig. 14: mean runtime of each variant relative to wasm64, in percent,
/// per core — plus the per-kernel ratios for the detailed table.
#[derive(Debug, Clone)]
pub struct Fig14 {
    /// Kernel names, in suite order.
    pub kernels: Vec<&'static str>,
    /// `ratios[variant][core][kernel]` = runtime / wasm64 runtime.
    pub ratios: Vec<Vec<Vec<f64>>>,
}

impl Fig14 {
    /// Mean percentage (the bar heights of Fig. 14).
    #[must_use]
    pub fn mean_percent(&self, variant: Variant, core: Core) -> f64 {
        let vs = &self.ratios[variant_index(variant)][core_index(core)];
        100.0 * vs.iter().sum::<f64>() / vs.len() as f64
    }

    /// Sample standard deviation of the percentages (the ± in §7.2).
    #[must_use]
    pub fn std_percent(&self, variant: Variant, core: Core) -> f64 {
        let vs = &self.ratios[variant_index(variant)][core_index(core)];
        let mean = vs.iter().sum::<f64>() / vs.len() as f64;
        if vs.len() < 2 {
            return 0.0;
        }
        let var = vs.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (vs.len() - 1) as f64;
        100.0 * var.sqrt()
    }
}

fn variant_index(v: Variant) -> usize {
    Variant::ALL
        .iter()
        .position(|x| *x == v)
        .expect("known variant")
}

fn core_index(c: Core) -> usize {
    Core::ALL.iter().position(|x| *x == c).expect("known core")
}

/// Runs the full Fig. 14 sweep over `kernels` (pass the whole suite or a
/// subset for quick runs).
#[must_use]
pub fn fig14_sweep(kernels: &[Kernel]) -> Fig14 {
    let mut ratios = vec![vec![vec![0.0f64; kernels.len()]; Core::ALL.len()]; Variant::ALL.len()];
    for (ci, &core) in Core::ALL.iter().enumerate() {
        for (ki, kernel) in kernels.iter().enumerate() {
            let base = measure_kernel(kernel, Variant::BaselineWasm64, core).simulated_ms;
            for (vi, &variant) in Variant::ALL.iter().enumerate() {
                let ms = if variant == Variant::BaselineWasm64 {
                    base
                } else {
                    measure_kernel(kernel, variant, core).simulated_ms
                };
                ratios[vi][ci][ki] = ms / base;
            }
        }
    }
    Fig14 {
        kernels: kernels.iter().map(|k| k.name).collect(),
        ratios,
    }
}

/// Fig. 15: (static, dynamic, ptr-auth) mean runtime percent per core,
/// normalised to static.
#[must_use]
pub fn fig15_sweep() -> Vec<(Core, [f64; 3])> {
    use cage_polybench::calls::{TWO_MM_DYNAMIC, TWO_MM_STATIC};
    Core::ALL
        .iter()
        .map(|&core| {
            let stat = measure_source(TWO_MM_STATIC, Variant::BaselineWasm64, core).simulated_ms;
            let dynamic =
                measure_source(TWO_MM_DYNAMIC, Variant::BaselineWasm64, core).simulated_ms;
            let auth = measure_source(TWO_MM_DYNAMIC, Variant::CagePtrAuth, core).simulated_ms;
            (core, [100.0, 100.0 * dynamic / stat, 100.0 * auth / stat])
        })
        .collect()
}

pub mod fuzz;

/// Hot-path microbenchmark kernels, shared by the criterion bench
/// (`benches/hotpath.rs`) and the `hotpath_json` summary binary so the
/// wall-clock trajectory recorded per PR measures exactly what the bench
/// measures.
pub mod hotpath {
    use cage::wasm::builder::ModuleBuilder;
    use cage::wasm::{BlockType, Instr, Module, ValType};

    /// Call-heavy: a tight loop of direct calls through a tiny leaf, so
    /// frame cost dominates over arithmetic.
    pub const CALL_HEAVY: &str = r#"
        long leaf(long a, long b) {
            return a + b;
        }
        long mid(long a, long b) {
            return leaf(a, b) + leaf(b, a);
        }
        long run(long n) {
            long acc = 0;
            for (long i = 0; i < n; i++) {
                acc = acc + mid(acc, i);
            }
            return acc;
        }
    "#;

    /// Load/store-heavy: repeated array sweeps, so the scalar memory path
    /// dominates.
    pub const MEM_HEAVY: &str = r#"
        double a[2048];
        double run(long rounds) {
            for (long i = 0; i < 2048; i++) {
                a[i] = (double)i * 0.5;
            }
            double s = 0.0;
            for (long r = 0; r < rounds; r++) {
                for (long i = 0; i < 2048; i++) {
                    s = s + a[i];
                    a[i] = s * 0.000001;
                }
            }
            return s;
        }
    "#;

    /// Bulk-heavy: memset/memcpy churn through the libc host functions.
    pub const BULK_HEAVY: &str = r#"
        long run(long rounds) {
            char* a = malloc(4096);
            char* b = malloc(4096);
            for (long r = 0; r < rounds; r++) {
                memset(a, 42, 4096);
                memcpy(b, a, 4096);
            }
            long v = b[4095];
            free(a);
            free(b);
            return v;
        }
    "#;

    /// Branch-heavy C: a tight loop whose body is an if/else ladder plus
    /// an inner loop with an early `break`, so `br`/`br_if` dispatch and
    /// block exits dominate over arithmetic.
    pub const BRANCH_HEAVY: &str = r#"
        long run(long n) {
            long acc = 0;
            for (long i = 0; i < n; i++) {
                if (i % 3 == 0) {
                    acc = acc + 1;
                } else if (i % 5 == 0) {
                    acc = acc + 2;
                } else if (i % 7 == 0) {
                    acc = acc + 3;
                } else {
                    acc = acc - 1;
                }
                long j = i & 15;
                while (j > 0) {
                    j = j - 1;
                    if (j == 7) { break; }
                }
            }
            return acc;
        }
    "#;

    /// The C-source kernels as `(name, source, run-argument)` rows.
    #[must_use]
    pub fn c_kernels() -> [(&'static str, &'static str, i64); 4] {
        [
            ("calls", CALL_HEAVY, 20_000),
            ("memory", MEM_HEAVY, 20),
            ("bulk", BULK_HEAVY, 200),
            ("branches", BRANCH_HEAVY, 200_000),
        ]
    }

    /// Wraps `body` in the shared counting-loop harness:
    /// `do { body; } while (++locals[i] < locals[n])`.
    fn counted_loop(mut body: Vec<Instr>, n: u32, i: u32) -> Instr {
        body.extend([
            Instr::LocalGet(i),
            Instr::I64Const(1),
            Instr::I64Add,
            Instr::LocalSet(i),
            Instr::LocalGet(i),
            Instr::LocalGet(n),
            Instr::I64LtS,
            Instr::BrIf(0),
        ]);
        Instr::Loop(BlockType::Empty, body)
    }

    /// Hand-built wasm exercising the control paths C codegen never
    /// emits: a tight `br_table` dispatch loop (export `dispatch`) and a
    /// loop that exits a 32-deep block nest through a variable-depth
    /// `br_table` every iteration (export `unwind`).
    #[must_use]
    pub fn branch_module() -> Module {
        let mut b = ModuleBuilder::new();
        let (n, i, acc) = (0, 1, 2);

        // dispatch(n): loop { switch (i % 4) { 0: acc+=1; 1: acc+=3; _: {} } }
        let selector = vec![
            Instr::LocalGet(i),
            Instr::I64Const(4),
            Instr::I64RemU,
            Instr::I32WrapI64,
            Instr::BrTable(vec![0, 1], 2),
        ];
        let case0 = vec![
            Instr::LocalGet(acc),
            Instr::I64Const(1),
            Instr::I64Add,
            Instr::LocalSet(acc),
            Instr::Br(1),
        ];
        let case1 = vec![
            Instr::LocalGet(acc),
            Instr::I64Const(3),
            Instr::I64Add,
            Instr::LocalSet(acc),
            Instr::Br(0),
        ];
        let mut b1 = vec![Instr::Block(BlockType::Empty, selector)];
        b1.extend(case0);
        let mut b2 = vec![Instr::Block(BlockType::Empty, b1)];
        b2.extend(case1);
        let dispatch = b.add_function(
            &[ValType::I64],
            &[ValType::I64],
            &[ValType::I64, ValType::I64],
            vec![
                counted_loop(vec![Instr::Block(BlockType::Empty, b2)], n, i),
                Instr::LocalGet(acc),
            ],
        );
        b.export_func("dispatch", dispatch);

        // unwind(n): every iteration enters 32 nested blocks and exits a
        // variable number of them in one br_table branch.
        const DEPTH: u32 = 32;
        let mut nest = vec![
            Instr::LocalGet(i),
            Instr::I64Const(i64::from(DEPTH)),
            Instr::I64RemU,
            Instr::I32WrapI64,
            Instr::BrTable((0..DEPTH - 1).collect(), DEPTH - 1),
        ];
        for _ in 0..DEPTH {
            nest = vec![Instr::Block(BlockType::Empty, nest)];
        }
        let unwind = b.add_function(
            &[ValType::I64],
            &[ValType::I64],
            &[ValType::I64, ValType::I64],
            vec![counted_loop(nest, n, i), Instr::LocalGet(i)],
        );
        b.export_func("unwind", unwind);
        b.build()
    }
}

/// Writes `content` to `results/<name>` (creating the directory), and
/// returns the path.
///
/// # Panics
///
/// Panics on I/O errors.
pub fn write_results(name: &str, content: &str) -> PathBuf {
    let dir = results_dir();
    fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(name);
    fs::write(&path, content).expect("write results file");
    path
}

/// The `results/` directory at the workspace root.
#[must_use]
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench → workspace root is two up.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .join("results")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_kernel_verifies_checksum() {
        let k = cage_polybench::kernel("gemm").unwrap();
        let m = measure_kernel(&k, Variant::BaselineWasm64, Core::CortexX3);
        assert!(m.simulated_ms > 0.0);
        assert!(m.instructions > 10_000);
    }

    #[test]
    fn fig14_shape_on_one_kernel() {
        let k = cage_polybench::kernel("gemm").unwrap();
        let fig = fig14_sweep(std::slice::from_ref(&k));
        // wasm64 is the normalisation baseline.
        assert!((fig.mean_percent(Variant::BaselineWasm64, Core::CortexA510) - 100.0).abs() < 1e-9);
        // In-order core: wasm32 much faster than wasm64; sandboxing wins.
        let wasm32 = fig.mean_percent(Variant::BaselineWasm32, Core::CortexA510);
        let sandbox = fig.mean_percent(Variant::CageSandboxing, Core::CortexA510);
        assert!(wasm32 < 80.0, "wasm32 {wasm32}");
        assert!(sandbox < 80.0, "sandbox {sandbox}");
    }

    #[test]
    fn results_dir_is_under_workspace_root() {
        assert!(results_dir().ends_with("results"));
    }
}
