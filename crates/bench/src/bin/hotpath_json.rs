//! Machine-readable hot-path benchmark summary.
//!
//! Runs each hot-path kernel (the same sources and arguments as
//! `benches/hotpath.rs`, plus PolyBench gemm) a fixed number of times per
//! variant — under both the standard pipeline and the full IR optimiser
//! — and writes `results/bench_hotpath.json` mapping kernel → median
//! wall-clock nanoseconds and retired instruction count, so the
//! interpreter's performance trajectory (and the optimiser's
//! retired-op win) is recorded per PR instead of living only in commit
//! messages. Instantiation happens outside the timed region; only guest
//! execution is measured, exactly like the criterion bench. The
//! hand-built `br_table` modules bypass the C→IR pipeline, so they are
//! recorded once per variant under the standard pipeline only.

use std::fmt::Write as _;
use std::time::Instant;

use cage::{Engine, Linker, OptPasses, Value, Variant};
use cage_bench::hotpath::{branch_module, c_kernels};

const SAMPLES: usize = 10;

/// Median of `SAMPLES` timed runs (one untimed warm-up), in nanoseconds.
/// `setup` runs untimed before every sample (criterion's `iter_batched`
/// shape), so instantiation cost never leaks into the guest timing.
fn median_ns<I>(mut setup: impl FnMut() -> I, mut run: impl FnMut(I)) -> (u128, u128, u128) {
    run(setup()); // warm
    let mut ns: Vec<u128> = (0..SAMPLES)
        .map(|_| {
            let input = setup();
            let t = Instant::now();
            run(input);
            t.elapsed().as_nanos()
        })
        .collect();
    ns.sort_unstable();
    (ns[ns.len() / 2], ns[0], ns[ns.len() - 1])
}

struct Row {
    kernel: String,
    variant: &'static str,
    pipeline: &'static str,
    median_ns: u128,
    min_ns: u128,
    max_ns: u128,
    retired: u64,
}

fn main() {
    let variants = [Variant::BaselineWasm64, Variant::CageFull];
    let mut rows: Vec<Row> = Vec::new();

    for variant in variants {
        let pipelines = [
            ("standard", Engine::new(variant)),
            (
                "opt",
                Engine::builder(variant)
                    .opt_passes(OptPasses::full())
                    .build(),
            ),
        ];
        for (pipeline, engine) in &pipelines {
            for (name, source, arg) in c_kernels() {
                let artifact = engine.compile(source).expect("kernel builds");
                let (median, min, max) = median_ns(
                    || engine.instantiate(&artifact).expect("instantiates"),
                    |mut inst| {
                        let t = inst.invoke("run", &[Value::I64(arg)]).expect("runs");
                        std::hint::black_box(t);
                    },
                );
                let mut probe = engine.instantiate(&artifact).expect("instantiates");
                probe.invoke("run", &[Value::I64(arg)]).expect("runs");
                rows.push(Row {
                    kernel: name.to_string(),
                    variant: variant.label(),
                    pipeline,
                    median_ns: median,
                    min_ns: min,
                    max_ns: max,
                    retired: probe.instr_count(),
                });
            }

            // PolyBench gemm: the paper suite's float/memory workhorse.
            let gemm = cage_polybench::kernel("gemm").expect("gemm in suite");
            let artifact = engine.compile(gemm.source).expect("gemm builds");
            let (median, min, max) = median_ns(
                || engine.instantiate(&artifact).expect("instantiates"),
                |mut inst| {
                    let t = inst.invoke("run", &[]).expect("runs");
                    std::hint::black_box(t);
                },
            );
            let mut probe = engine.instantiate(&artifact).expect("instantiates");
            probe.invoke("run", &[]).expect("runs");
            rows.push(Row {
                kernel: "gemm".to_string(),
                variant: variant.label(),
                pipeline,
                median_ns: median,
                min_ns: min,
                max_ns: max,
                retired: probe.instr_count(),
            });
        }
        let engine = Engine::new(variant);

        // Hand-built br_table kernels through the raw runtime.
        let module = branch_module();
        for export in ["dispatch", "unwind"] {
            let (median, min, max) = median_ns(
                || {
                    let mut rt = engine.runtime();
                    let token = rt
                        .instantiate_linked(&module, 0, &Linker::new())
                        .expect("instantiates");
                    (rt, token)
                },
                |(mut rt, token)| {
                    let t = rt
                        .invoke(token, export, &[Value::I64(500_000)])
                        .expect("runs");
                    std::hint::black_box(t);
                },
            );
            let mut rt = engine.runtime();
            let token = rt
                .instantiate_linked(&module, 0, &Linker::new())
                .expect("instantiates");
            rt.invoke(token, export, &[Value::I64(500_000)])
                .expect("runs");
            rows.push(Row {
                kernel: format!("br_table_{export}"),
                variant: variant.label(),
                pipeline: "standard",
                median_ns: median,
                min_ns: min,
                max_ns: max,
                retired: rt.instr_count(token),
            });
        }
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema\": \"cage-bench-hotpath/2\",");
    let _ = writeln!(json, "  \"samples\": {SAMPLES},");
    let _ = writeln!(json, "  \"results\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"kernel\": \"{}\", \"variant\": \"{}\", \"pipeline\": \"{}\", \
             \"median_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \"retired\": {}}}{comma}",
            r.kernel, r.variant, r.pipeline, r.median_ns, r.min_ns, r.max_ns, r.retired
        );
    }
    json.push_str("  ]\n}\n");

    let path = cage_bench::write_results("bench_hotpath.json", &json);
    println!("wrote {}", path.display());
    for r in &rows {
        println!(
            "{:<20} {:<16} {:<9} median {:>12} ns, {:>10} retired",
            r.kernel, r.variant, r.pipeline, r.median_ns, r.retired
        );
    }
}
