//! Machine-readable hot-path benchmark summary.
//!
//! Runs each hot-path kernel (the same sources and arguments as
//! `benches/hotpath.rs`, plus PolyBench gemm) a fixed number of times per
//! variant, and writes `results/bench_hotpath.json` mapping kernel →
//! median wall-clock nanoseconds — so the interpreter's performance
//! trajectory is recorded per PR instead of living only in commit
//! messages. Instantiation happens outside the timed region; only guest
//! execution is measured, exactly like the criterion bench.

use std::fmt::Write as _;
use std::time::Instant;

use cage::{Engine, Linker, Value, Variant};
use cage_bench::hotpath::{branch_module, c_kernels};

const SAMPLES: usize = 10;

/// Median of `SAMPLES` timed runs (one untimed warm-up), in nanoseconds.
/// `setup` runs untimed before every sample (criterion's `iter_batched`
/// shape), so instantiation cost never leaks into the guest timing.
fn median_ns<I>(mut setup: impl FnMut() -> I, mut run: impl FnMut(I)) -> (u128, u128, u128) {
    run(setup()); // warm
    let mut ns: Vec<u128> = (0..SAMPLES)
        .map(|_| {
            let input = setup();
            let t = Instant::now();
            run(input);
            t.elapsed().as_nanos()
        })
        .collect();
    ns.sort_unstable();
    (ns[ns.len() / 2], ns[0], ns[ns.len() - 1])
}

struct Row {
    kernel: String,
    variant: &'static str,
    median_ns: u128,
    min_ns: u128,
    max_ns: u128,
}

fn main() {
    let variants = [Variant::BaselineWasm64, Variant::CageFull];
    let mut rows: Vec<Row> = Vec::new();

    for variant in variants {
        let engine = Engine::new(variant);
        for (name, source, arg) in c_kernels() {
            let artifact = engine.compile(source).expect("kernel builds");
            let (median, min, max) = median_ns(
                || engine.instantiate(&artifact).expect("instantiates"),
                |mut inst| {
                    let t = inst.invoke("run", &[Value::I64(arg)]).expect("runs");
                    std::hint::black_box(t);
                },
            );
            rows.push(Row {
                kernel: name.to_string(),
                variant: variant.label(),
                median_ns: median,
                min_ns: min,
                max_ns: max,
            });
        }

        // Hand-built br_table kernels through the raw runtime.
        let module = branch_module();
        for export in ["dispatch", "unwind"] {
            let (median, min, max) = median_ns(
                || {
                    let mut rt = engine.runtime();
                    let token = rt
                        .instantiate_linked(&module, 0, &Linker::new())
                        .expect("instantiates");
                    (rt, token)
                },
                |(mut rt, token)| {
                    let t = rt
                        .invoke(token, export, &[Value::I64(500_000)])
                        .expect("runs");
                    std::hint::black_box(t);
                },
            );
            rows.push(Row {
                kernel: format!("br_table_{export}"),
                variant: variant.label(),
                median_ns: median,
                min_ns: min,
                max_ns: max,
            });
        }

        // PolyBench gemm: the paper suite's float/memory workhorse.
        let gemm = cage_polybench::kernel("gemm").expect("gemm in suite");
        let artifact = engine.compile(gemm.source).expect("gemm builds");
        let (median, min, max) = median_ns(
            || engine.instantiate(&artifact).expect("instantiates"),
            |mut inst| {
                let t = inst.invoke("run", &[]).expect("runs");
                std::hint::black_box(t);
            },
        );
        rows.push(Row {
            kernel: "gemm".to_string(),
            variant: variant.label(),
            median_ns: median,
            min_ns: min,
            max_ns: max,
        });
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema\": \"cage-bench-hotpath/1\",");
    let _ = writeln!(json, "  \"samples\": {SAMPLES},");
    let _ = writeln!(json, "  \"results\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"kernel\": \"{}\", \"variant\": \"{}\", \"median_ns\": {}, \
             \"min_ns\": {}, \"max_ns\": {}}}{comma}",
            r.kernel, r.variant, r.median_ns, r.min_ns, r.max_ns
        );
    }
    json.push_str("  ]\n}\n");

    let path = cage_bench::write_results("bench_hotpath.json", &json);
    println!("wrote {}", path.display());
    for r in &rows {
        println!(
            "{:<20} {:<16} median {:>12} ns",
            r.kernel, r.variant, r.median_ns
        );
    }
}
