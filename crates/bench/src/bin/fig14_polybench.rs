//! Regenerates Fig. 14: PolyBench/C runtime overheads of the Table 3
//! configurations, normalised to baseline wasm64, per core.
//!
//! Also covers the §3 claim (E9 in DESIGN.md): the wasm32 row shows the
//! 32→64-bit sandboxing cost (~6-8 % on out-of-order cores, ~52 % on the
//! in-order A510, read as 100/wasm32 - 1).

use std::fmt::Write as _;

use cage::{Core, Variant};

fn main() {
    let kernels = cage_polybench::kernels();
    eprintln!(
        "running {} kernels x {} variants x {} cores ...",
        kernels.len(),
        Variant::ALL.len(),
        Core::ALL.len()
    );
    let fig = cage_bench::fig14_sweep(&kernels);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 14: PolyBench mean runtime, normalised to baseline wasm64 (%, lower is better)"
    );
    let _ = write!(out, "{:<18}", "variant");
    for core in Core::ALL {
        let _ = write!(out, " {:>16}", core.to_string());
    }
    let _ = writeln!(out);
    for variant in Variant::ALL {
        let _ = write!(out, "{:<18}", variant.label());
        for core in Core::ALL {
            let mean = fig.mean_percent(variant, core);
            let std = fig.std_percent(variant, core);
            let _ = write!(out, " {:>9.1} ±{:>4.1}", mean, std);
        }
        let _ = writeln!(out);
    }

    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "§3 check — 64-bit sandboxing cost (wasm64 over wasm32):"
    );
    for core in Core::ALL {
        let wasm32 = fig.mean_percent(Variant::BaselineWasm32, core);
        let _ = writeln!(
            out,
            "  {:<12} +{:.1}%",
            core.to_string(),
            (100.0 / wasm32 - 1.0) * 100.0
        );
    }

    let _ = writeln!(out);
    let _ = writeln!(out, "per-kernel ratios (runtime / wasm64):");
    for core in Core::ALL {
        let _ = writeln!(out, "[{core}]");
        let _ = write!(out, "{:<16}", "kernel");
        for variant in Variant::ALL {
            let _ = write!(out, " {:>16}", variant.label());
        }
        let _ = writeln!(out);
        for (ki, name) in fig.kernels.iter().enumerate() {
            let _ = write!(out, "{name:<16}");
            for (vi, _) in Variant::ALL.iter().enumerate() {
                let ci = Core::ALL.iter().position(|c| *c == core).unwrap();
                let _ = write!(out, " {:>16.3}", fig.ratios[vi][ci][ki]);
            }
            let _ = writeln!(out);
        }
    }
    print!("{out}");
    let path = cage_bench::write_results("runtime.txt", &out);
    println!("\nwritten to {}", path.display());
}
