//! Regenerates Fig. 16 / Table 4: initialising and tagging 128 MiB with
//! the different store-tag instruction variants, per core.

use std::fmt::Write as _;

use cage::mte::timing::{bulk_init_ms, BulkInitVariant, CALIBRATION_BYTES};
use cage::mte::Core;

fn main() {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 16: 128 MiB init/tag variants (ms, lower is better)"
    );
    let _ = write!(out, "{:<12}", "Core");
    for v in BulkInitVariant::ALL {
        let _ = write!(out, " {:>11}", v.label());
    }
    let _ = writeln!(out);
    for core in Core::ALL {
        let _ = write!(out, "{:<12}", core.to_string());
        for v in BulkInitVariant::ALL {
            let _ = write!(out, " {:>11.1}", bulk_init_ms(core, CALIBRATION_BYTES, v));
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "Table 4 metadata:");
    let _ = writeln!(out, "{:<12} {:>8} {:>8}", "variant", "sets 0", "tags");
    for v in BulkInitVariant::ALL {
        let _ = writeln!(
            out,
            "{:<12} {:>8} {:>8}",
            v.label(),
            if v.zeroes_memory() { "yes" } else { "no" },
            if v.sets_tags() { "yes" } else { "no" }
        );
    }
    print!("{out}");
    let path = cage_bench::write_results("stg.txt", &out);
    println!("\nwritten to {}", path.display());
}
