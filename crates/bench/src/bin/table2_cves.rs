//! Regenerates Table 2: the CVE classes, whether plain WASM mitigates
//! them, and whether Cage catches them.

use std::fmt::Write as _;

use cage::{Engine, Variant};

fn outcome(source: &str, variant: Variant) -> &'static str {
    let engine = Engine::new(variant);
    let artifact = engine.compile(source).expect("builds");
    let mut inst = engine.instantiate(&artifact).expect("instantiates");
    let run = inst.get_typed::<i64, i64>("run").expect("run export");
    match run.call(&mut inst, 1) {
        Ok(_) => "undetected",
        Err(e) if e.is_memory_safety_violation() => "trapped",
        Err(_) => "other trap",
    }
}

fn main() {
    let mut out = String::new();
    let _ = writeln!(out, "Table 2: memory-safety errors and their mitigation");
    let _ = writeln!(
        out,
        "{:<16} {:<16} {:<18} {:<12} {:<12}",
        "CVE", "Cause", "Mitigated in WASM", "baseline", "Cage"
    );
    for case in cage::gallery::cases() {
        let base = outcome(case.source, Variant::BaselineWasm64);
        let caged = outcome(case.source, Variant::CageFull);
        let _ = writeln!(
            out,
            "{:<16} {:<16} {:<18} {:<12} {:<12}",
            case.cve, case.cause, case.mitigated_in_wasm, base, caged
        );
        assert_eq!(base, "undetected", "{}: baseline must miss it", case.cve);
        assert_eq!(caged, "trapped", "{}: Cage must catch it", case.cve);
    }
    print!("{out}");
    let path = cage_bench::write_results("cves.txt", &out);
    println!("\nwritten to {}", path.display());
}
