//! Regenerates Fig. 4: performance overhead of MTE sync and async mode for
//! writing 128 MiB of memory, per core.

use std::fmt::Write as _;

use cage::mte::timing::{memset_ms, CALIBRATION_BYTES};
use cage::mte::{Core, MteMode};

fn main() {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 4: 128 MiB memset under MTE modes (ms, lower is better)"
    );
    let _ = writeln!(
        out,
        "{:<12} {:>8} {:>8} {:>8}",
        "Core", "none", "async", "sync"
    );
    for core in Core::ALL {
        let none = memset_ms(core, CALIBRATION_BYTES, MteMode::Disabled);
        let asyn = memset_ms(core, CALIBRATION_BYTES, MteMode::Asynchronous);
        let sync = memset_ms(core, CALIBRATION_BYTES, MteMode::Synchronous);
        let _ = writeln!(
            out,
            "{:<12} {none:>8.1} {asyn:>8.1} {sync:>8.1}",
            core.to_string()
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "overheads vs disabled:");
    for core in Core::ALL {
        let none = memset_ms(core, CALIBRATION_BYTES, MteMode::Disabled);
        let asyn = memset_ms(core, CALIBRATION_BYTES, MteMode::Asynchronous);
        let sync = memset_ms(core, CALIBRATION_BYTES, MteMode::Synchronous);
        let _ = writeln!(
            out,
            "{:<12} async {:+.1}%  sync {:+.1}%",
            core.to_string(),
            (asyn / none - 1.0) * 100.0,
            (sync / none - 1.0) * 100.0
        );
    }
    print!("{out}");
    let path = cage_bench::write_results("mte-mode.txt", &out);
    println!("\nwritten to {}", path.display());
}
