//! Regenerates Fig. 15: overheads of pointer authentication on the
//! call-indirect 2mm variant (static vs dynamic vs authenticated dynamic).

use std::fmt::Write as _;

fn main() {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 15: 2mm-with-calls runtime, normalised to static (%)"
    );
    let _ = writeln!(
        out,
        "{:<12} {:>8} {:>9} {:>9}",
        "Core", "static", "dynamic", "ptr-auth"
    );
    for (core, [s, d, a]) in cage_bench::fig15_sweep() {
        let _ = writeln!(out, "{:<12} {s:>8.1} {d:>9.1} {a:>9.1}", core.to_string());
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "expected shape (paper): dynamic 115-122%, ptr-auth within ~1-2% of dynamic"
    );
    print!("{out}");
    let path = cage_bench::write_results("ptr-auth.txt", &out);
    println!("\nwritten to {}", path.display());
}
