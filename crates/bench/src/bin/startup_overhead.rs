//! Regenerates the §7.2 startup-overhead experiment: instantiating a
//! module with a 128 MiB static memory and calling an empty function.

use std::fmt::Write as _;

use cage::runtime::startup_report;
use cage::{Core, Variant};

fn main() {
    const MIB_128: u64 = 128 * 1024 * 1024;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Startup overhead: 128 MiB static memory, empty export (§7.2)"
    );
    let _ = writeln!(
        out,
        "{:<12} {:<16} {:>9} {:>10} {:>9} {:>9}",
        "Core", "variant", "base ms", "tagging ms", "total ms", "tag %"
    );
    for core in Core::ALL {
        for variant in [Variant::BaselineWasm64, Variant::CageFull] {
            let r = startup_report(variant, core, MIB_128);
            let _ = writeln!(
                out,
                "{:<12} {:<16} {:>9.1} {:>10.2} {:>9.1} {:>8.1}%",
                core.to_string(),
                variant.label(),
                r.base_ms,
                r.tagging_ms,
                r.total_ms(),
                r.tagging_fraction() * 100.0
            );
        }
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "context: a standalone stg tagging pass over 128 MiB would cost:"
    );
    for core in Core::ALL {
        let _ = writeln!(
            out,
            "  {:<12} {:>6.1} ms (hidden: the runtime tags while zeroing, via stzg)",
            core.to_string(),
            cage::mte::timing::tag_region_ms(core, MIB_128)
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "claim (§7.2): the overhead of tagging the linear memory is hidden by the\nruntime's startup overhead — the tagging column stays a small fraction."
    );
    print!("{out}");
    let path = cage_bench::write_results("startup.txt", &out);
    println!("\nwritten to {}", path.display());
}
