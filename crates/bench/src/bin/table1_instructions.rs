//! Regenerates Table 1: MTE and PAC instruction throughput (instructions
//! per cycle) and latencies (cycles) per core.
//!
//! Runs the paper's microbenchmark (§2.3) against the simulated pipeline:
//! 10^6 instructions in an unrolled loop, without data dependencies for
//! throughput and with a serial dependency chain for latency.

use std::fmt::Write as _;

use cage::mte::pipeline::{measure_mte, run_chained, run_independent, InstrParams};
use cage::mte::{Core, MteInstr};
use cage::pac::PacInstr;

const N: u64 = 1_000_000;

fn main() {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 1: MTE and PAC instruction throughput (inst/cycle) and latency (cycles)"
    );
    let _ = writeln!(
        out,
        "{:<8} {:>9} {:>6} {:>9} {:>6} {:>9} {:>6}",
        "Inst", "X3 Tp", "Lat", "A715 Tp", "Lat", "A510 Tp", "Lat"
    );
    let _ = writeln!(out, "MTE");
    for instr in MteInstr::ALL {
        let mut row = format!("{:<8}", instr.mnemonic());
        for core in Core::ALL {
            let (tp, lat) = measure_mte(instr, core, N);
            let lat_s = lat.map_or_else(|| "-".to_string(), |l| format!("{l:.2}"));
            let _ = write!(row, " {tp:>9.2} {lat_s:>6}");
        }
        let _ = writeln!(out, "{row}");
    }
    let _ = writeln!(out, "PAC");
    for instr in PacInstr::ALL {
        let mut row = format!("{:<8}", instr.mnemonic());
        for core in Core::ALL {
            let params = InstrParams {
                throughput: instr.throughput(core),
                latency: Some(instr.latency(core)),
            };
            let tp = run_independent(params, N).throughput();
            let lat = run_chained(params, N).latency();
            let _ = write!(row, " {tp:>9.2} {lat:>6.2}");
        }
        let _ = writeln!(out, "{row}");
    }
    print!("{out}");
    let path = cage_bench::write_results("inst-cycles.txt", &out);
    println!("\nwritten to {}", path.display());
}
