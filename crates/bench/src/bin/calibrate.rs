//! Calibration probe: quick Fig. 14 + Fig. 15 shape check on a kernel
//! subset (development tool; the real sweeps live in `fig14_polybench`
//! and `fig15_ptr_auth`).
fn main() {
    use cage::{Core, Variant};
    let ks = cage_polybench::kernels();
    let subset: Vec<_> = ks
        .into_iter()
        .filter(|k| ["gemm", "atax", "jacobi-2d"].contains(&k.name))
        .collect();
    let fig = cage_bench::fig14_sweep(&subset);
    for core in Core::ALL {
        print!("{core:>12}: ");
        for v in Variant::ALL {
            print!("{}={:.1} ", v.label(), fig.mean_percent(v, core));
        }
        println!();
    }
    for (core, [s, d, a]) in cage_bench::fig15_sweep() {
        println!("{core:>12}: static={s:.1} dynamic={d:.1} ptr-auth={a:.1}");
    }
}
