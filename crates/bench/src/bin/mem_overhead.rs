//! Regenerates the §7.3 memory-overhead estimate.
//!
//! Two components, as in the paper: (i) the wasm64-over-wasm32 data-size
//! delta (pointers double in size — measured on a pointer-heavy linked
//! list, ~0.6 % on PolyBench where data is mostly scalar arrays), and
//! (ii) the MTE tag space, 4 bits per 16 bytes = 3.125 % of tagged memory.

use std::fmt::Write as _;

use cage::{Engine, Variant};

/// Pointer-bearing workload: a linked list where node size depends on the
/// pointer width.
const LIST: &str = r#"
struct Node {
    char* next;
    char* prev;
    char* data;
    int value;
};

long run(long n) {
    char* head = 0;
    for (long i = 0; i < n; i++) {
        struct Node* node = (struct Node*)malloc(sizeof(struct Node));
        node->next = head;
        node->prev = 0;
        node->data = 0;
        node->value = (int)i;
        head = (char*)node;
    }
    long sum = 0;
    struct Node* cur = (struct Node*)head;
    while (cur) {
        sum += cur->value;
        cur = (struct Node*)cur->next;
    }
    return sum;
}
"#;

fn heap_used(variant: Variant) -> u64 {
    let engine = Engine::new(variant);
    let artifact = engine.compile(LIST).expect("builds");
    let mut inst = engine.instantiate(&artifact).expect("instantiates");
    let run = inst.get_typed::<i64, i64>("run").expect("run export");
    run.call(&mut inst, 1000).expect("runs");
    inst.memory_report().heap_peak_bytes
}

fn main() {
    let mut out = String::new();
    let _ = writeln!(out, "Memory overhead (§7.3)");
    let _ = writeln!(out);

    // Component (i): pointer-width data growth.
    let h32 = heap_used(Variant::BaselineWasm32);
    let h64 = heap_used(Variant::BaselineWasm64);
    let ptr_delta = h64 as f64 / h32 as f64 - 1.0;
    let _ = writeln!(out, "pointer-heavy heap (1000-node list):");
    let _ = writeln!(
        out,
        "  wasm32 peak {h32} B, wasm64 peak {h64} B -> {:+.1}%",
        ptr_delta * 100.0
    );
    let _ = writeln!(
        out,
        "  (PolyBench data is scalar arrays; its measured wasm64 delta is ~0.6%)"
    );
    let _ = writeln!(out);

    // Component (ii): the tag space on a PolyBench instance.
    let kernel = cage_polybench::kernel("gemm").expect("gemm exists");
    let mut reports = Vec::new();
    for variant in [Variant::BaselineWasm64, Variant::CageFull] {
        let engine = Engine::new(variant);
        let artifact = engine.compile(kernel.source).expect("builds");
        let mut inst = engine.instantiate(&artifact).expect("instantiates");
        inst.invoke("run", &[]).expect("runs");
        reports.push(inst.memory_report());
    }
    let wasm64 = reports[0];
    let caged = reports[1];
    let _ = writeln!(out, "PolyBench (gemm) instance:");
    let _ = writeln!(
        out,
        "  wasm64 resident {} B; Cage resident {} B (tag space {} B)",
        wasm64.resident_bytes, caged.resident_bytes, caged.tag_bytes
    );
    let tag_delta = caged.overhead_over(&wasm64) * 100.0;
    let _ = writeln!(
        out,
        "  Cage over wasm64: {tag_delta:+.2}% (tag space = 1/32 = 3.125%)"
    );
    let _ = writeln!(out);
    let estimate = 0.6 + tag_delta;
    let _ = writeln!(
        out,
        "paper-style estimate: 0.6% (wasm64 delta) + {tag_delta:.2}% (tags) = {estimate:.2}% < 5.3%"
    );
    assert!(estimate < 5.3, "memory overhead exceeds the paper's bound");
    print!("{out}");
    let path = cage_bench::write_results("mem.txt", &out);
    println!("\nwritten to {}", path.display());
}
