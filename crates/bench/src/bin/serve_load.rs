//! Multi-tenant serving load driver.
//!
//! Compiles one request handler, builds one shared `InstancePre`
//! template, and drives thousands of concurrent instances across worker
//! threads — each worker owning a `Pool` that stamps, serves, releases
//! and recycles instance slots under a fuel budget. Writes
//! `results/bench_serve.json` with instantiations/sec, recycle (reset)
//! throughput and p50/p90/p99 invoke latency, so the throughput axis of
//! the serving layer is recorded per PR like the hot-path numbers.
//!
//! With `--chaos`, a fault-injection phase follows the load phase: every
//! worker draws from a seeded `FaultPlan` and forces host traps, host
//! panics, allocator exhaustion under a pinned page cap, and fuel/epoch
//! expiry into live checkout/invoke/release cycles — then probes the
//! pool with a healthy request after every injected fault. The run
//! aborts if any fault class fails to produce its expected outcome or
//! any probe fails, so "completes" means "survived"; per-class survival
//! counts land in the same JSON under `"chaos"`.
//!
//! Flags (defaults in brackets): `--instances N` [1024] total concurrent
//! instances, `--threads T` [4] worker threads, `--requests R` [8]
//! invokes per instance, `--fuel F` [1000000] per-checkout fuel budget,
//! `--chaos` [off] fault-injection phase, `--chaos-seed S` [2026].

use std::cell::Cell;
use std::collections::BTreeMap;
use std::env;
use std::fmt::Write as _;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use cage::serve::EpochTicker;
use cage::wasm::ValType;
use cage::{
    Engine, Fault, FaultPlan, HostProfile, InstanceLimits, InstancePre, Linker, Pool, PoolMetrics,
    Trap, Value, Variant,
};

/// The request handler every tenant runs: allocator churn plus a memory
/// sweep, so cold instantiation, invoke and dirty-page reset all have
/// real work to do.
const HANDLER: &str = r#"
    long handle(long req) {
        long n = 16 + (req % 16);
        long* buf = (long*)malloc(n * 8);
        long acc = 0;
        for (long i = 0; i < n; i++) {
            buf[i] = req * 31 + i;
        }
        for (long i = 0; i < n; i++) {
            acc = acc + buf[i];
        }
        free((char*)buf);
        return acc;
    }
"#;

/// The chaos-phase handler: the same work as `handle`, routed through a
/// host hook whose behaviour the worker flips between benign, trapping
/// and panicking; plus an allocator-exhaustion probe and a spin loop for
/// the preemption faults.
const CHAOS_HANDLER: &str = r#"
    long chaos_hook(long req);
    long handle(long req) {
        long t = chaos_hook(req);
        long n = 16 + (req % 16);
        long* buf = (long*)malloc(n * 8);
        long acc = t - req;
        for (long i = 0; i < n; i++) {
            buf[i] = req * 31 + i;
        }
        for (long i = 0; i < n; i++) {
            acc = acc + buf[i];
        }
        free((char*)buf);
        return acc;
    }
    long hog(long req) {
        char* p = malloc(16777216);
        if (p == 0) { return -1; }
        p[0] = 1;
        long v = p[0];
        free(p);
        return v;
    }
    long spin(long n) {
        long acc = 0;
        while (1) { acc = acc + n; }
        return acc;
    }
"#;

thread_local! {
    /// Per-worker chaos-hook behaviour: 0 benign, 1 host trap, 2 host
    /// panic. A pool lives on one thread, so a thread-local gives each
    /// worker its own switch through the shared `HostProfile`.
    static CHAOS_MODE: Cell<u64> = const { Cell::new(0) };
}

fn chaos_profile() -> HostProfile {
    HostProfile::Custom(Arc::new(|linker: &mut Linker| {
        *linker = Linker::with_libc();
        linker.func(
            "env",
            "chaos_hook",
            &[ValType::I64],
            &[ValType::I64],
            |_ctx, args| match CHAOS_MODE.with(Cell::get) {
                0 => Ok(vec![args[0]]),
                1 => Err(Trap::Host("chaos injected host trap".into())),
                _ => panic!("chaos injected host panic"),
            },
        );
    }))
}

struct WorkerReport {
    latencies_ns: Vec<u64>,
    instantiate_secs: f64,
    churn_secs: f64,
    metrics: PoolMetrics,
}

/// Per-fault-class injection/survival tally from one chaos worker.
#[derive(Default)]
struct ChaosReport {
    /// class name -> (injected, survived).
    classes: BTreeMap<&'static str, (u64, u64)>,
    metrics: PoolMetrics,
}

impl ChaosReport {
    fn merge(&mut self, other: &ChaosReport) {
        for (class, (i, s)) in &other.classes {
            let e = self.classes.entry(class).or_insert((0, 0));
            e.0 += i;
            e.1 += s;
        }
        self.metrics.merge(&other.metrics);
    }
}

/// One chaos worker: `requests` checkout/invoke/release cycles, each
/// preceded by a fault drawn from the worker's seeded plan and followed
/// by a healthy probe proving the pool recovered. Returns per-class
/// survival counts; panics (killing the run) on any unexpected outcome.
fn chaos_worker(
    pre: Arc<InstancePre>,
    requests: usize,
    seed: u64,
    fuel: u64,
    epoch: Arc<std::sync::atomic::AtomicU64>,
) -> ChaosReport {
    let initial_pages = pre.module().memory_type().map(|t| t.limits.min);
    let mut pool = Pool::new(pre);
    pool.share_epoch(epoch);
    pool.set_fuel_budget(Some(fuel));
    let mut plan = FaultPlan::new(seed);
    let mut report = ChaosReport::default();

    // A fixed sweep of every fault class first, so each class is
    // exercised at any scale (CI smoke-runs this small); then the seeded
    // random stream interleaves faults with healthy traffic.
    let sweep = [
        Fault::GrowDenied,
        Fault::HostTrap,
        Fault::HostPanic,
        Fault::FuelExhaust(3),
        Fault::EpochExpire,
    ];
    for (i, fault) in sweep
        .into_iter()
        .chain((0..requests).map(|_| plan.next_fault()))
        .enumerate()
    {
        let entry = report.classes.entry(fault.name()).or_insert((0, 0));
        entry.0 += 1;
        let req = Value::I64(i as i64);
        let survived = inject(&mut pool, fault, req, fuel, initial_pages);
        // Recovery probe: whatever was just injected, the next healthy
        // request must succeed.
        let probe = pool.checkout().expect("probe checkout");
        let probe_ok = pool.invoke(&probe, "handle", &[req]).is_ok();
        pool.release(probe);
        if survived && probe_ok {
            entry.1 += 1;
        } else {
            panic!(
                "chaos worker: fault {} did not produce its expected outcome \
                 (survived={survived}, probe_ok={probe_ok}, request {i})",
                fault.name()
            );
        }
    }
    report.metrics = pool.metrics();
    report
}

/// Forces one fault into a checkout/invoke/release cycle and reports
/// whether it produced exactly its expected outcome.
fn inject(
    pool: &mut Pool,
    fault: Fault,
    req: Value,
    fuel: u64,
    initial_pages: Option<u64>,
) -> bool {
    match fault {
        Fault::None => {
            let inst = pool.checkout().expect("healthy checkout");
            let ok = pool.invoke(&inst, "handle", &[req]).is_ok();
            pool.release(inst);
            ok
        }
        Fault::GrowDenied => {
            // Pin the memory at its initial size and drive the allocator
            // past it: the hardened malloc reports NULL (the guest
            // returns -1) instead of growing.
            pool.set_limits(InstanceLimits {
                max_memory_pages: initial_pages,
                ..InstanceLimits::default()
            });
            let inst = pool.checkout().expect("capped checkout");
            let out = pool.invoke(&inst, "hog", &[req]);
            pool.release(inst);
            pool.set_limits(InstanceLimits::default());
            matches!(out.as_deref(), Ok([Value::I64(-1)]))
        }
        Fault::HostTrap => {
            CHAOS_MODE.with(|m| m.set(1));
            let inst = pool.checkout().expect("checkout");
            let out = pool.invoke(&inst, "handle", &[req]);
            CHAOS_MODE.with(|m| m.set(0));
            let poisoned = pool.is_poisoned(&inst);
            pool.release(inst);
            matches!(out, Err(Trap::Host(_))) && !poisoned
        }
        Fault::HostPanic => {
            CHAOS_MODE.with(|m| m.set(2));
            let inst = pool.checkout().expect("checkout");
            let out = pool.invoke(&inst, "handle", &[req]);
            CHAOS_MODE.with(|m| m.set(0));
            let poisoned = pool.is_poisoned(&inst);
            pool.release(inst);
            matches!(out, Err(Trap::HostPanic(_))) && poisoned
        }
        Fault::FuelExhaust(budget) => {
            pool.set_fuel_budget(Some(budget));
            let inst = pool.checkout().expect("checkout");
            let out = pool.invoke(&inst, "spin", &[req]);
            pool.set_fuel_budget(Some(fuel));
            pool.release(inst);
            matches!(out, Err(Trap::FuelExhausted))
        }
        Fault::EpochExpire => {
            // Deadline at the current epoch: due before the first
            // preemption point, ticker or not.
            pool.set_epoch_budget(Some(0));
            let inst = pool.checkout().expect("checkout");
            let out = pool.invoke(&inst, "spin", &[req]);
            pool.set_epoch_budget(None);
            pool.release(inst);
            matches!(out, Err(Trap::EpochInterrupt))
        }
    }
}

/// One worker: fill a pool with `instances` live instances, serve
/// `requests` rounds across them, then recycle every slot once (the
/// steady-state path: release + dirty-page-reset checkout).
fn worker(
    pre: Arc<InstancePre>,
    instances: usize,
    requests: usize,
    fuel: Option<u64>,
) -> WorkerReport {
    let mut pool = Pool::new(pre);
    pool.set_fuel_budget(fuel);

    let t = Instant::now();
    let mut held = Vec::with_capacity(instances);
    for _ in 0..instances {
        held.push(pool.checkout().expect("cold checkout"));
    }
    let instantiate_secs = t.elapsed().as_secs_f64();

    let mut latencies_ns = Vec::with_capacity(instances * requests);
    for round in 0..requests {
        for (i, inst) in held.iter().enumerate() {
            let req = (round * instances + i) as i64;
            let t = Instant::now();
            let out = pool
                .invoke(inst, "handle", &[Value::I64(req)])
                .expect("handler runs");
            latencies_ns.push(t.elapsed().as_nanos() as u64);
            std::hint::black_box(out);
        }
    }

    let t = Instant::now();
    for inst in held.drain(..) {
        pool.release(inst);
    }
    let mut recycled = Vec::with_capacity(instances);
    for _ in 0..instances {
        recycled.push(pool.checkout().expect("recycled checkout"));
    }
    let churn_secs = t.elapsed().as_secs_f64();
    assert_eq!(
        pool.capacity(),
        instances,
        "churn must recycle slots, not grow the pool"
    );
    for (i, inst) in recycled.iter().enumerate() {
        let out = pool
            .invoke(inst, "handle", &[Value::I64(i as i64)])
            .expect("recycled instance serves");
        std::hint::black_box(out);
    }
    for inst in recycled {
        pool.release(inst);
    }

    WorkerReport {
        latencies_ns,
        instantiate_secs,
        churn_secs,
        metrics: pool.metrics(),
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    let mut instances: usize = 1024;
    let mut threads: usize = 4;
    let mut requests: usize = 8;
    let mut fuel: u64 = 1_000_000;
    let mut chaos = false;
    let mut chaos_seed: u64 = 2026;
    let mut args = env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
                .parse::<u64>()
                .unwrap_or_else(|e| panic!("{flag}: {e}"))
        };
        match flag.as_str() {
            "--instances" => instances = value("--instances") as usize,
            "--threads" => threads = value("--threads") as usize,
            "--requests" => requests = value("--requests") as usize,
            "--fuel" => fuel = value("--fuel"),
            "--chaos" => chaos = true,
            "--chaos-seed" => chaos_seed = value("--chaos-seed"),
            other => panic!("unknown flag {other}"),
        }
    }
    assert!(
        threads >= 1 && instances >= threads,
        "need ≥ 1 instance per thread"
    );

    // CagePtrAuth: hardened (pointer auth + W64) with no MTE sandbox-tag
    // cap, so thousands of tenants fit in one store per worker.
    let variant = Variant::CagePtrAuth;
    let engine = Engine::new(variant);
    let artifact = engine.compile(HANDLER).expect("handler compiles");
    let pre = Arc::new(
        engine
            .instance_pre(&artifact, HostProfile::Libc)
            .expect("template builds"),
    );

    let wall = Instant::now();
    let reports: Vec<WorkerReport> = thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                // Spread the remainder over the first workers.
                let share = instances / threads + usize::from(w < instances % threads);
                let pre = Arc::clone(&pre);
                scope.spawn(move || worker(pre, share, requests, Some(fuel)))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect()
    });
    let wall_secs = wall.elapsed().as_secs_f64();

    let mut totals = PoolMetrics::default();
    let mut latencies: Vec<u64> = Vec::new();
    let mut instantiate_secs: f64 = 0.0;
    let mut churn_secs: f64 = 0.0;
    for r in &reports {
        totals.merge(&r.metrics);
        latencies.extend_from_slice(&r.latencies_ns);
        // Workers run concurrently: wall-clock is the slowest worker.
        instantiate_secs = instantiate_secs.max(r.instantiate_secs);
        churn_secs = churn_secs.max(r.churn_secs);
    }
    latencies.sort_unstable();
    let (p50, p90, p99) = (
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.90),
        percentile(&latencies, 0.99),
    );
    let max_ns = latencies.last().copied().unwrap_or(0);
    let instantiations_per_sec = instances as f64 / instantiate_secs;
    let resets_per_sec = instances as f64 / churn_secs;

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema\": \"cage-bench-serve/1\",");
    let _ = writeln!(json, "  \"variant\": \"{}\",", variant.label());
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"instances\": {instances},");
    let _ = writeln!(json, "  \"requests_per_instance\": {requests},");
    let _ = writeln!(json, "  \"fuel_budget\": {fuel},");
    let _ = writeln!(json, "  \"wall_secs\": {wall_secs:.6},");
    let _ = writeln!(
        json,
        "  \"instantiate\": {{\"count\": {instances}, \"secs\": {instantiate_secs:.6}, \
         \"per_sec\": {instantiations_per_sec:.1}}},"
    );
    let _ = writeln!(
        json,
        "  \"recycle\": {{\"count\": {instances}, \"secs\": {churn_secs:.6}, \
         \"per_sec\": {resets_per_sec:.1}}},"
    );
    let _ = writeln!(
        json,
        "  \"invoke_latency_ns\": {{\"count\": {}, \"p50\": {p50}, \"p90\": {p90}, \
         \"p99\": {p99}, \"max\": {max_ns}}},",
        latencies.len()
    );
    let _ = writeln!(
        json,
        "  \"pool\": {{\"instantiations\": {}, \"resets\": {}, \"invocations\": {}, \
         \"instr_count\": {}, \"fuel_consumed\": {}, \"cycles\": {:.1}, \
         \"quarantined\": {}, \"exhausted\": {}, \"leaked\": {}}},",
        totals.instantiations,
        totals.resets,
        totals.invocations,
        totals.instr_count,
        totals.fuel_consumed,
        totals.cycles,
        totals.quarantined,
        totals.exhausted,
        totals.leaked,
    );

    // -- chaos phase -------------------------------------------------------
    let chaos_json = if chaos {
        // Injected host panics are expected by the hundreds: silence their
        // default-hook stack traces, let every other panic print normally.
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|s| s.contains("chaos injected host panic"));
            if !injected {
                prev_hook(info);
            }
        }));

        let chaos_engine = Engine::new(variant);
        let chaos_artifact = chaos_engine
            .compile(CHAOS_HANDLER)
            .expect("chaos handler compiles");
        let chaos_pre = Arc::new(
            chaos_engine
                .instance_pre(&chaos_artifact, chaos_profile())
                .expect("chaos template builds"),
        );
        // One wall-clock ticker preempting across every worker's pool.
        let ticker = EpochTicker::new(Duration::from_millis(1));

        let chaos_wall = Instant::now();
        let reports: Vec<ChaosReport> = thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    let share = instances / threads + usize::from(w < instances % threads);
                    let pre = Arc::clone(&chaos_pre);
                    let epoch = ticker.epoch();
                    let seed = chaos_seed.wrapping_add(w as u64);
                    scope.spawn(move || chaos_worker(pre, share, seed, fuel, epoch))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("chaos worker survived"))
                .collect()
        });
        let chaos_secs = chaos_wall.elapsed().as_secs_f64();
        drop(ticker);

        let mut chaos_totals = ChaosReport::default();
        for r in &reports {
            chaos_totals.merge(r);
        }
        assert_eq!(
            chaos_totals.metrics.leaked, 0,
            "chaos workers must release every checkout"
        );
        let (injected, survived) = chaos_totals
            .classes
            .values()
            .fold((0, 0), |acc, (i, s)| (acc.0 + i, acc.1 + s));
        let mut c = String::from("{\n");
        let _ = writeln!(c, "    \"seed\": {chaos_seed},");
        let _ = writeln!(c, "    \"requests\": {injected},");
        let _ = writeln!(c, "    \"survived\": {survived},");
        let _ = writeln!(c, "    \"wall_secs\": {chaos_secs:.6},");
        let _ = writeln!(
            c,
            "    \"quarantined\": {},",
            chaos_totals.metrics.quarantined
        );
        let _ = writeln!(c, "    \"classes\": {{");
        let n = chaos_totals.classes.len();
        for (idx, (class, (i, s))) in chaos_totals.classes.iter().enumerate() {
            let comma = if idx + 1 < n { "," } else { "" };
            let _ = writeln!(
                c,
                "      \"{class}\": {{\"injected\": {i}, \"survived\": {s}}}{comma}"
            );
        }
        let _ = writeln!(c, "    }}");
        c.push_str("  }");
        println!(
            "chaos: {survived}/{injected} faults survived across {} classes, \
             {} slots quarantined, in {chaos_secs:.2}s",
            chaos_totals.classes.len(),
            chaos_totals.metrics.quarantined
        );
        c
    } else {
        String::from("null")
    };
    let _ = writeln!(json, "  \"chaos\": {chaos_json}");
    json.push_str("}\n");

    let path = cage_bench::write_results("bench_serve.json", &json);
    println!("wrote {}", path.display());
    println!(
        "{instances} instances x {threads} threads ({} invokes) in {wall_secs:.2}s",
        latencies.len()
    );
    println!("instantiate: {instantiations_per_sec:>10.0} /s");
    println!("recycle:     {resets_per_sec:>10.0} /s");
    println!("invoke p50/p90/p99: {p50} / {p90} / {p99} ns");
}
