//! Multi-tenant serving load driver.
//!
//! Compiles one request handler, builds one shared `InstancePre`
//! template, and drives thousands of concurrent instances across worker
//! threads — each worker owning a `Pool` that stamps, serves, releases
//! and recycles instance slots under a fuel budget. Writes
//! `results/bench_serve.json` with instantiations/sec, recycle (reset)
//! throughput and p50/p90/p99 invoke latency, so the throughput axis of
//! the serving layer is recorded per PR like the hot-path numbers.
//!
//! Flags (defaults in brackets): `--instances N` [1024] total concurrent
//! instances, `--threads T` [4] worker threads, `--requests R` [8]
//! invokes per instance, `--fuel F` [1000000] per-checkout fuel budget.

use std::env;
use std::fmt::Write as _;
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use cage::{Engine, HostProfile, InstancePre, Pool, PoolMetrics, Value, Variant};

/// The request handler every tenant runs: allocator churn plus a memory
/// sweep, so cold instantiation, invoke and dirty-page reset all have
/// real work to do.
const HANDLER: &str = r#"
    long handle(long req) {
        long n = 16 + (req % 16);
        long* buf = (long*)malloc(n * 8);
        long acc = 0;
        for (long i = 0; i < n; i++) {
            buf[i] = req * 31 + i;
        }
        for (long i = 0; i < n; i++) {
            acc = acc + buf[i];
        }
        free((char*)buf);
        return acc;
    }
"#;

struct WorkerReport {
    latencies_ns: Vec<u64>,
    instantiate_secs: f64,
    churn_secs: f64,
    metrics: PoolMetrics,
}

/// One worker: fill a pool with `instances` live instances, serve
/// `requests` rounds across them, then recycle every slot once (the
/// steady-state path: release + dirty-page-reset checkout).
fn worker(
    pre: Arc<InstancePre>,
    instances: usize,
    requests: usize,
    fuel: Option<u64>,
) -> WorkerReport {
    let mut pool = Pool::new(pre);
    pool.set_fuel_budget(fuel);

    let t = Instant::now();
    let mut held = Vec::with_capacity(instances);
    for _ in 0..instances {
        held.push(pool.checkout().expect("cold checkout"));
    }
    let instantiate_secs = t.elapsed().as_secs_f64();

    let mut latencies_ns = Vec::with_capacity(instances * requests);
    for round in 0..requests {
        for (i, inst) in held.iter().enumerate() {
            let req = (round * instances + i) as i64;
            let t = Instant::now();
            let out = pool
                .invoke(inst, "handle", &[Value::I64(req)])
                .expect("handler runs");
            latencies_ns.push(t.elapsed().as_nanos() as u64);
            std::hint::black_box(out);
        }
    }

    let t = Instant::now();
    for inst in held.drain(..) {
        pool.release(inst);
    }
    let mut recycled = Vec::with_capacity(instances);
    for _ in 0..instances {
        recycled.push(pool.checkout().expect("recycled checkout"));
    }
    let churn_secs = t.elapsed().as_secs_f64();
    assert_eq!(
        pool.capacity(),
        instances,
        "churn must recycle slots, not grow the pool"
    );
    for (i, inst) in recycled.iter().enumerate() {
        let out = pool
            .invoke(inst, "handle", &[Value::I64(i as i64)])
            .expect("recycled instance serves");
        std::hint::black_box(out);
    }
    for inst in recycled {
        pool.release(inst);
    }

    WorkerReport {
        latencies_ns,
        instantiate_secs,
        churn_secs,
        metrics: pool.metrics(),
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    let mut instances: usize = 1024;
    let mut threads: usize = 4;
    let mut requests: usize = 8;
    let mut fuel: u64 = 1_000_000;
    let mut args = env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
                .parse::<u64>()
                .unwrap_or_else(|e| panic!("{flag}: {e}"))
        };
        match flag.as_str() {
            "--instances" => instances = value("--instances") as usize,
            "--threads" => threads = value("--threads") as usize,
            "--requests" => requests = value("--requests") as usize,
            "--fuel" => fuel = value("--fuel"),
            other => panic!("unknown flag {other}"),
        }
    }
    assert!(
        threads >= 1 && instances >= threads,
        "need ≥ 1 instance per thread"
    );

    // CagePtrAuth: hardened (pointer auth + W64) with no MTE sandbox-tag
    // cap, so thousands of tenants fit in one store per worker.
    let variant = Variant::CagePtrAuth;
    let engine = Engine::new(variant);
    let artifact = engine.compile(HANDLER).expect("handler compiles");
    let pre = Arc::new(
        engine
            .instance_pre(&artifact, HostProfile::Libc)
            .expect("template builds"),
    );

    let wall = Instant::now();
    let reports: Vec<WorkerReport> = thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                // Spread the remainder over the first workers.
                let share = instances / threads + usize::from(w < instances % threads);
                let pre = Arc::clone(&pre);
                scope.spawn(move || worker(pre, share, requests, Some(fuel)))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect()
    });
    let wall_secs = wall.elapsed().as_secs_f64();

    let mut totals = PoolMetrics::default();
    let mut latencies: Vec<u64> = Vec::new();
    let mut instantiate_secs: f64 = 0.0;
    let mut churn_secs: f64 = 0.0;
    for r in &reports {
        totals.merge(&r.metrics);
        latencies.extend_from_slice(&r.latencies_ns);
        // Workers run concurrently: wall-clock is the slowest worker.
        instantiate_secs = instantiate_secs.max(r.instantiate_secs);
        churn_secs = churn_secs.max(r.churn_secs);
    }
    latencies.sort_unstable();
    let (p50, p90, p99) = (
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.90),
        percentile(&latencies, 0.99),
    );
    let max_ns = latencies.last().copied().unwrap_or(0);
    let instantiations_per_sec = instances as f64 / instantiate_secs;
    let resets_per_sec = instances as f64 / churn_secs;

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema\": \"cage-bench-serve/1\",");
    let _ = writeln!(json, "  \"variant\": \"{}\",", variant.label());
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"instances\": {instances},");
    let _ = writeln!(json, "  \"requests_per_instance\": {requests},");
    let _ = writeln!(json, "  \"fuel_budget\": {fuel},");
    let _ = writeln!(json, "  \"wall_secs\": {wall_secs:.6},");
    let _ = writeln!(
        json,
        "  \"instantiate\": {{\"count\": {instances}, \"secs\": {instantiate_secs:.6}, \
         \"per_sec\": {instantiations_per_sec:.1}}},"
    );
    let _ = writeln!(
        json,
        "  \"recycle\": {{\"count\": {instances}, \"secs\": {churn_secs:.6}, \
         \"per_sec\": {resets_per_sec:.1}}},"
    );
    let _ = writeln!(
        json,
        "  \"invoke_latency_ns\": {{\"count\": {}, \"p50\": {p50}, \"p90\": {p90}, \
         \"p99\": {p99}, \"max\": {max_ns}}},",
        latencies.len()
    );
    let _ = writeln!(
        json,
        "  \"pool\": {{\"instantiations\": {}, \"resets\": {}, \"invocations\": {}, \
         \"instr_count\": {}, \"fuel_consumed\": {}, \"cycles\": {:.1}}}",
        totals.instantiations,
        totals.resets,
        totals.invocations,
        totals.instr_count,
        totals.fuel_consumed,
        totals.cycles
    );
    json.push_str("}\n");

    let path = cage_bench::write_results("bench_serve.json", &json);
    println!("wrote {}", path.display());
    println!(
        "{instances} instances x {threads} threads ({} invokes) in {wall_secs:.2}s",
        latencies.len()
    );
    println!("instantiate: {instantiations_per_sec:>10.0} /s");
    println!("recycle:     {resets_per_sec:>10.0} /s");
    println!("invoke p50/p90/p99: {p50} / {p90} / {p99} ns");
}
