//! The full toolchain on real C sources: compile → optimise → harden →
//! lower → validate → execute.

use cage_cc::compile;
use cage_engine::{ExecConfig, Imports, InternalSafety, Store, Trap, Value};
use cage_ir::passes::{run_pipeline, HardenConfig};
use cage_ir::{lower, LowerOptions};

fn build_and_run(
    source: &str,
    harden: HardenConfig,
    config: ExecConfig,
    entry: &str,
    args: &[Value],
) -> Result<Vec<Value>, Trap> {
    let mut ir = compile(source).expect("compiles");
    run_pipeline(&mut ir, harden);
    let lowered = lower(&ir, &LowerOptions::default()).expect("lowers");
    cage_wasm::validate(&lowered.module).expect("validates");
    let mut store = Store::new(config);
    let h = store.instantiate(&lowered.module, &Imports::new()).unwrap();
    store.invoke(h, entry, args)
}

#[test]
fn iterative_factorial() {
    let src = r#"
        long fact(long n) {
            long acc = 1;
            while (n > 1) {
                acc = acc * n;
                n = n - 1;
            }
            return acc;
        }
    "#;
    let out = build_and_run(
        src,
        HardenConfig::none(),
        ExecConfig::default(),
        "fact",
        &[Value::I64(12)],
    )
    .unwrap();
    assert_eq!(out, vec![Value::I64(479_001_600)]);
}

#[test]
fn recursive_fib_with_ifs() {
    let src = r#"
        long fib(long n) {
            if (n < 2) return n;
            return fib(n - 1) + fib(n - 2);
        }
    "#;
    let out = build_and_run(
        src,
        HardenConfig::none(),
        ExecConfig::default(),
        "fib",
        &[Value::I64(15)],
    )
    .unwrap();
    assert_eq!(out, vec![Value::I64(610)]);
}

#[test]
fn for_loops_arrays_and_doubles() {
    let src = r#"
        double dot(long n) {
            double a[32];
            double b[32];
            for (long i = 0; i < n; i++) {
                a[i] = (double)i;
                b[i] = 2.0;
            }
            double sum = 0.0;
            for (long i = 0; i < n; i++) {
                sum += a[i] * b[i];
            }
            return sum;
        }
    "#;
    let out = build_and_run(
        src,
        HardenConfig::none(),
        ExecConfig::default(),
        "dot",
        &[Value::I64(10)],
    )
    .unwrap();
    assert_eq!(out, vec![Value::F64(90.0)]);
}

#[test]
fn hardened_stack_overflow_is_caught() {
    // The paper's core claim: an unmodified buggy C program, compiled with
    // the Cage toolchain, traps instead of silently corrupting memory.
    let src = r#"
        long poke(long idx) {
            long buf[2];
            buf[idx] = 65;
            return buf[0];
        }
    "#;
    // Baseline: out-of-bounds write inside the frame goes unnoticed.
    let baseline = build_and_run(
        src,
        HardenConfig::none(),
        ExecConfig::default(),
        "poke",
        &[Value::I64(5)],
    );
    assert!(baseline.is_ok(), "baseline misses the overflow");
    // Cage: caught by MTE.
    let config = ExecConfig {
        internal: InternalSafety::Mte,
        ..ExecConfig::default()
    };
    let err = build_and_run(
        src,
        HardenConfig {
            stack_safety: true,
            ptr_auth: false,
        },
        config,
        "poke",
        &[Value::I64(5)],
    )
    .unwrap_err();
    assert!(err.is_memory_safety_violation(), "{err}");
}

#[test]
fn listing1_vtable_overflow() {
    // Listing 1 from the paper: strcpy-style overflow into an adjacent
    // vtable redirects an indirect call. Modelled with a manual copy loop
    // (identical memory behaviour to strcpy).
    let src = r#"
        long hits_f;
        long hits_g;
        void foo() { hits_f = hits_f + 1; }
        void bar() { hits_g = hits_g + 1; }

        struct VTable {
            void (*f)();
            void (*g)();
        };

        long vulnerable(long overflow, long payload) {
            struct VTable vtable = {.f = foo, .g = bar};
            long buf[2];
            long i = 0;
            while (i < 2 + overflow) {
                buf[i] = payload;
                i = i + 1;
            }
            vtable.f();
            return hits_f * 1000 + hits_g;
        }
    "#;
    // Hardened + MTE: the overflow into the vtable slot traps before the
    // indirect call can be redirected.
    let config = ExecConfig {
        internal: InternalSafety::Mte,
        pointer_auth: true,
        ..ExecConfig::default()
    };
    let err = build_and_run(
        src,
        HardenConfig::full(),
        config,
        "vulnerable",
        &[Value::I64(2), Value::I64(0)],
    )
    .unwrap_err();
    assert!(err.is_memory_safety_violation(), "{err}");
    // Well-behaved input works under full hardening.
    let ok = build_and_run(
        src,
        HardenConfig::full(),
        config,
        "vulnerable",
        &[Value::I64(0), Value::I64(7)],
    )
    .unwrap();
    assert_eq!(ok, vec![Value::I64(1000)], "foo called exactly once");
}

#[test]
fn function_pointer_dispatch() {
    let src = r#"
        long double_it(long x) { return x * 2; }
        long square_it(long x) { return x * x; }

        long apply(long which, long x) {
            long (*fp)(long);
            if (which) {
                fp = double_it;
            } else {
                fp = square_it;
            }
            return fp(x);
        }
    "#;
    for harden in [HardenConfig::none(), HardenConfig::full()] {
        let config = ExecConfig {
            pointer_auth: harden.ptr_auth,
            ..ExecConfig::default()
        };
        let out = build_and_run(
            src,
            harden,
            config,
            "apply",
            &[Value::I64(1), Value::I64(21)],
        )
        .unwrap();
        assert_eq!(out, vec![Value::I64(42)]);
        let out = build_and_run(
            src,
            harden,
            config,
            "apply",
            &[Value::I64(0), Value::I64(6)],
        )
        .unwrap();
        assert_eq!(out, vec![Value::I64(36)]);
    }
}

#[test]
fn globals_strings_and_pointer_walk() {
    let src = r#"
        long counter = 10;

        long strlen_local(char* s) {
            long n = 0;
            while (*s) {
                n = n + 1;
                s = s + 1;
            }
            return n;
        }

        long run() {
            char* msg = "hello cage";
            counter = counter + strlen_local(msg);
            return counter;
        }
    "#;
    let out = build_and_run(src, HardenConfig::none(), ExecConfig::default(), "run", &[]).unwrap();
    assert_eq!(out, vec![Value::I64(20)]);
}

#[test]
fn structs_members_and_arrow() {
    let src = r#"
        struct Point { long x; long y; };

        long manhattan(long ax, long ay, long bx, long by) {
            struct Point a;
            struct Point b;
            a.x = ax; a.y = ay;
            b.x = bx; b.y = by;
            struct Point* pa = &a;
            long dx = pa->x - b.x;
            long dy = pa->y - b.y;
            if (dx < 0) dx = -dx;
            if (dy < 0) dy = -dy;
            return dx + dy;
        }
    "#;
    let out = build_and_run(
        src,
        HardenConfig::none(),
        ExecConfig::default(),
        "manhattan",
        &[Value::I64(1), Value::I64(2), Value::I64(4), Value::I64(6)],
    )
    .unwrap();
    assert_eq!(out, vec![Value::I64(7)]);
}

#[test]
fn break_continue_and_logical_ops() {
    let src = r#"
        long count(long n) {
            long c = 0;
            for (long i = 0; i < 1000; i++) {
                if (i >= n) break;
                if (i % 3 == 0 || i % 5 == 0) continue;
                if (i % 2 == 1 && i > 2) c += 2;
                else c += 1;
            }
            return c;
        }
    "#;
    // i in 0..10, skipping multiples of 3 or 5 (0,3,5,6,9):
    // remaining 1,2,4,7,8 -> odd&&>2: 7 (+2); 1 is odd but not >2 (+1);
    // evens 2,4,8 (+1 each). total = 2 + 1 + 3 = 6.
    let out = build_and_run(
        src,
        HardenConfig::none(),
        ExecConfig::default(),
        "count",
        &[Value::I64(10)],
    )
    .unwrap();
    assert_eq!(out, vec![Value::I64(6)]);
}

#[test]
fn custom_allocator_with_builtins() {
    // §4.1: "For applications using their own allocator, we expose Cage's
    // memory safety primitives to C."
    let src = r#"
        char arena[256];
        long next;

        char* my_alloc(long size) {
            long aligned = (size + 15) / 16 * 16;
            char* p = &arena[0] + next;
            next = next + aligned;
            return __builtin_segment_new(p, aligned);
        }

        long use_after_free_demo(long do_uaf) {
            char* p = my_alloc(32);
            p[0] = 42;
            long v = p[0];
            __builtin_segment_free(p, 32);
            if (do_uaf) {
                v = p[0];
            }
            return v;
        }
    "#;
    let config = ExecConfig {
        internal: InternalSafety::Mte,
        ..ExecConfig::default()
    };
    // Normal path works.
    let out = build_and_run(
        src,
        HardenConfig::none(),
        config,
        "use_after_free_demo",
        &[Value::I64(0)],
    )
    .unwrap();
    assert_eq!(out, vec![Value::I64(42)]);
    // UAF through the custom allocator is caught.
    let err = build_and_run(
        src,
        HardenConfig::none(),
        config,
        "use_after_free_demo",
        &[Value::I64(1)],
    )
    .unwrap_err();
    assert!(err.is_memory_safety_violation(), "{err}");
}

#[test]
fn char_arithmetic_and_casts() {
    let src = r#"
        long sum_digits(long n) {
            char buf[32];
            long len = 0;
            while (n > 0) {
                buf[len] = (char)(n % 10) + '0';
                n = n / 10;
                len++;
            }
            long s = 0;
            for (long i = 0; i < len; i++) {
                s += buf[i] - '0';
            }
            return s;
        }
    "#;
    let out = build_and_run(
        src,
        HardenConfig::none(),
        ExecConfig::default(),
        "sum_digits",
        &[Value::I64(12_345)],
    )
    .unwrap();
    assert_eq!(out, vec![Value::I64(15)]);
}

#[test]
fn hardened_results_match_baseline_results() {
    // Correct programs compute identical results under every configuration
    // (the "unmodified applications" property).
    let src = r#"
        long kernel(long n) {
            double acc[8];
            for (long i = 0; i < 8; i++) acc[i] = 0.0;
            for (long i = 0; i < n; i++) {
                acc[i % 8] += (double)(i * i % 17);
            }
            double total = 0.0;
            for (long i = 0; i < 8; i++) total += acc[i];
            return (long)total;
        }
    "#;
    let baseline = build_and_run(
        src,
        HardenConfig::none(),
        ExecConfig::default(),
        "kernel",
        &[Value::I64(100)],
    )
    .unwrap();
    let hardened = build_and_run(
        src,
        HardenConfig::full(),
        ExecConfig {
            internal: InternalSafety::Mte,
            pointer_auth: true,
            bounds: cage_engine::BoundsCheckStrategy::MteSandbox,
            ..ExecConfig::default()
        },
        "kernel",
        &[Value::I64(100)],
    )
    .unwrap();
    assert_eq!(baseline, hardened);
}
