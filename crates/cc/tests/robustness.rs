//! Frontend robustness: hostile, malformed, and oversized C input must
//! produce a structured `CompileError`, never a panic or runaway work.

use cage_cc::{compile, compile_with, CompileError};
use cage_wasm::{CompileFuel, CompileLimits};

fn limited(source: &str, limits: &CompileLimits) -> Result<cage_ir::IrModule, CompileError> {
    let fuel = limits.fuel();
    compile_with(source, limits, &fuel)
}

#[test]
fn empty_source_is_a_syntax_error_not_a_panic() {
    // An empty translation unit has no functions; that is fine.
    let ir = compile("").expect("empty source compiles to an empty module");
    assert!(ir.functions.is_empty());
}

#[test]
fn garbage_bytes_error_with_a_line_number() {
    let err = compile("int f() { return @; }").unwrap_err();
    assert!(err.to_string().contains("line 1"), "{err}");
    assert!(err.limit().is_none());
}

#[test]
fn source_size_limit_is_enforced_before_lexing() {
    let big = "int x;".repeat(100);
    let limits = CompileLimits {
        max_source_bytes: 64,
        ..CompileLimits::generous()
    };
    let err = limited(&big, &limits).unwrap_err();
    let lim = err.limit().expect("limit error");
    assert_eq!(lim.what, "source bytes");
    assert_eq!(lim.limit, 64);
}

#[test]
fn deep_parenthesis_nesting_is_rejected_not_overflowed() {
    // 100k open-parens would overflow the stack under naive recursive
    // descent; the parser's depth guard must reject it first.
    let mut src = String::from("int f() { return ");
    src.push_str(&"(".repeat(100_000));
    src.push('1');
    src.push_str(&")".repeat(100_000));
    src.push_str("; }");
    let err = compile(&src).unwrap_err();
    let lim = err.limit().expect("limit error, got: {err}");
    assert_eq!(lim.what, "parser nesting depth");
}

#[test]
fn deep_nesting_within_limits_still_compiles() {
    // Each paren level costs two depth units (assignment + unary), so 40
    // levels sits well inside the 96-unit stack-safe cap.
    let mut src = String::from("int f() { return ");
    src.push_str(&"(".repeat(40));
    src.push('1');
    src.push_str(&")".repeat(40));
    src.push_str("; }");
    compile(&src).expect("40 levels is comfortably within bounds");
}

#[test]
fn assignment_chain_is_bounded() {
    // `a = a = a = ...` recurses through parse_assignment.
    let mut src = String::from("int f() { int a; a");
    for _ in 0..100_000 {
        src.push_str(" = a");
    }
    src.push_str("; return a; }");
    let err = compile(&src).unwrap_err();
    assert_eq!(
        err.limit().expect("limit error").what,
        "parser nesting depth"
    );
}

#[test]
fn unary_operator_pileup_is_bounded() {
    let mut src = String::from("int f() { return ");
    src.push_str(&"!".repeat(100_000));
    src.push_str("1; }");
    let err = compile(&src).unwrap_err();
    assert_eq!(
        err.limit().expect("limit error").what,
        "parser nesting depth"
    );
}

#[test]
fn function_count_limit() {
    let mut src = String::new();
    for i in 0..20 {
        src.push_str(&format!("int f{i}() {{ return {i}; }}\n"));
    }
    let limits = CompileLimits {
        max_functions: 8,
        ..CompileLimits::generous()
    };
    let err = limited(&src, &limits).unwrap_err();
    assert_eq!(err.limit().expect("limit error").what, "functions");
}

#[test]
fn huge_global_array_is_rejected_by_global_byte_limit() {
    // 1 << 40 elements of 8-byte longs: the saturating size computation
    // must carry this to the limit check instead of wrapping.
    let src = "long blob[1099511627776]; int f() { return 0; }";
    let err = limited(src, &CompileLimits::generous()).unwrap_err();
    let lim = err.limit().expect("limit error");
    assert_eq!(lim.what, "global bytes");
}

#[test]
fn overflowing_nested_array_saturates_and_is_rejected() {
    // Each dimension alone fits in u64; the product does not.
    let src = "char blob[4294967295][4294967295]; int f() { return 0; }";
    let err = limited(src, &CompileLimits::generous()).unwrap_err();
    assert_eq!(err.limit().expect("limit error").what, "global bytes");
}

#[test]
fn compile_fuel_exhaustion_is_reported() {
    let limits = CompileLimits::generous();
    let fuel = CompileFuel::new(10);
    let err = compile_with("int f() { return 1 + 2 + 3; }", &limits, &fuel).unwrap_err();
    assert_eq!(err.limit().expect("limit error").what, "compile fuel");
}

#[test]
fn builtin_arity_mismatch_is_an_error() {
    let err = compile("int f() { __builtin_segment_new(1); return 0; }").unwrap_err();
    assert!(err.to_string().contains("expects 2 argument"), "{err}");
    let err = compile("long f(long p) { return __builtin_pointer_sign(p, 1, 2); }").unwrap_err();
    assert!(err.to_string().contains("expects 1 argument"), "{err}");
}

#[test]
fn struct_value_in_scalar_position_is_an_error() {
    // Loading a whole struct rvalue where a scalar is required must be a
    // diagnostic, not an unreachable!().
    let src = r"
        struct S { int a; int b; };
        int f() {
            struct S s;
            struct S t;
            s = t;
            return 0;
        }
    ";
    let err = compile(src).unwrap_err();
    assert!(
        err.to_string().contains("non-scalar"),
        "expected non-scalar diagnostic, got: {err}"
    );
}

#[test]
fn void_pointer_dereference_is_an_error() {
    let src = "int f(void *p) { return *p; }";
    let err = compile(src).unwrap_err();
    assert!(err.to_string().contains("non-scalar"), "{err}");
}

#[test]
fn valid_program_is_unaffected_by_generous_limits() {
    let src = r"
        long dot(long *a, long *b, int n) {
            long s = 0;
            for (int i = 0; i < n; i++) s += a[i] * b[i];
            return s;
        }
    ";
    let unlimited = compile(src).expect("unlimited compile");
    let limits = CompileLimits::generous();
    let fuel = limits.fuel();
    let bounded = compile_with(src, &limits, &fuel).expect("bounded compile");
    assert_eq!(unlimited.functions.len(), bounded.functions.len());
    assert!(fuel.consumed() > 0, "fuel metering should see real work");
}

#[test]
fn non_ascii_source_does_not_panic() {
    // Multi-byte UTF-8 must never split a char boundary in the lexer.
    let err = compile("int f() { return \u{1F980}; }").unwrap_err();
    assert!(err.limit().is_none());
    let _ = compile("// café ☕\nint f() { return 1; }").expect("unicode in comments is fine");
}
