//! Compile errors.

use std::fmt;

/// A compilation failure with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// 1-based source line.
    pub line: u32,
    /// Description.
    pub message: String,
    limit: Option<cage_wasm::LimitError>,
}

impl CompileError {
    /// Creates an error at `line`.
    #[must_use]
    pub fn new(line: u32, message: impl Into<String>) -> Self {
        CompileError {
            line,
            message: message.into(),
            limit: None,
        }
    }

    /// Wraps a compile-limit violation (no meaningful source line — the
    /// limit is a property of the whole input).
    #[must_use]
    pub fn from_limit(e: cage_wasm::LimitError) -> Self {
        CompileError {
            line: 0,
            message: e.to_string(),
            limit: Some(e),
        }
    }

    /// The limit violation behind this error, when it is one — lets
    /// embedders distinguish "program too big" from "program malformed".
    #[must_use]
    pub fn limit(&self) -> Option<&cage_wasm::LimitError> {
        self.limit.as_ref()
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            f.write_str(&self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for CompileError {}

impl From<cage_wasm::LimitError> for CompileError {
    fn from(e: cage_wasm::LimitError) -> Self {
        CompileError::from_limit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let e = CompileError::new(42, "unexpected token");
        assert_eq!(e.to_string(), "line 42: unexpected token");
    }

    #[test]
    fn limit_errors_carry_the_violation() {
        let e = CompileError::from_limit(cage_wasm::LimitError {
            what: "source bytes",
            limit: 10,
            actual: 11,
        });
        assert_eq!(e.limit().unwrap().what, "source bytes");
        assert_eq!(
            e.to_string(),
            "compile limit exceeded: source bytes 11 > 10"
        );
    }
}
