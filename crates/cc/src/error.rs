//! Compile errors.

use std::fmt;

/// A compilation failure with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// 1-based source line.
    pub line: u32,
    /// Description.
    pub message: String,
}

impl CompileError {
    /// Creates an error at `line`.
    #[must_use]
    pub fn new(line: u32, message: impl Into<String>) -> Self {
        CompileError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let e = CompileError::new(42, "unexpected token");
        assert_eq!(e.to_string(), "line 42: unexpected token");
    }
}
