//! C types of the subset.

use std::fmt;

/// A function signature (for function pointers and declarations).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FuncSig {
    /// Parameter types.
    pub params: Vec<CType>,
    /// Return type.
    pub ret: CType,
}

/// A C type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CType {
    /// `void` (function returns only).
    Void,
    /// `char`: 1 byte, signed.
    Char,
    /// `int`: 4 bytes.
    Int,
    /// `long` / `long long`: 8 bytes.
    Long,
    /// `double`: 8 bytes.
    Double,
    /// Pointer.
    Ptr(Box<CType>),
    /// Fixed-size array.
    Array(Box<CType>, u64),
    /// Struct by index into the program's struct table.
    Struct(usize),
    /// Function pointer.
    FuncPtr(Box<FuncSig>),
}

impl CType {
    /// Pointer to `self`.
    #[must_use]
    pub fn ptr_to(self) -> CType {
        CType::Ptr(Box::new(self))
    }

    /// Whether this is an integer type.
    #[must_use]
    pub fn is_integer(&self) -> bool {
        matches!(self, CType::Char | CType::Int | CType::Long)
    }

    /// Whether this is an arithmetic (integer or floating) type.
    #[must_use]
    pub fn is_arithmetic(&self) -> bool {
        self.is_integer() || *self == CType::Double
    }

    /// Whether this is a pointer (data or function).
    #[must_use]
    pub fn is_pointer(&self) -> bool {
        matches!(self, CType::Ptr(_) | CType::FuncPtr(_))
    }

    /// The pointee of a data pointer.
    #[must_use]
    pub fn pointee(&self) -> Option<&CType> {
        match self {
            CType::Ptr(p) => Some(p),
            _ => None,
        }
    }

    /// Array/pointer element type.
    #[must_use]
    pub fn element(&self) -> Option<&CType> {
        match self {
            CType::Ptr(p) => Some(p),
            CType::Array(e, _) => Some(e),
            _ => None,
        }
    }

    /// Array-to-pointer decay.
    #[must_use]
    pub fn decayed(&self) -> CType {
        match self {
            CType::Array(e, _) => CType::Ptr(e.clone()),
            other => other.clone(),
        }
    }
}

/// A struct definition (layout computed by [`StructTable`]).
#[derive(Debug, Clone, PartialEq)]
pub struct StructDef {
    /// Tag name.
    pub name: String,
    /// Field names and types, in declaration order.
    pub fields: Vec<(String, CType)>,
}

/// Struct layouts for size/offset queries.
#[derive(Debug, Clone, Default)]
pub struct StructTable {
    /// Definitions, indexed by `CType::Struct` ids.
    pub defs: Vec<StructDef>,
}

impl StructTable {
    /// Size of `ty` in bytes, given pointer width `ptr_bytes`.
    ///
    /// The reproduction compiles the same source for wasm64 and wasm32;
    /// sizes follow the target (`sizeof(void*)` is 8 or 4).
    #[must_use]
    pub fn size_of(&self, ty: &CType, ptr_bytes: u64) -> u64 {
        // Sizes saturate instead of overflowing: a hostile declaration
        // like `char a[1<<40][1<<40]` yields u64::MAX, which every
        // consumer (global-byte limits, memory layout) rejects as too
        // big rather than silently wrapping to something small.
        match ty {
            CType::Void => 0,
            CType::Char => 1,
            CType::Int => 4,
            CType::Long | CType::Double => 8,
            CType::Ptr(_) | CType::FuncPtr(_) => ptr_bytes,
            CType::Array(e, n) => self.size_of(e, ptr_bytes).saturating_mul(*n),
            CType::Struct(i) => {
                let mut size = 0u64;
                for (_, fty) in &self.defs[*i].fields {
                    let align = self.align_of(fty, ptr_bytes);
                    size = size.div_ceil(align).saturating_mul(align);
                    size = size.saturating_add(self.size_of(fty, ptr_bytes));
                }
                let align = self.align_of(ty, ptr_bytes);
                size.div_ceil(align).saturating_mul(align)
            }
        }
    }

    /// Alignment of `ty` in bytes.
    #[must_use]
    pub fn align_of(&self, ty: &CType, ptr_bytes: u64) -> u64 {
        match ty {
            CType::Void => 1,
            CType::Char => 1,
            CType::Int => 4,
            CType::Long | CType::Double => 8,
            CType::Ptr(_) | CType::FuncPtr(_) => ptr_bytes,
            CType::Array(e, _) => self.align_of(e, ptr_bytes),
            CType::Struct(i) => self.defs[*i]
                .fields
                .iter()
                .map(|(_, t)| self.align_of(t, ptr_bytes))
                .max()
                .unwrap_or(1),
        }
    }

    /// Byte offset and type of field `name` in struct `id`.
    #[must_use]
    pub fn field(&self, id: usize, name: &str, ptr_bytes: u64) -> Option<(u64, CType)> {
        let mut offset = 0u64;
        for (fname, fty) in &self.defs[id].fields {
            let align = self.align_of(fty, ptr_bytes);
            offset = offset.div_ceil(align).saturating_mul(align);
            if fname == name {
                return Some((offset, fty.clone()));
            }
            offset = offset.saturating_add(self.size_of(fty, ptr_bytes));
        }
        None
    }

    /// Looks up a struct id by tag name.
    #[must_use]
    pub fn id_of(&self, name: &str) -> Option<usize> {
        self.defs.iter().position(|d| d.name == name)
    }
}

impl fmt::Display for CType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CType::Void => f.write_str("void"),
            CType::Char => f.write_str("char"),
            CType::Int => f.write_str("int"),
            CType::Long => f.write_str("long"),
            CType::Double => f.write_str("double"),
            CType::Ptr(p) => write!(f, "{p}*"),
            CType::Array(e, n) => write!(f, "{e}[{n}]"),
            CType::Struct(i) => write!(f, "struct#{i}"),
            CType::FuncPtr(sig) => write!(f, "{}(*)(…)", sig.ret),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_with_vtable() -> StructTable {
        StructTable {
            defs: vec![StructDef {
                name: "VTable".into(),
                fields: vec![
                    (
                        "f".into(),
                        CType::FuncPtr(Box::new(FuncSig {
                            params: vec![],
                            ret: CType::Void,
                        })),
                    ),
                    (
                        "g".into(),
                        CType::FuncPtr(Box::new(FuncSig {
                            params: vec![],
                            ret: CType::Void,
                        })),
                    ),
                    ("len".into(), CType::Int),
                ],
            }],
        }
    }

    #[test]
    fn scalar_sizes() {
        let t = StructTable::default();
        assert_eq!(t.size_of(&CType::Char, 8), 1);
        assert_eq!(t.size_of(&CType::Int, 8), 4);
        assert_eq!(t.size_of(&CType::Long, 8), 8);
        assert_eq!(t.size_of(&CType::Double, 8), 8);
        assert_eq!(t.size_of(&CType::Int.ptr_to(), 8), 8);
        assert_eq!(t.size_of(&CType::Int.ptr_to(), 4), 4);
    }

    #[test]
    fn array_sizes_nest() {
        let t = StructTable::default();
        let a = CType::Array(Box::new(CType::Array(Box::new(CType::Double), 4)), 3);
        assert_eq!(t.size_of(&a, 8), 96);
        assert_eq!(t.align_of(&a, 8), 8);
    }

    #[test]
    fn struct_layout_with_padding() {
        let t = table_with_vtable();
        let (off_f, _) = t.field(0, "f", 8).unwrap();
        let (off_g, _) = t.field(0, "g", 8).unwrap();
        let (off_len, ty) = t.field(0, "len", 8).unwrap();
        assert_eq!(off_f, 0);
        assert_eq!(off_g, 8);
        assert_eq!(off_len, 16);
        assert_eq!(ty, CType::Int);
        // Size padded to 8-alignment: 16 + 4 -> 24.
        assert_eq!(t.size_of(&CType::Struct(0), 8), 24);
        assert!(t.field(0, "missing", 8).is_none());
    }

    #[test]
    fn decay_and_predicates() {
        let arr = CType::Array(Box::new(CType::Int), 4);
        assert_eq!(arr.decayed(), CType::Int.ptr_to());
        assert!(CType::Long.is_integer());
        assert!(CType::Double.is_arithmetic());
        assert!(!CType::Double.is_integer());
        assert!(CType::Char.ptr_to().is_pointer());
    }
}
