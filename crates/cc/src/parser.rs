//! Recursive-descent parser with C operator precedence.
//!
//! Recursion depth is explicitly bounded: every recursive choke point
//! (`parse_stmt`, `parse_assignment`, `parse_unary`) counts against
//! `CompileLimits::max_nesting_depth`, so hostile input like a megabyte
//! of `(((((…` or `a=a=a=…` is rejected with a structured error instead
//! of overflowing the host stack.

use crate::ast::{BinOpKind, Expr, ExprKind, FuncDef, GlobalDef, Program, Stmt, UnOpKind};
use crate::error::CompileError;
use crate::lexer::{lex_with, Token, TokenKind};
use crate::types::{CType, FuncSig, StructDef};

/// Parses a translation unit without resource bounds (trusted input).
///
/// # Errors
///
/// [`CompileError`] on malformed input.
pub fn parse(source: &str) -> Result<Program, CompileError> {
    // Even "unlimited" keeps the depth bound: recursion on untrusted
    // text must never be able to overflow the stack, and no legitimate
    // program nests expressions or statements thousands deep.
    let limits = cage_wasm::CompileLimits {
        max_nesting_depth: STACK_SAFE_DEPTH,
        ..cage_wasm::CompileLimits::unlimited()
    };
    parse_with(source, &limits, &limits.fuel())
}

/// Hard ceiling on parser recursion, applied even when the caller asks
/// for a larger `max_nesting_depth`. Recursive descent burns several
/// call frames per nesting level (~10 KiB/level in unoptimised builds),
/// so this is sized for the worst case to fit a 1 MiB thread stack with
/// room to spare. Real programs in the supported subset nest a handful
/// of levels deep; PolyBench tops out around ten.
const STACK_SAFE_DEPTH: usize = 96;

/// Parses a translation unit under explicit resource bounds.
///
/// # Errors
///
/// [`CompileError`] on malformed input or a busted limit (see
/// [`CompileError::limit`]).
pub fn parse_with(
    source: &str,
    limits: &cage_wasm::CompileLimits,
    fuel: &cage_wasm::CompileFuel,
) -> Result<Program, CompileError> {
    let tokens = lex_with(source, limits, fuel)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        program: Program::default(),
        depth: 0,
        max_depth: limits.max_nesting_depth.min(STACK_SAFE_DEPTH),
        fuel,
    };
    p.parse_program()?;
    Ok(p.program)
}

const TYPE_KEYWORDS: &[&str] = &["void", "char", "int", "long", "double", "struct"];
const IGNORED_QUALIFIERS: &[&str] = &[
    "static", "const", "register", "volatile", "inline", "unsigned", "signed",
];

struct Parser<'f> {
    tokens: Vec<Token>,
    pos: usize,
    program: Program,
    /// Current recursion depth across the guarded entry points.
    depth: usize,
    /// Bound on `depth`; busting it is a limit error, not a crash.
    max_depth: usize,
    fuel: &'f cage_wasm::CompileFuel,
}

impl Parser<'_> {
    /// Enters one guarded recursion level; pair with [`Self::leave`].
    fn enter(&mut self) -> Result<(), CompileError> {
        self.fuel.charge(1).map_err(CompileError::from_limit)?;
        self.depth += 1;
        if self.depth > self.max_depth {
            return Err(CompileError::from_limit(cage_wasm::LimitError {
                what: "parser nesting depth",
                limit: self.max_depth as u64,
                actual: self.max_depth as u64 + 1,
            }));
        }
        Ok(())
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, n: usize) -> &TokenKind {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)].kind
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> CompileError {
        CompileError::new(self.line(), message)
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), TokenKind::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), CompileError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{p}`, found {:?}", self.peek())))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), TokenKind::Ident(s) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, CompileError> {
        match self.bump() {
            TokenKind::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn skip_qualifiers(&mut self) {
        loop {
            let is_qual = matches!(self.peek(), TokenKind::Ident(s) if IGNORED_QUALIFIERS.contains(&s.as_str()));
            if is_qual {
                self.bump();
            } else {
                return;
            }
        }
    }

    fn at_type(&self) -> bool {
        match self.peek() {
            TokenKind::Ident(s) => {
                TYPE_KEYWORDS.contains(&s.as_str()) || IGNORED_QUALIFIERS.contains(&s.as_str())
            }
            _ => false,
        }
    }

    fn parse_program(&mut self) -> Result<(), CompileError> {
        while !matches!(self.peek(), TokenKind::Eof) {
            self.skip_qualifiers();
            // struct definition?
            if matches!(self.peek(), TokenKind::Ident(s) if s == "struct")
                && matches!(self.peek_at(2), TokenKind::Punct("{"))
            {
                self.parse_struct_def()?;
                continue;
            }
            let ty = self.parse_type()?;
            let line = self.line();
            // Function-pointer global or named declarator.
            let (name, full_ty, is_funcptr_decl) = self.parse_declarator(ty)?;
            if !is_funcptr_decl && matches!(self.peek(), TokenKind::Punct("(")) {
                // Function definition / prototype.
                self.parse_function(name, full_ty, line)?;
            } else {
                let init = if self.eat_punct("=") {
                    Some(self.parse_assignment()?)
                } else {
                    None
                };
                self.expect_punct(";")?;
                self.program.globals.push(GlobalDef {
                    name,
                    ty: full_ty,
                    init,
                    line,
                });
            }
        }
        Ok(())
    }

    fn parse_struct_def(&mut self) -> Result<(), CompileError> {
        self.bump(); // struct
        let name = self.expect_ident()?;
        self.expect_punct("{")?;
        let mut fields = Vec::new();
        while !self.eat_punct("}") {
            self.skip_qualifiers();
            let base = self.parse_type()?;
            loop {
                let (fname, fty, _) = self.parse_declarator(base.clone())?;
                fields.push((fname, fty));
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct(";")?;
        }
        self.expect_punct(";")?;
        self.program.structs.defs.push(StructDef { name, fields });
        Ok(())
    }

    /// Parses a base type plus leading pointer stars.
    fn parse_type(&mut self) -> Result<CType, CompileError> {
        self.skip_qualifiers();
        let base = match self.bump() {
            TokenKind::Ident(s) => match s.as_str() {
                "void" => CType::Void,
                "char" => CType::Char,
                "int" => CType::Int,
                "long" => {
                    // Accept `long long` and `long int`.
                    self.eat_keyword("long");
                    self.eat_keyword("int");
                    CType::Long
                }
                "double" => CType::Double,
                "struct" => {
                    let tag = self.expect_ident()?;
                    let id = self
                        .program
                        .structs
                        .id_of(&tag)
                        .ok_or_else(|| self.err(format!("unknown struct `{tag}`")))?;
                    CType::Struct(id)
                }
                other => return Err(self.err(format!("expected type, found `{other}`"))),
            },
            other => return Err(self.err(format!("expected type, found {other:?}"))),
        };
        self.parse_pointers(base)
    }

    fn parse_pointers(&mut self, mut ty: CType) -> Result<CType, CompileError> {
        while self.eat_punct("*") {
            self.skip_qualifiers();
            ty = ty.ptr_to();
        }
        Ok(ty)
    }
}

// Rust requires the ? on parse_pointers’ recursion; keep signatures uniform.
impl Parser<'_> {
    /// Parses a declarator after the base type: `name`, `name[N]...`, or
    /// the function-pointer form `(*name)(params)`. Returns
    /// `(name, type, was_function_pointer)`.
    fn parse_declarator(&mut self, base: CType) -> Result<(String, CType, bool), CompileError> {
        if self.eat_punct("(") {
            self.expect_punct("*")?;
            let name = self.expect_ident()?;
            self.expect_punct(")")?;
            self.expect_punct("(")?;
            let params = self.parse_param_types()?;
            Ok((
                name,
                CType::FuncPtr(Box::new(FuncSig { params, ret: base })),
                true,
            ))
        } else {
            let name = self.expect_ident()?;
            let mut dims = Vec::new();
            while self.eat_punct("[") {
                let n = match self.bump() {
                    TokenKind::Int(v) if v > 0 => v as u64,
                    other => return Err(self.err(format!("expected array size, found {other:?}"))),
                };
                self.expect_punct("]")?;
                dims.push(n);
            }
            let mut ty = base;
            for n in dims.into_iter().rev() {
                ty = CType::Array(Box::new(ty), n);
            }
            Ok((name, ty, false))
        }
    }

    /// Parses `type, type, …)` for function-pointer signatures.
    fn parse_param_types(&mut self) -> Result<Vec<CType>, CompileError> {
        let mut params = Vec::new();
        if self.eat_punct(")") {
            return Ok(params);
        }
        loop {
            let ty = self.parse_type()?;
            if ty != CType::Void {
                // Optional parameter names in prototypes.
                if matches!(self.peek(), TokenKind::Ident(_)) && !self.at_type() {
                    self.bump();
                }
                params.push(ty);
            }
            if self.eat_punct(")") {
                return Ok(params);
            }
            self.expect_punct(",")?;
        }
    }

    fn parse_function(&mut self, name: String, ret: CType, line: u32) -> Result<(), CompileError> {
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.eat_punct(")") {
            loop {
                self.skip_qualifiers();
                let ty = self.parse_type()?;
                if ty == CType::Void && !matches!(self.peek(), TokenKind::Ident(_)) {
                    self.expect_punct(")")?;
                    break;
                }
                let (pname, pty, _) = self.parse_declarator(ty)?;
                params.push((pname, pty.decayed()));
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        let body = if self.eat_punct(";") {
            None
        } else {
            Some(self.parse_block()?)
        };
        self.program.funcs.push(FuncDef {
            name,
            ret,
            params,
            body,
            line,
        });
        Ok(())
    }

    fn parse_block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect_punct("{")?;
        let mut stmts = Vec::new();
        while !self.eat_punct("}") {
            if matches!(self.peek(), TokenKind::Eof) {
                return Err(self.err("unterminated block"));
            }
            stmts.push(self.parse_stmt()?);
        }
        Ok(stmts)
    }

    fn parse_stmt(&mut self) -> Result<Stmt, CompileError> {
        self.enter()?;
        let r = self.parse_stmt_inner();
        self.leave();
        r
    }

    #[allow(clippy::too_many_lines)]
    fn parse_stmt_inner(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        if self.at_type() {
            return self.parse_decl_stmt();
        }
        match self.peek() {
            TokenKind::Punct("{") => Ok(Stmt::Block(self.parse_block()?)),
            TokenKind::Ident(s) if s == "if" => {
                self.bump();
                self.expect_punct("(")?;
                let cond = self.parse_expr()?;
                self.expect_punct(")")?;
                let then = self.parse_stmt_as_block()?;
                let els = if self.eat_keyword("else") {
                    self.parse_stmt_as_block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If { cond, then, els })
            }
            TokenKind::Ident(s) if s == "while" => {
                self.bump();
                self.expect_punct("(")?;
                let cond = self.parse_expr()?;
                self.expect_punct(")")?;
                let body = self.parse_stmt_as_block()?;
                Ok(Stmt::While { cond, body })
            }
            TokenKind::Ident(s) if s == "for" => {
                self.bump();
                self.expect_punct("(")?;
                let init = if self.eat_punct(";") {
                    None
                } else if self.at_type() {
                    Some(Box::new(self.parse_decl_stmt()?))
                } else {
                    let e = self.parse_expr()?;
                    self.expect_punct(";")?;
                    Some(Box::new(Stmt::Expr(e)))
                };
                let cond = if matches!(self.peek(), TokenKind::Punct(";")) {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect_punct(";")?;
                let step = if matches!(self.peek(), TokenKind::Punct(")")) {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect_punct(")")?;
                let body = self.parse_stmt_as_block()?;
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                })
            }
            TokenKind::Ident(s) if s == "return" => {
                self.bump();
                let value = if matches!(self.peek(), TokenKind::Punct(";")) {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect_punct(";")?;
                Ok(Stmt::Return(value, line))
            }
            TokenKind::Ident(s) if s == "break" => {
                self.bump();
                self.expect_punct(";")?;
                Ok(Stmt::Break(line))
            }
            TokenKind::Ident(s) if s == "continue" => {
                self.bump();
                self.expect_punct(";")?;
                Ok(Stmt::Continue(line))
            }
            _ => {
                let e = self.parse_expr()?;
                self.expect_punct(";")?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    fn parse_stmt_as_block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        if matches!(self.peek(), TokenKind::Punct("{")) {
            self.parse_block()
        } else {
            Ok(vec![self.parse_stmt()?])
        }
    }

    fn parse_decl_stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        let base = self.parse_type()?;
        let (name, ty, _) = self.parse_declarator(base)?;
        let (init, brace_init) = if self.eat_punct("=") {
            if matches!(self.peek(), TokenKind::Punct("{")) {
                (None, Some(self.parse_brace_init()?))
            } else {
                (Some(self.parse_assignment()?), None)
            }
        } else {
            (None, None)
        };
        self.expect_punct(";")?;
        Ok(Stmt::Decl {
            name,
            ty,
            init,
            brace_init,
            line,
        })
    }

    fn parse_brace_init(&mut self) -> Result<Vec<(Option<String>, Expr)>, CompileError> {
        self.expect_punct("{")?;
        let mut items = Vec::new();
        if self.eat_punct("}") {
            return Ok(items);
        }
        loop {
            let field = if self.eat_punct(".") {
                let name = self.expect_ident()?;
                self.expect_punct("=")?;
                Some(name)
            } else {
                None
            };
            items.push((field, self.parse_assignment()?));
            if self.eat_punct("}") {
                return Ok(items);
            }
            self.expect_punct(",")?;
        }
    }

    // -- expressions ---------------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr, CompileError> {
        self.parse_assignment()
    }

    fn parse_assignment(&mut self) -> Result<Expr, CompileError> {
        self.enter()?;
        let r = self.parse_assignment_inner();
        self.leave();
        r
    }

    fn parse_assignment_inner(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        let lhs = self.parse_logical_or()?;
        let op = match self.peek() {
            TokenKind::Punct("=") => None,
            TokenKind::Punct("+=") => Some(BinOpKind::Add),
            TokenKind::Punct("-=") => Some(BinOpKind::Sub),
            TokenKind::Punct("*=") => Some(BinOpKind::Mul),
            TokenKind::Punct("/=") => Some(BinOpKind::Div),
            TokenKind::Punct("%=") => Some(BinOpKind::Rem),
            TokenKind::Punct("&=") => Some(BinOpKind::And),
            TokenKind::Punct("|=") => Some(BinOpKind::Or),
            TokenKind::Punct("^=") => Some(BinOpKind::Xor),
            TokenKind::Punct("<<=") => Some(BinOpKind::Shl),
            TokenKind::Punct(">>=") => Some(BinOpKind::Shr),
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.parse_assignment()?;
        Ok(Expr::new(
            ExprKind::Assign(op, Box::new(lhs), Box::new(rhs)),
            line,
        ))
    }

    fn parse_logical_or(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.parse_logical_and()?;
        while matches!(self.peek(), TokenKind::Punct("||")) {
            let line = self.line();
            self.bump();
            let rhs = self.parse_logical_and()?;
            lhs = Expr::new(ExprKind::LogOr(Box::new(lhs), Box::new(rhs)), line);
        }
        Ok(lhs)
    }

    fn parse_logical_and(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.parse_binary(0)?;
        while matches!(self.peek(), TokenKind::Punct("&&")) {
            let line = self.line();
            self.bump();
            let rhs = self.parse_binary(0)?;
            lhs = Expr::new(ExprKind::LogAnd(Box::new(lhs), Box::new(rhs)), line);
        }
        Ok(lhs)
    }

    /// Precedence-climbing over the non-short-circuit binary operators.
    fn parse_binary(&mut self, min_prec: u8) -> Result<Expr, CompileError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let (op, prec) = match self.peek() {
                TokenKind::Punct("|") => (BinOpKind::Or, 1),
                TokenKind::Punct("^") => (BinOpKind::Xor, 2),
                TokenKind::Punct("&") => (BinOpKind::And, 3),
                TokenKind::Punct("==") => (BinOpKind::Eq, 4),
                TokenKind::Punct("!=") => (BinOpKind::Ne, 4),
                TokenKind::Punct("<") => (BinOpKind::Lt, 5),
                TokenKind::Punct("<=") => (BinOpKind::Le, 5),
                TokenKind::Punct(">") => (BinOpKind::Gt, 5),
                TokenKind::Punct(">=") => (BinOpKind::Ge, 5),
                TokenKind::Punct("<<") => (BinOpKind::Shl, 6),
                TokenKind::Punct(">>") => (BinOpKind::Shr, 6),
                TokenKind::Punct("+") => (BinOpKind::Add, 7),
                TokenKind::Punct("-") => (BinOpKind::Sub, 7),
                TokenKind::Punct("*") => (BinOpKind::Mul, 8),
                TokenKind::Punct("/") => (BinOpKind::Div, 8),
                TokenKind::Punct("%") => (BinOpKind::Rem, 8),
                _ => return Ok(lhs),
            };
            if prec < min_prec {
                return Ok(lhs);
            }
            let line = self.line();
            self.bump();
            let rhs = self.parse_binary(prec + 1)?;
            lhs = Expr::new(ExprKind::Bin(op, Box::new(lhs), Box::new(rhs)), line);
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, CompileError> {
        self.enter()?;
        let r = self.parse_unary_inner();
        self.leave();
        r
    }

    fn parse_unary_inner(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        // Cast: "(" type ... ")" unary
        if matches!(self.peek(), TokenKind::Punct("("))
            && matches!(self.peek_at(1), TokenKind::Ident(s) if TYPE_KEYWORDS.contains(&s.as_str()))
        {
            self.bump();
            let ty = self.parse_type()?;
            self.expect_punct(")")?;
            let inner = self.parse_unary()?;
            return Ok(Expr::new(ExprKind::Cast(ty, Box::new(inner)), line));
        }
        match self.peek() {
            TokenKind::Punct("-") => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(Expr::new(ExprKind::Un(UnOpKind::Neg, Box::new(e)), line))
            }
            TokenKind::Punct("!") => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(Expr::new(ExprKind::Un(UnOpKind::Not, Box::new(e)), line))
            }
            TokenKind::Punct("~") => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(Expr::new(ExprKind::Un(UnOpKind::BitNot, Box::new(e)), line))
            }
            TokenKind::Punct("*") => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(Expr::new(ExprKind::Un(UnOpKind::Deref, Box::new(e)), line))
            }
            TokenKind::Punct("&") => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(Expr::new(ExprKind::Un(UnOpKind::AddrOf, Box::new(e)), line))
            }
            TokenKind::Punct("++") => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(Expr::new(ExprKind::PreIncDec(true, Box::new(e)), line))
            }
            TokenKind::Punct("--") => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(Expr::new(ExprKind::PreIncDec(false, Box::new(e)), line))
            }
            TokenKind::Ident(s) if s == "sizeof" => {
                self.bump();
                self.expect_punct("(")?;
                let ty = self.parse_type()?;
                self.expect_punct(")")?;
                Ok(Expr::new(ExprKind::SizeOf(ty), line))
            }
            _ => self.parse_postfix(),
        }
    }

    fn parse_postfix(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.parse_primary()?;
        loop {
            let line = self.line();
            if self.eat_punct("(") {
                let mut args = Vec::new();
                if !self.eat_punct(")") {
                    loop {
                        args.push(self.parse_assignment()?);
                        if self.eat_punct(")") {
                            break;
                        }
                        self.expect_punct(",")?;
                    }
                }
                e = Expr::new(ExprKind::Call(Box::new(e), args), line);
            } else if self.eat_punct("[") {
                let idx = self.parse_expr()?;
                self.expect_punct("]")?;
                e = Expr::new(ExprKind::Index(Box::new(e), Box::new(idx)), line);
            } else if self.eat_punct(".") {
                let field = self.expect_ident()?;
                e = Expr::new(ExprKind::Member(Box::new(e), field), line);
            } else if self.eat_punct("->") {
                let field = self.expect_ident()?;
                e = Expr::new(ExprKind::Arrow(Box::new(e), field), line);
            } else if self.eat_punct("++") {
                e = Expr::new(ExprKind::PostIncDec(true, Box::new(e)), line);
            } else if self.eat_punct("--") {
                e = Expr::new(ExprKind::PostIncDec(false, Box::new(e)), line);
            } else {
                return Ok(e);
            }
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        match self.bump() {
            TokenKind::Int(v) => Ok(Expr::new(ExprKind::IntLit(v), line)),
            TokenKind::Float(v) => Ok(Expr::new(ExprKind::FloatLit(v), line)),
            TokenKind::Str(s) => Ok(Expr::new(ExprKind::StrLit(s), line)),
            TokenKind::Char(c) => Ok(Expr::new(ExprKind::CharLit(c), line)),
            TokenKind::Ident(s) => Ok(Expr::new(ExprKind::Ident(s), line)),
            TokenKind::Punct("(") => {
                let e = self.parse_expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            other => Err(CompileError::new(
                line,
                format!("expected expression, found {other:?}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_function_with_params() {
        let p = parse("long add(long a, long b) { return a + b; }").unwrap();
        assert_eq!(p.funcs.len(), 1);
        assert_eq!(p.funcs[0].name, "add");
        assert_eq!(p.funcs[0].params.len(), 2);
        assert!(p.funcs[0].body.is_some());
    }

    #[test]
    fn parses_struct_and_function_pointers() {
        let p = parse(
            "struct VTable { void (*f)(); void (*g)(); };\n\
             int use(struct VTable* v) { v->f(); return 0; }",
        )
        .unwrap();
        assert_eq!(p.structs.defs.len(), 1);
        assert_eq!(p.structs.defs[0].fields.len(), 2);
        assert!(matches!(p.structs.defs[0].fields[0].1, CType::FuncPtr(_)));
    }

    #[test]
    fn parses_multidim_arrays() {
        let p = parse("double A[16][32]; int main() { A[1][2] = 3.0; return 0; }").unwrap();
        assert_eq!(
            p.globals[0].ty,
            CType::Array(Box::new(CType::Array(Box::new(CType::Double), 32)), 16)
        );
    }

    #[test]
    fn parses_for_loops_and_compound_assign() {
        let p =
            parse("int main() { int s = 0; for (int i = 0; i < 10; i++) { s += i; } return s; }")
                .unwrap();
        let body = p.funcs[0].body.as_ref().unwrap();
        assert!(matches!(&body[1], Stmt::For { .. }));
    }

    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        let p = parse("int f() { return 1 + 2 * 3; }").unwrap();
        let body = p.funcs[0].body.as_ref().unwrap();
        match &body[0] {
            Stmt::Return(Some(e), _) => match &e.kind {
                ExprKind::Bin(BinOpKind::Add, _, rhs) => {
                    assert!(matches!(rhs.kind, ExprKind::Bin(BinOpKind::Mul, _, _)));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_casts_and_sizeof() {
        let p = parse("long f(double x) { return (long)x + (long)sizeof(double); }").unwrap();
        assert_eq!(p.funcs.len(), 1);
    }

    #[test]
    fn parses_designated_initialisers() {
        let p = parse(
            "struct V { int a; int b; };\n\
             int f() { struct V v = {.a = 1, .b = 2}; return v.a; }",
        )
        .unwrap();
        let body = p.funcs[0].body.as_ref().unwrap();
        match &body[0] {
            Stmt::Decl { brace_init, .. } => {
                assert_eq!(brace_init.as_ref().unwrap().len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn prototypes_without_bodies() {
        let p = parse("long helper(long x);").unwrap();
        assert!(p.funcs[0].body.is_none());
    }

    #[test]
    fn preprocessor_and_static_ignored() {
        let p =
            parse("#include <stdio.h>\nstatic int x = 3;\nstatic int f() { return x; }").unwrap();
        assert_eq!(p.globals.len(), 1);
        assert_eq!(p.funcs.len(), 1);
    }

    #[test]
    fn error_reports_line() {
        let err = parse("int f() {\n  return 1 +;\n}").unwrap_err();
        assert_eq!(err.line, 2);
    }
}
