//! Abstract syntax tree.

use crate::types::{CType, StructTable};

/// A whole translation unit.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Struct definitions (layouts via the table).
    pub structs: StructTable,
    /// Global variables.
    pub globals: Vec<GlobalDef>,
    /// Function definitions (bodies may be absent for prototypes).
    pub funcs: Vec<FuncDef>,
}

/// A global variable definition.
#[derive(Debug, Clone)]
pub struct GlobalDef {
    /// Name.
    pub name: String,
    /// Type.
    pub ty: CType,
    /// Optional constant initialiser.
    pub init: Option<Expr>,
    /// Source line.
    pub line: u32,
}

/// A function definition or prototype.
#[derive(Debug, Clone)]
pub struct FuncDef {
    /// Name.
    pub name: String,
    /// Return type.
    pub ret: CType,
    /// Parameters.
    pub params: Vec<(String, CType)>,
    /// Body (`None` for prototypes).
    pub body: Option<Vec<Stmt>>,
    /// Source line.
    pub line: u32,
}

/// Statements.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// Local declaration.
    Decl {
        /// Name.
        name: String,
        /// Declared type.
        ty: CType,
        /// Scalar initialiser.
        init: Option<Expr>,
        /// Brace initialiser elements (arrays / designated struct fields).
        brace_init: Option<Vec<(Option<String>, Expr)>>,
        /// Source line.
        line: u32,
    },
    /// Expression statement.
    Expr(Expr),
    /// `if` / `else`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then: Vec<Stmt>,
        /// Else branch.
        els: Vec<Stmt>,
    },
    /// `while`.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `for`.
    For {
        /// Initialiser.
        init: Option<Box<Stmt>>,
        /// Condition (absent = true).
        cond: Option<Expr>,
        /// Step expression.
        step: Option<Expr>,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `return`.
    Return(Option<Expr>, u32),
    /// `break`.
    Break(u32),
    /// `continue`.
    Continue(u32),
    /// Nested block (its own scope).
    Block(Vec<Stmt>),
}

/// Binary operator kinds (C semantics; signedness resolved by type).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BinOpKind {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Unary operator kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOpKind {
    /// `-x`
    Neg,
    /// `!x`
    Not,
    /// `~x`
    BitNot,
    /// `*p`
    Deref,
    /// `&x`
    AddrOf,
}

/// An expression with its source line.
#[derive(Debug, Clone)]
pub struct Expr {
    /// Payload.
    pub kind: ExprKind,
    /// Source line.
    pub line: u32,
}

/// Expression kinds.
#[derive(Debug, Clone)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// Floating literal.
    FloatLit(f64),
    /// String literal.
    StrLit(String),
    /// Character constant.
    CharLit(u8),
    /// Variable / function reference.
    Ident(String),
    /// Binary operation.
    Bin(BinOpKind, Box<Expr>, Box<Expr>),
    /// Short-circuit `&&`.
    LogAnd(Box<Expr>, Box<Expr>),
    /// Short-circuit `||`.
    LogOr(Box<Expr>, Box<Expr>),
    /// Assignment; `Some(op)` for compound assignment.
    Assign(Option<BinOpKind>, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnOpKind, Box<Expr>),
    /// `++x` / `--x`.
    PreIncDec(bool, Box<Expr>),
    /// `x++` / `x--`.
    PostIncDec(bool, Box<Expr>),
    /// Call: callee expression (function name or pointer), arguments.
    Call(Box<Expr>, Vec<Expr>),
    /// `a[i]`.
    Index(Box<Expr>, Box<Expr>),
    /// `s.field`.
    Member(Box<Expr>, String),
    /// `p->field`.
    Arrow(Box<Expr>, String),
    /// `(type)expr`.
    Cast(CType, Box<Expr>),
    /// `sizeof(type)`.
    SizeOf(CType),
}

impl Expr {
    /// Convenience constructor.
    #[must_use]
    pub fn new(kind: ExprKind, line: u32) -> Self {
        Expr { kind, line }
    }
}
