//! # cage-cc — a micro-C frontend for the Cage toolchain
//!
//! Stands in for clang in the paper's pipeline (Fig. 5): it compiles
//! *unmodified* C sources — the subset PolyBench/C and the paper's
//! motivating examples use — down to `cage-ir`, where the optimisation and
//! sanitizer passes run before lowering to hardened WASM.
//!
//! Supported C subset:
//!
//! * types: `int`, `long`, `char`, `double`, `void`, pointers,
//!   fixed-size (multi-dimensional) arrays, `struct`s, function pointers;
//! * statements: declarations with initialisers, `if`/`else`, `while`,
//!   `for`, `break`, `continue`, `return`, blocks, expression statements;
//! * expressions: the usual C operator set with C precedence, including
//!   short-circuit `&&`/`||`, compound assignment, `++`/`--`, casts,
//!   `sizeof`, address-of/dereference, array indexing, member access
//!   (`.`/`->`), calls and calls through function pointers;
//! * string literals (placed in global data) and character constants;
//! * the paper's builtins for custom allocators (§4.1 "we expose Cage's
//!   memory safety primitives to C"): `__builtin_segment_new`,
//!   `__builtin_segment_free`, `__builtin_segment_set_tag`,
//!   `__builtin_pointer_sign`, `__builtin_pointer_auth`;
//! * the `cage-libc` interface (`malloc`, `free`, `calloc`, `realloc`,
//!   `strcpy`, `memset`, `print_*`…) — recognised implicitly, imported
//!   from the `cage_libc` host module.
//!
//! ## Example
//!
//! ```
//! use cage_cc::compile;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ir = compile(
//!     r#"
//!     long add(long a, long b) { return a + b; }
//!     "#,
//! )?;
//! assert_eq!(ir.functions.len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod codegen;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod types;

pub use codegen::{compile_ast, compile_ast_with};
pub use error::CompileError;
pub use parser::{parse, parse_with};

/// Compiles C source to a `cage-ir` module (parse + typecheck + lower).
///
/// # Errors
///
/// Returns [`CompileError`] with a line number on syntax or type errors.
pub fn compile(source: &str) -> Result<cage_ir::IrModule, CompileError> {
    let ast = parse(source)?;
    compile_ast(&ast)
}

/// Like [`compile`], but bounds the work done on hostile input against
/// `limits` and the shared `fuel` budget.
///
/// # Errors
///
/// Returns [`CompileError`]; [`CompileError::limit`] is set when a
/// resource bound (not a language error) stopped the compilation.
pub fn compile_with(
    source: &str,
    limits: &cage_wasm::CompileLimits,
    fuel: &cage_wasm::CompileFuel,
) -> Result<cage_ir::IrModule, CompileError> {
    let ast = parse_with(source, limits, fuel)?;
    compile_ast_with(&ast, limits, fuel)
}
