//! Tokeniser for the micro-C subset.

use crate::error::CompileError;

/// A token with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// 1-based line number.
    pub line: u32,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are distinguished by the parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating literal.
    Float(f64),
    /// String literal (unescaped).
    Str(String),
    /// Character constant value.
    Char(u8),
    /// Punctuation / operator.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl TokenKind {
    /// The identifier text, if this is an identifier.
    #[must_use]
    pub fn as_ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }
}

const PUNCTS: &[&str] = &[
    // Longest first so maximal munch works.
    "<<=", ">>=", "...", "&&", "||", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=", "%=", "&=",
    "|=", "^=", "<<", ">>", "++", "--", "->", "(", ")", "{", "}", "[", "]", ";", ",", "+", "-",
    "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=", ".", "?", ":",
];

/// Tokenises `source` without resource bounds.
///
/// # Errors
///
/// [`CompileError`] on malformed literals or unknown characters.
pub fn lex(source: &str) -> Result<Vec<Token>, CompileError> {
    lex_with(
        source,
        &cage_wasm::CompileLimits::unlimited(),
        &cage_wasm::CompileLimits::unlimited().fuel(),
    )
}

/// Tokenises `source`, rejecting oversized input and charging one fuel
/// unit per token.
///
/// # Errors
///
/// [`CompileError`] on malformed input or a busted limit.
pub fn lex_with(
    source: &str,
    limits: &cage_wasm::CompileLimits,
    fuel: &cage_wasm::CompileFuel,
) -> Result<Vec<Token>, CompileError> {
    if source.len() > limits.max_source_bytes {
        return Err(CompileError::from_limit(cage_wasm::LimitError {
            what: "source bytes",
            limit: limits.max_source_bytes as u64,
            actual: source.len() as u64,
        }));
    }
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut line = 1u32;

    while i < bytes.len() {
        fuel.charge(1).map_err(CompileError::from_limit)?;
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                while i + 1 < bytes.len() && !(bytes[i] == b'*' && bytes[i + 1] == b'/') {
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
                if i + 1 >= bytes.len() {
                    return Err(CompileError::new(line, "unterminated block comment"));
                }
                i += 2;
            }
            b'#' => {
                // Preprocessor lines are ignored (PolyBench sources carry
                // includes/defines that the subset does not need).
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(source[start..i].to_string()),
                    line,
                });
            }
            b'0'..=b'9' => {
                let start = i;
                let mut is_float = false;
                if c == b'0' && bytes.get(i + 1).is_some_and(|b| *b == b'x' || *b == b'X') {
                    i += 2;
                    while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                        i += 1;
                    }
                    let v = i64::from_str_radix(&source[start + 2..i], 16)
                        .map_err(|_| CompileError::new(line, "bad hex literal"))?;
                    tokens.push(Token {
                        kind: TokenKind::Int(v),
                        line,
                    });
                    continue;
                }
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                if i < bytes.len() && bytes[i] == b'.' {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    is_float = true;
                    i += 1;
                    if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                        i += 1;
                    }
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                // Integer suffixes (L, UL, …) are accepted and ignored.
                while i < bytes.len() && matches!(bytes[i], b'l' | b'L' | b'u' | b'U' | b'f' | b'F')
                {
                    if bytes[i] == b'f' || bytes[i] == b'F' {
                        is_float = true;
                    }
                    i += 1;
                }
                let text = &source[start..i].trim_end_matches(['l', 'L', 'u', 'U', 'f', 'F']);
                let kind = if is_float {
                    TokenKind::Float(
                        text.parse()
                            .map_err(|_| CompileError::new(line, "bad float literal"))?,
                    )
                } else {
                    TokenKind::Int(
                        text.parse()
                            .map_err(|_| CompileError::new(line, "bad integer literal"))?,
                    )
                };
                tokens.push(Token { kind, line });
            }
            b'"' => {
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(CompileError::new(line, "unterminated string literal"));
                    }
                    match bytes[i] {
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\\' => {
                            i += 1;
                            let esc = *bytes
                                .get(i)
                                .ok_or_else(|| CompileError::new(line, "bad escape"))?;
                            s.push(unescape(esc, line)? as char);
                            i += 1;
                        }
                        b => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    line,
                });
            }
            b'\'' => {
                i += 1;
                let v = match bytes.get(i) {
                    Some(b'\\') => {
                        i += 1;
                        let esc = *bytes
                            .get(i)
                            .ok_or_else(|| CompileError::new(line, "bad escape"))?;
                        i += 1;
                        unescape(esc, line)?
                    }
                    Some(b) => {
                        i += 1;
                        *b
                    }
                    None => return Err(CompileError::new(line, "unterminated char constant")),
                };
                if bytes.get(i) != Some(&b'\'') {
                    return Err(CompileError::new(line, "unterminated char constant"));
                }
                i += 1;
                tokens.push(Token {
                    kind: TokenKind::Char(v),
                    line,
                });
            }
            _ => {
                let rest = &source[i..];
                let punct = PUNCTS.iter().find(|p| rest.starts_with(**p));
                match punct {
                    Some(p) => {
                        tokens.push(Token {
                            kind: TokenKind::Punct(p),
                            line,
                        });
                        i += p.len();
                    }
                    None => {
                        return Err(CompileError::new(
                            line,
                            format!("unexpected character {:?}", rest.chars().next().unwrap()),
                        ))
                    }
                }
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
    });
    Ok(tokens)
}

fn unescape(esc: u8, line: u32) -> Result<u8, CompileError> {
    Ok(match esc {
        b'n' => b'\n',
        b't' => b'\t',
        b'r' => b'\r',
        b'0' => 0,
        b'\\' => b'\\',
        b'\'' => b'\'',
        b'"' => b'"',
        other => {
            return Err(CompileError::new(
                line,
                format!("unknown escape \\{}", other as char),
            ))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_identifiers_and_ints() {
        assert_eq!(
            kinds("foo 42 _bar9"),
            vec![
                TokenKind::Ident("foo".into()),
                TokenKind::Int(42),
                TokenKind::Ident("_bar9".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_floats_and_suffixes() {
        assert_eq!(
            kinds("1.5 2e3 7L 1.0f"),
            vec![
                TokenKind::Float(1.5),
                TokenKind::Float(2000.0),
                TokenKind::Int(7),
                TokenKind::Float(1.0),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_hex() {
        assert_eq!(kinds("0xFF"), vec![TokenKind::Int(255), TokenKind::Eof]);
    }

    #[test]
    fn maximal_munch_operators() {
        assert_eq!(
            kinds("a<<=b->c++"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Punct("<<="),
                TokenKind::Ident("b".into()),
                TokenKind::Punct("->"),
                TokenKind::Ident("c".into()),
                TokenKind::Punct("++"),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn strings_and_chars_with_escapes() {
        assert_eq!(
            kinds(r#""hi\n" 'A' '\0'"#),
            vec![
                TokenKind::Str("hi\n".into()),
                TokenKind::Char(b'A'),
                TokenKind::Char(0),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_and_preprocessor_skipped() {
        assert_eq!(
            kinds("#include <x.h>\n// line\n/* block\nblock */ x"),
            vec![TokenKind::Ident("x".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n\nc").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn errors_on_unterminated_string() {
        assert!(lex("\"abc").is_err());
        assert!(lex("/* abc").is_err());
    }
}
