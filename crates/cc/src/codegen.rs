//! AST → `cage-ir` lowering with C type checking.
//!
//! Scalar locals live in IR registers; arrays, structs and address-taken
//! locals become allocas — which is exactly the population Algorithm 1
//! later analyses. Code is generated per target pointer width because C
//! object layout (`sizeof(void*)`, struct offsets, GEP scales) differs
//! between wasm32 and wasm64.

use std::collections::{HashMap, HashSet};

use cage_ir::{
    AllocaId, BinOp, Callee, CastKind, Expr as IrExpr, FuncId, FunctionBuilder, GlobalId, IrModule,
    IrType, MemTy, Operand, Stmt as IrStmt, UnOp, ValueId,
};

use crate::ast::{BinOpKind, Expr, ExprKind, FuncDef, Program, Stmt, UnOpKind};
use crate::error::CompileError;
use crate::types::{CType, FuncSig, StructTable};

/// Compiles a parsed program for the wasm64 target.
///
/// # Errors
///
/// [`CompileError`] on type errors.
pub fn compile_ast(prog: &Program) -> Result<IrModule, CompileError> {
    compile_ast_for(prog, 8)
}

/// Like [`compile_ast`], but bounded by `limits`/`fuel`.
///
/// # Errors
///
/// [`CompileError`] on type errors or busted limits.
pub fn compile_ast_with(
    prog: &Program,
    limits: &cage_wasm::CompileLimits,
    fuel: &cage_wasm::CompileFuel,
) -> Result<IrModule, CompileError> {
    compile_ast_for_with(prog, 8, limits, fuel)
}

/// Compiles for an explicit pointer width (8 = wasm64, 4 = wasm32).
///
/// # Errors
///
/// [`CompileError`] on type errors.
pub fn compile_ast_for(prog: &Program, ptr_bytes: u64) -> Result<IrModule, CompileError> {
    compile_ast_for_with(
        prog,
        ptr_bytes,
        &cage_wasm::CompileLimits::unlimited(),
        &cage_wasm::CompileLimits::unlimited().fuel(),
    )
}

/// Compiles for an explicit pointer width under explicit bounds: caps
/// the function count and total global data, and charges `fuel` as it
/// lowers (the parser has already charged per token, so the AST's size
/// is itself bounded by the time codegen sees it).
///
/// # Errors
///
/// [`CompileError`] on type errors or busted limits (see
/// [`CompileError::limit`]).
pub fn compile_ast_for_with(
    prog: &Program,
    ptr_bytes: u64,
    limits: &cage_wasm::CompileLimits,
    fuel: &cage_wasm::CompileFuel,
) -> Result<IrModule, CompileError> {
    if prog.funcs.len() > limits.max_functions {
        return Err(CompileError::from_limit(cage_wasm::LimitError {
            what: "functions",
            limit: limits.max_functions as u64,
            actual: prog.funcs.len() as u64,
        }));
    }
    let mut cg = Codegen::new(prog, ptr_bytes, *limits, fuel);
    cg.declare_functions()?;
    cg.define_globals()?;
    for func in &prog.funcs {
        fuel.charge(1).map_err(CompileError::from_limit)?;
        if func.body.is_some() {
            cg.compile_function(func)?;
        }
    }
    Ok(cg.module)
}

/// The libc surface recognised implicitly (imported from `cage_libc`).
const KNOWN_EXTERNS: &[(&str, &[CTypeTag], CTypeTag)] = &[
    ("malloc", &[CTypeTag::Long], CTypeTag::CharPtr),
    (
        "calloc",
        &[CTypeTag::Long, CTypeTag::Long],
        CTypeTag::CharPtr,
    ),
    (
        "realloc",
        &[CTypeTag::CharPtr, CTypeTag::Long],
        CTypeTag::CharPtr,
    ),
    ("free", &[CTypeTag::CharPtr], CTypeTag::Void),
    (
        "strcpy",
        &[CTypeTag::CharPtr, CTypeTag::CharPtr],
        CTypeTag::CharPtr,
    ),
    ("strlen", &[CTypeTag::CharPtr], CTypeTag::Long),
    (
        "memset",
        &[CTypeTag::CharPtr, CTypeTag::Int, CTypeTag::Long],
        CTypeTag::CharPtr,
    ),
    (
        "memcpy",
        &[CTypeTag::CharPtr, CTypeTag::CharPtr, CTypeTag::Long],
        CTypeTag::CharPtr,
    ),
    ("print_i64", &[CTypeTag::Long], CTypeTag::Void),
    ("print_f64", &[CTypeTag::Double], CTypeTag::Void),
    ("print_str", &[CTypeTag::CharPtr], CTypeTag::Void),
];

/// Const-friendly type tags for the extern table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CTypeTag {
    Void,
    Int,
    Long,
    Double,
    CharPtr,
}

impl CTypeTag {
    fn to_ctype(self) -> CType {
        match self {
            CTypeTag::Void => CType::Void,
            CTypeTag::Int => CType::Int,
            CTypeTag::Long => CType::Long,
            CTypeTag::Double => CType::Double,
            CTypeTag::CharPtr => CType::Char.ptr_to(),
        }
    }
}

#[derive(Debug, Clone)]
enum Storage {
    Reg(ValueId),
    Slot(AllocaId),
}

#[derive(Debug, Clone)]
struct Binding {
    ty: CType,
    storage: Storage,
}

/// An lvalue: a register or a memory location.
enum LV {
    Reg(ValueId, CType),
    Mem(Operand, u64, CType),
}

impl LV {
    fn ctype(&self) -> &CType {
        match self {
            LV::Reg(_, t) | LV::Mem(_, _, t) => t,
        }
    }
}

struct Codegen<'p> {
    prog: &'p Program,
    module: IrModule,
    ptr_bytes: u64,
    func_sigs: HashMap<String, (FuncId, FuncSig)>,
    extern_ids: HashMap<String, (u32, FuncSig)>,
    /// Prototype-only functions: declared host imports (the `env` module).
    declared_externs: HashMap<String, FuncSig>,
    global_ids: HashMap<String, (GlobalId, CType)>,
    str_cache: HashMap<String, GlobalId>,
    limits: cage_wasm::CompileLimits,
    fuel: &'p cage_wasm::CompileFuel,
    /// Bytes of global data emitted so far (counted against
    /// `limits.max_global_bytes`).
    global_bytes: u64,
}

struct FnCtx {
    b: FunctionBuilder,
    scopes: Vec<HashMap<String, Binding>>,
    ret: CType,
    slot_names: HashSet<String>,
}

impl FnCtx {
    fn lookup(&self, name: &str) -> Option<&Binding> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn bind(&mut self, name: &str, binding: Binding) {
        self.scopes
            .last_mut()
            .expect("scope")
            .insert(name.to_string(), binding);
    }
}

impl<'p> Codegen<'p> {
    fn new(
        prog: &'p Program,
        ptr_bytes: u64,
        limits: cage_wasm::CompileLimits,
        fuel: &'p cage_wasm::CompileFuel,
    ) -> Self {
        Codegen {
            prog,
            module: IrModule::new(),
            ptr_bytes,
            func_sigs: HashMap::new(),
            extern_ids: HashMap::new(),
            declared_externs: HashMap::new(),
            global_ids: HashMap::new(),
            str_cache: HashMap::new(),
            limits,
            fuel,
            global_bytes: 0,
        }
    }

    /// Counts `size` bytes of global data against the limit, before the
    /// backing buffer is allocated.
    fn charge_global(&mut self, size: u64) -> Result<(), CompileError> {
        let total = self.global_bytes.saturating_add(size);
        if total > self.limits.max_global_bytes {
            return Err(CompileError::from_limit(cage_wasm::LimitError {
                what: "global bytes",
                limit: self.limits.max_global_bytes,
                actual: total,
            }));
        }
        self.global_bytes = total;
        Ok(())
    }

    fn structs(&self) -> &StructTable {
        &self.prog.structs
    }

    fn size_of(&self, ty: &CType) -> u64 {
        self.structs().size_of(ty, self.ptr_bytes)
    }

    fn ir_type(&self, ty: &CType) -> IrType {
        match ty {
            CType::Char | CType::Int => IrType::I32,
            CType::Long => IrType::I64,
            CType::Double => IrType::F64,
            CType::Ptr(_) | CType::FuncPtr(_) | CType::Array(_, _) => IrType::Ptr,
            CType::Struct(_) => IrType::Ptr, // structs are handled by address
            CType::Void => IrType::I32,      // placeholder, never materialised
        }
    }

    fn mem_ty(&self, ty: &CType) -> Result<MemTy, CompileError> {
        Ok(match ty {
            CType::Char => MemTy::I8,
            CType::Int => MemTy::I32,
            CType::Long => MemTy::I64,
            CType::Double => MemTy::F64,
            CType::Ptr(_) | CType::FuncPtr(_) => MemTy::Ptr,
            // Aggregate copies (`*p = *q` on struct pointers, struct
            // parameters by value) and `void` accesses have no scalar
            // load/store form in this subset.
            other => {
                return Err(CompileError::new(
                    0,
                    format!("cannot load or store non-scalar type {other}"),
                ))
            }
        })
    }

    fn declare_functions(&mut self) -> Result<(), CompileError> {
        // Prototype-only functions (declared but never defined) are host
        // imports: they compile to calls into the `env` import module, so
        // embedders can expose custom host functions through a `Linker`.
        let defined: HashSet<&str> = self
            .prog
            .funcs
            .iter()
            .filter(|f| f.body.is_some())
            .map(|f| f.name.as_str())
            .collect();
        let mut next_id = 0u32;
        let mut bodies_seen: HashSet<&str> = HashSet::new();
        for f in &self.prog.funcs {
            let sig = FuncSig {
                params: f.params.iter().map(|(_, t)| t.clone()).collect(),
                ret: f.ret.clone(),
            };
            if f.body.is_some() && !bodies_seen.insert(f.name.as_str()) {
                return Err(CompileError::new(
                    f.line,
                    format!("redefinition of `{}`", f.name),
                ));
            }
            if !defined.contains(f.name.as_str()) {
                // A prototype for a libc name must match the implicit
                // libc signature — it resolves to `cage_libc.*`, never to
                // a user host import.
                if let Some((_, params, ret)) = KNOWN_EXTERNS.iter().find(|(n, _, _)| *n == f.name)
                {
                    let libc_sig = FuncSig {
                        params: params.iter().map(|t| t.to_ctype()).collect(),
                        ret: ret.to_ctype(),
                    };
                    if sig != libc_sig {
                        return Err(CompileError::new(
                            f.line,
                            format!(
                                "declaration of `{}` conflicts with the libc signature",
                                f.name
                            ),
                        ));
                    }
                    continue;
                }
                if let Some(existing) = self.declared_externs.get(&f.name) {
                    if *existing != sig {
                        return Err(CompileError::new(
                            f.line,
                            format!("conflicting declarations of `{}`", f.name),
                        ));
                    }
                } else {
                    self.declared_externs.insert(f.name.clone(), sig);
                }
                continue;
            }
            if let Some((_, existing)) = self.func_sigs.get(&f.name) {
                // Redeclaration (a prototype before or after the
                // definition): the signature must agree.
                if *existing != sig {
                    return Err(CompileError::new(
                        f.line,
                        format!("conflicting declarations of `{}`", f.name),
                    ));
                }
                continue;
            }
            self.func_sigs
                .insert(f.name.clone(), (FuncId(next_id), sig));
            next_id += 1;
        }
        // Emit placeholder functions in id order so FuncId == index.
        let mut ordered: Vec<(&String, &(FuncId, FuncSig))> = self.func_sigs.iter().collect();
        ordered.sort_by_key(|(_, (id, _))| id.0);
        for (name, (_, sig)) in ordered {
            let params: Vec<IrType> = sig.params.iter().map(|t| self.ir_type(t)).collect();
            let ret = match sig.ret {
                CType::Void => None,
                ref t => Some(self.ir_type(t)),
            };
            let mut fb = FunctionBuilder::new(name, &params, ret);
            fb.set_exported(true);
            self.module.functions.push(fb.finish());
        }
        Ok(())
    }

    fn define_globals(&mut self) -> Result<(), CompileError> {
        for g in &self.prog.globals {
            let size = self.size_of(&g.ty);
            self.charge_global(size)?;
            let Ok(len) = usize::try_from(size) else {
                return Err(CompileError::new(
                    g.line,
                    format!("global `{}` is too large for the target", g.name),
                ));
            };
            let mut bytes = vec![0u8; len];
            if let Some(init) = &g.init {
                match (&init.kind, &g.ty) {
                    (ExprKind::IntLit(v), CType::Int) => {
                        bytes.copy_from_slice(&(*v as i32).to_le_bytes());
                    }
                    (ExprKind::IntLit(v), CType::Long) => {
                        bytes.copy_from_slice(&v.to_le_bytes());
                    }
                    (ExprKind::IntLit(v), CType::Char) => bytes[0] = *v as u8,
                    (ExprKind::FloatLit(v), CType::Double) => {
                        bytes.copy_from_slice(&v.to_le_bytes());
                    }
                    (ExprKind::IntLit(v), CType::Double) => {
                        bytes.copy_from_slice(&(*v as f64).to_le_bytes());
                    }
                    _ => {
                        return Err(CompileError::new(
                            g.line,
                            "global initialisers must be integer or float constants",
                        ))
                    }
                }
            }
            let align = self.structs().align_of(&g.ty, self.ptr_bytes).max(16);
            let id = self.module.add_global(&g.name, bytes, align);
            self.global_ids.insert(g.name.clone(), (id, g.ty.clone()));
        }
        Ok(())
    }

    fn intern_string(&mut self, s: &str) -> Result<GlobalId, CompileError> {
        if let Some(id) = self.str_cache.get(s) {
            return Ok(*id);
        }
        self.charge_global(s.len() as u64 + 1)?;
        let mut bytes = s.as_bytes().to_vec();
        bytes.push(0);
        let id = self
            .module
            .add_global(&format!("str{}", self.str_cache.len()), bytes, 16);
        self.str_cache.insert(s.to_string(), id);
        Ok(id)
    }

    fn extern_id(&mut self, name: &str) -> Option<(u32, FuncSig)> {
        if let Some(e) = self.extern_ids.get(name) {
            return Some(e.clone());
        }
        // The implicit libc surface keeps its `cage_libc` namespace;
        // everything else the program declared without defining is an
        // embedder host function in the `env` namespace.
        let (module, sig) =
            if let Some((_, params, ret)) = KNOWN_EXTERNS.iter().find(|(n, _, _)| *n == name) {
                let sig = FuncSig {
                    params: params.iter().map(|t| t.to_ctype()).collect(),
                    ret: ret.to_ctype(),
                };
                ("cage_libc", sig)
            } else {
                ("env", self.declared_externs.get(name)?.clone())
            };
        let ir_params: Vec<IrType> = sig.params.iter().map(|t| self.ir_type(t)).collect();
        let ir_ret = match sig.ret {
            CType::Void => None,
            ref t => Some(self.ir_type(t)),
        };
        let idx = self.module.add_extern(cage_ir::ExternFunc {
            module: module.into(),
            name: name.into(),
            params: ir_params,
            ret: ir_ret,
        });
        self.extern_ids.insert(name.to_string(), (idx, sig.clone()));
        Some((idx, sig))
    }

    // -- function compilation -------------------------------------------------

    fn compile_function(&mut self, func: &FuncDef) -> Result<(), CompileError> {
        let (func_id, sig) = self.func_sigs[&func.name].clone();
        let params: Vec<IrType> = sig.params.iter().map(|t| self.ir_type(t)).collect();
        let ret = match sig.ret {
            CType::Void => None,
            ref t => Some(self.ir_type(t)),
        };
        let mut fb = FunctionBuilder::new(&func.name, &params, ret);
        fb.set_exported(true);

        // Which names need memory slots: address-taken, arrays, structs.
        let mut slot_names = HashSet::new();
        collect_addr_taken(func.body.as_deref().unwrap_or(&[]), &mut slot_names);

        let mut ctx = FnCtx {
            b: fb,
            scopes: vec![HashMap::new()],
            ret: sig.ret.clone(),
            slot_names,
        };
        // Bind parameters (copy address-taken params into slots).
        for (i, (name, ty)) in func.params.iter().enumerate() {
            if ctx.slot_names.contains(name) {
                let size = self.size_of(ty);
                let slot = ctx.b.alloca(size, name);
                let addr = ctx.b.alloca_addr(slot);
                ctx.b.store(self.mem_ty(ty)?, addr, 0, ctx.b.param(i));
                ctx.bind(
                    name,
                    Binding {
                        ty: ty.clone(),
                        storage: Storage::Slot(slot),
                    },
                );
            } else {
                let reg = match ctx.b.param(i) {
                    Operand::Value(v) => v,
                    _ => unreachable!(),
                };
                ctx.bind(
                    name,
                    Binding {
                        ty: ty.clone(),
                        storage: Storage::Reg(reg),
                    },
                );
            }
        }

        for stmt in func.body.as_deref().unwrap_or(&[]) {
            self.stmt(&mut ctx, stmt)?;
        }
        // Implicit return for main-like ints is not C-correct in general,
        // but a trailing `return 0` keeps validation happy for void paths.
        if ctx.ret == CType::Void {
            ctx.b.stmt(IrStmt::Return(None));
        } else {
            let zero = self.zero_of(&ctx.ret);
            ctx.b.stmt(IrStmt::Return(Some(zero)));
        }
        self.module.functions[func_id.0 as usize] = ctx.b.finish();
        Ok(())
    }

    fn zero_of(&self, ty: &CType) -> Operand {
        match self.ir_type(ty) {
            IrType::I32 => Operand::ConstI32(0),
            IrType::F64 => Operand::ConstF64(0.0),
            _ => Operand::ConstI64(0),
        }
    }

    // -- statements -----------------------------------------------------------

    #[allow(clippy::too_many_lines)]
    fn stmt(&mut self, ctx: &mut FnCtx, stmt: &Stmt) -> Result<(), CompileError> {
        self.fuel.charge(1).map_err(CompileError::from_limit)?;
        match stmt {
            Stmt::Decl {
                name,
                ty,
                init,
                brace_init,
                line,
            } => self.decl(ctx, name, ty, init.as_ref(), brace_init.as_deref(), *line),
            Stmt::Expr(e) => {
                self.expr_discard(ctx, e)?;
                Ok(())
            }
            Stmt::If { cond, then, els } => {
                let (c, cty) = self.expr(ctx, cond)?;
                let c = self.truthiness(ctx, c, &cty);
                ctx.b.push_block();
                ctx.scopes.push(HashMap::new());
                for s in then {
                    self.stmt(ctx, s)?;
                }
                ctx.scopes.pop();
                let then_ir = ctx.b.pop_block();
                ctx.b.push_block();
                ctx.scopes.push(HashMap::new());
                for s in els {
                    self.stmt(ctx, s)?;
                }
                ctx.scopes.pop();
                let else_ir = ctx.b.pop_block();
                ctx.b.stmt(IrStmt::If {
                    cond: c,
                    then: then_ir,
                    els: else_ir,
                });
                Ok(())
            }
            Stmt::While { cond, body } => {
                ctx.b.push_block();
                let (c, cty) = self.expr(ctx, cond)?;
                let c = self.truthiness(ctx, c, &cty);
                let header = ctx.b.pop_block();
                ctx.b.push_block();
                ctx.scopes.push(HashMap::new());
                for s in body {
                    self.stmt(ctx, s)?;
                }
                ctx.scopes.pop();
                let body_ir = ctx.b.pop_block();
                ctx.b.stmt(IrStmt::While {
                    header,
                    cond: c,
                    body: body_ir,
                });
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                // Desugar: init; while (cond) { body[continue -> step;continue]; step }
                ctx.scopes.push(HashMap::new());
                if let Some(init) = init {
                    self.stmt(ctx, init)?;
                }
                let desugared = desugar_for_body(body, step.as_ref());
                let cond_expr = cond.clone().unwrap_or(Expr::new(ExprKind::IntLit(1), 0));
                let while_stmt = Stmt::While {
                    cond: cond_expr,
                    body: desugared,
                };
                self.stmt(ctx, &while_stmt)?;
                ctx.scopes.pop();
                Ok(())
            }
            Stmt::Return(value, line) => {
                match value {
                    Some(e) => {
                        let (v, vty) = self.expr(ctx, e)?;
                        let ret_ty = ctx.ret.clone();
                        if ret_ty == CType::Void {
                            return Err(CompileError::new(*line, "void function returns a value"));
                        }
                        let v = self.convert(ctx, v, &vty, &ret_ty, *line)?;
                        ctx.b.stmt(IrStmt::Return(Some(v)));
                    }
                    None => {
                        if ctx.ret != CType::Void {
                            return Err(CompileError::new(*line, "missing return value"));
                        }
                        ctx.b.stmt(IrStmt::Return(None));
                    }
                }
                Ok(())
            }
            Stmt::Break(_) => {
                ctx.b.stmt(IrStmt::Break);
                Ok(())
            }
            Stmt::Continue(_) => {
                ctx.b.stmt(IrStmt::Continue);
                Ok(())
            }
            Stmt::Block(stmts) => {
                ctx.scopes.push(HashMap::new());
                for s in stmts {
                    self.stmt(ctx, s)?;
                }
                ctx.scopes.pop();
                Ok(())
            }
        }
    }

    fn decl(
        &mut self,
        ctx: &mut FnCtx,
        name: &str,
        ty: &CType,
        init: Option<&Expr>,
        brace_init: Option<&[(Option<String>, Expr)]>,
        line: u32,
    ) -> Result<(), CompileError> {
        let needs_slot =
            ctx.slot_names.contains(name) || matches!(ty, CType::Array(_, _) | CType::Struct(_));
        if needs_slot {
            let size = self.size_of(ty);
            let slot = ctx.b.alloca(size, name);
            ctx.bind(
                name,
                Binding {
                    ty: ty.clone(),
                    storage: Storage::Slot(slot),
                },
            );
            if let Some(e) = init {
                let (v, vty) = self.expr(ctx, e)?;
                let v = self.convert(ctx, v, &vty, ty, line)?;
                let addr = ctx.b.alloca_addr(slot);
                ctx.b.store(self.mem_ty(ty)?, addr, 0, v);
            }
            if let Some(items) = brace_init {
                self.emit_brace_init(ctx, slot, ty, items, line)?;
            }
        } else {
            let ir_ty = self.ir_type(ty);
            let init_val = match init {
                Some(e) => {
                    let (v, vty) = self.expr(ctx, e)?;
                    self.convert(ctx, v, &vty, ty, line)?
                }
                None => self.zero_of(ty),
            };
            let reg = ctx.b.copy(ir_ty, init_val);
            ctx.bind(
                name,
                Binding {
                    ty: ty.clone(),
                    storage: Storage::Reg(reg),
                },
            );
        }
        Ok(())
    }

    fn emit_brace_init(
        &mut self,
        ctx: &mut FnCtx,
        slot: AllocaId,
        ty: &CType,
        items: &[(Option<String>, Expr)],
        line: u32,
    ) -> Result<(), CompileError> {
        match ty {
            CType::Array(elem, _) => {
                let esize = self.size_of(elem);
                for (i, (field, e)) in items.iter().enumerate() {
                    if field.is_some() {
                        return Err(CompileError::new(line, "designators only apply to structs"));
                    }
                    let (v, vty) = self.expr(ctx, e)?;
                    let v = self.convert(ctx, v, &vty, elem, line)?;
                    let addr = ctx.b.alloca_addr(slot);
                    ctx.b.store(self.mem_ty(elem)?, addr, esize * i as u64, v);
                }
                Ok(())
            }
            CType::Struct(id) => {
                for (i, (field, e)) in items.iter().enumerate() {
                    let (offset, fty) = match field {
                        Some(fname) => self
                            .structs()
                            .field(*id, fname, self.ptr_bytes)
                            .ok_or_else(|| {
                                CompileError::new(line, format!("no field `{fname}`"))
                            })?,
                        None => {
                            let (fname, _) = self.structs().defs[*id]
                                .fields
                                .get(i)
                                .ok_or_else(|| CompileError::new(line, "too many initialisers"))?;
                            let fname = fname.clone();
                            self.structs()
                                .field(*id, &fname, self.ptr_bytes)
                                .expect("field exists")
                        }
                    };
                    let (v, vty) = self.expr(ctx, e)?;
                    let v = self.convert(ctx, v, &vty, &fty, line)?;
                    let addr = ctx.b.alloca_addr(slot);
                    ctx.b.store(self.mem_ty(&fty)?, addr, offset, v);
                }
                Ok(())
            }
            _ => Err(CompileError::new(
                line,
                "brace initialiser needs array/struct",
            )),
        }
    }

    // -- expressions -----------------------------------------------------------

    /// Emits `e` for side effects, discarding any value.
    fn expr_discard(&mut self, ctx: &mut FnCtx, e: &Expr) -> Result<(), CompileError> {
        let _ = self.expr(ctx, e)?;
        Ok(())
    }

    /// Normalises a value to an i32 0/1 condition.
    fn truthiness(&mut self, ctx: &mut FnCtx, v: Operand, ty: &CType) -> Operand {
        match self.ir_type(ty) {
            IrType::I32 => v,
            IrType::F64 => ctx
                .b
                .binop(BinOp::Ne, IrType::F64, v, Operand::ConstF64(0.0)),
            IrType::Ptr => ctx.b.binop(BinOp::Ne, IrType::Ptr, v, Operand::ConstI64(0)),
            IrType::I64 => ctx.b.binop(BinOp::Ne, IrType::I64, v, Operand::ConstI64(0)),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn expr(&mut self, ctx: &mut FnCtx, e: &Expr) -> Result<(Operand, CType), CompileError> {
        match &e.kind {
            ExprKind::IntLit(v) => {
                if *v >= i64::from(i32::MIN) && *v <= i64::from(i32::MAX) {
                    Ok((Operand::ConstI32(*v as i32), CType::Int))
                } else {
                    Ok((Operand::ConstI64(*v), CType::Long))
                }
            }
            ExprKind::FloatLit(v) => Ok((Operand::ConstF64(*v), CType::Double)),
            ExprKind::CharLit(c) => Ok((Operand::ConstI32(i32::from(*c)), CType::Char)),
            ExprKind::StrLit(s) => {
                let id = self.intern_string(s)?;
                let addr = ctx.b.assign(IrType::Ptr, IrExpr::GlobalAddr(id));
                Ok((addr, CType::Char.ptr_to()))
            }
            ExprKind::Ident(name) => self.ident_value(ctx, name, e.line),
            ExprKind::Bin(op, lhs, rhs) => self.binary(ctx, *op, lhs, rhs, e.line),
            ExprKind::LogAnd(lhs, rhs) => self.logical(ctx, lhs, rhs, true),
            ExprKind::LogOr(lhs, rhs) => self.logical(ctx, lhs, rhs, false),
            ExprKind::Assign(op, lhs, rhs) => self.assign(ctx, *op, lhs, rhs, e.line),
            ExprKind::Un(op, inner) => self.unary(ctx, *op, inner, e.line),
            ExprKind::PreIncDec(inc, inner) => self.incdec(ctx, *inc, inner, true, e.line),
            ExprKind::PostIncDec(inc, inner) => self.incdec(ctx, *inc, inner, false, e.line),
            ExprKind::Call(callee, args) => self.call(ctx, callee, args, e.line),
            ExprKind::Index(base, idx) => {
                let lv = self.index_lvalue(ctx, base, idx, e.line)?;
                self.load_lvalue(ctx, lv)
            }
            ExprKind::Member(base, field) => {
                let lv = self.member_lvalue(ctx, base, field, false, e.line)?;
                self.load_lvalue(ctx, lv)
            }
            ExprKind::Arrow(base, field) => {
                let lv = self.member_lvalue(ctx, base, field, true, e.line)?;
                self.load_lvalue(ctx, lv)
            }
            ExprKind::Cast(ty, inner) => {
                let (v, vty) = self.expr(ctx, inner)?;
                let v = self.convert(ctx, v, &vty, ty, e.line)?;
                Ok((v, ty.clone()))
            }
            ExprKind::SizeOf(ty) => Ok((Operand::ConstI64(self.size_of(ty) as i64), CType::Long)),
        }
    }

    fn ident_value(
        &mut self,
        ctx: &mut FnCtx,
        name: &str,
        line: u32,
    ) -> Result<(Operand, CType), CompileError> {
        if let Some(binding) = ctx.lookup(name).cloned() {
            return Ok(match (&binding.storage, &binding.ty) {
                // Arrays decay; structs evaluate to their address.
                (Storage::Slot(slot), CType::Array(elem, _)) => {
                    let addr = ctx.b.alloca_addr(*slot);
                    (addr, CType::Ptr(elem.clone()))
                }
                (Storage::Slot(slot), CType::Struct(_)) => {
                    let addr = ctx.b.alloca_addr(*slot);
                    (addr, binding.ty.clone())
                }
                (Storage::Slot(slot), ty) => {
                    let addr = ctx.b.alloca_addr(*slot);
                    let v = ctx.b.load(self.mem_ty(ty)?, addr, 0);
                    (v, ty.clone())
                }
                (Storage::Reg(reg), ty) => (Operand::Value(*reg), ty.clone()),
            });
        }
        if let Some((gid, gty)) = self.global_ids.get(name).cloned() {
            let addr = ctx.b.assign(IrType::Ptr, IrExpr::GlobalAddr(gid));
            return Ok(match &gty {
                CType::Array(elem, _) => (addr, CType::Ptr(elem.clone())),
                CType::Struct(_) => (addr, gty),
                ty => {
                    let v = ctx.b.load(self.mem_ty(ty)?, addr, 0);
                    (v, ty.clone())
                }
            });
        }
        if let Some((fid, sig)) = self.func_sigs.get(name).cloned() {
            // Function designator decays to a function pointer.
            let v = ctx.b.assign(IrType::Ptr, IrExpr::FuncAddr(fid));
            return Ok((v, CType::FuncPtr(Box::new(sig))));
        }
        if self.declared_externs.contains_key(name)
            || self.extern_ids.contains_key(name)
            || KNOWN_EXTERNS.iter().any(|(n, _, _)| *n == name)
        {
            // Host imports have no table slot, so they cannot decay to a
            // callable function pointer — only direct calls work.
            return Err(CompileError::new(
                line,
                format!(
                    "host function `{name}` cannot be used as a value \
                     (function pointers to host imports are not supported)"
                ),
            ));
        }
        Err(CompileError::new(
            line,
            format!("unknown identifier `{name}`"),
        ))
    }

    /// Usual arithmetic conversions: double > long > int.
    fn common_type(a: &CType, b: &CType) -> CType {
        if *a == CType::Double || *b == CType::Double {
            CType::Double
        } else if *a == CType::Long || *b == CType::Long {
            CType::Long
        } else {
            CType::Int
        }
    }

    #[allow(clippy::too_many_lines)]
    fn binary(
        &mut self,
        ctx: &mut FnCtx,
        op: BinOpKind,
        lhs: &Expr,
        rhs: &Expr,
        line: u32,
    ) -> Result<(Operand, CType), CompileError> {
        let (lv, lty) = self.expr(ctx, lhs)?;
        let (rv, rty) = self.expr(ctx, rhs)?;
        // Pointer arithmetic.
        if let CType::Ptr(pointee) = &lty {
            match op {
                BinOpKind::Add | BinOpKind::Sub if rty.is_integer() => {
                    let idx = if op == BinOpKind::Sub {
                        let ity = self.ir_type(&rty);
                        ctx.b.unop(UnOp::Neg, ity, rv)
                    } else {
                        rv
                    };
                    let scale = self.size_of(pointee);
                    let addr = ctx.b.assign(
                        IrType::Ptr,
                        IrExpr::Gep {
                            base: lv,
                            index: idx,
                            scale,
                            offset: 0,
                        },
                    );
                    return Ok((addr, lty.clone()));
                }
                BinOpKind::Sub if rty.is_pointer() => {
                    let scale = self.size_of(pointee);
                    let diff = ctx.b.binop(BinOp::Sub, IrType::I64, lv, rv);
                    let count = ctx.b.binop(
                        BinOp::DivS,
                        IrType::I64,
                        diff,
                        Operand::ConstI64(scale as i64),
                    );
                    return Ok((count, CType::Long));
                }
                BinOpKind::Eq
                | BinOpKind::Ne
                | BinOpKind::Lt
                | BinOpKind::Le
                | BinOpKind::Gt
                | BinOpKind::Ge => {
                    let irop = int_cmp_op(op, false);
                    let v = ctx.b.binop(irop, IrType::Ptr, lv, rv);
                    return Ok((v, CType::Int));
                }
                _ => return Err(CompileError::new(line, "invalid pointer arithmetic")),
            }
        }
        if rty.is_pointer() && lty.is_integer() && op == BinOpKind::Add {
            // int + ptr
            return self.binary(ctx, op, rhs, lhs, line);
        }
        if rty.is_pointer() || lty.is_pointer() {
            // Remaining pointer cases: comparisons handled above for ptr
            // lhs; handle ptr rhs comparisons.
            if matches!(
                op,
                BinOpKind::Eq
                    | BinOpKind::Ne
                    | BinOpKind::Lt
                    | BinOpKind::Le
                    | BinOpKind::Gt
                    | BinOpKind::Ge
            ) {
                let irop = int_cmp_op(op, false);
                let v = ctx.b.binop(irop, IrType::Ptr, lv, rv);
                return Ok((v, CType::Int));
            }
            return Err(CompileError::new(line, "invalid pointer arithmetic"));
        }

        let common = Self::common_type(&lty, &rty);
        let lv = self.convert(ctx, lv, &lty, &common, line)?;
        let rv = self.convert(ctx, rv, &rty, &common, line)?;
        let ir_ty = self.ir_type(&common);
        let (irop, result_ty) = match op {
            BinOpKind::Add => (BinOp::Add, common.clone()),
            BinOpKind::Sub => (BinOp::Sub, common.clone()),
            BinOpKind::Mul => (BinOp::Mul, common.clone()),
            BinOpKind::Div => (BinOp::DivS, common.clone()),
            BinOpKind::Rem => {
                if common == CType::Double {
                    return Err(CompileError::new(line, "% needs integer operands"));
                }
                (BinOp::RemS, common.clone())
            }
            BinOpKind::And => (BinOp::And, common.clone()),
            BinOpKind::Or => (BinOp::Or, common.clone()),
            BinOpKind::Xor => (BinOp::Xor, common.clone()),
            BinOpKind::Shl => (BinOp::Shl, common.clone()),
            BinOpKind::Shr => (BinOp::ShrS, common.clone()),
            cmp => (int_cmp_op(cmp, common == CType::Double), CType::Int),
        };
        let v = ctx.b.binop(irop, ir_ty, lv, rv);
        Ok((v, result_ty))
    }

    fn logical(
        &mut self,
        ctx: &mut FnCtx,
        lhs: &Expr,
        rhs: &Expr,
        is_and: bool,
    ) -> Result<(Operand, CType), CompileError> {
        let (lv, lty) = self.expr(ctx, lhs)?;
        let lcond = self.truthiness(ctx, lv, &lty);
        let result = ctx.b.fresh(IrType::I32);

        // Evaluate rhs only when needed.
        ctx.b.push_block();
        let (rv, rty) = self.expr(ctx, rhs)?;
        let rcond = self.truthiness(ctx, rv, &rty);
        ctx.b.reassign(result, IrExpr::Use(rcond));
        let eval_rhs = ctx.b.pop_block();

        ctx.b.push_block();
        ctx.b
            .reassign(result, IrExpr::Use(Operand::ConstI32(i32::from(!is_and))));
        let short = ctx.b.pop_block();

        let (then, els) = if is_and {
            (eval_rhs, short)
        } else {
            (short, eval_rhs)
        };
        ctx.b.stmt(IrStmt::If {
            cond: lcond,
            then,
            els,
        });
        Ok((Operand::Value(result), CType::Int))
    }

    fn assign(
        &mut self,
        ctx: &mut FnCtx,
        op: Option<BinOpKind>,
        lhs: &Expr,
        rhs: &Expr,
        line: u32,
    ) -> Result<(Operand, CType), CompileError> {
        let value = match op {
            None => {
                let (rv, rty) = self.expr(ctx, rhs)?;
                let lv = self.lvalue(ctx, lhs)?;
                let target_ty = lv.ctype().clone();
                let rv = self.convert(ctx, rv, &rty, &target_ty, line)?;
                self.store_lvalue(ctx, &lv, rv)?;
                (rv, target_ty)
            }
            Some(op) => {
                // Desugar `a op= b` to `a = a op b` through the AST so
                // pointer arithmetic and conversions are shared. The lhs is
                // evaluated twice, which is fine for the supported lvalues.
                let combined = Expr::new(
                    ExprKind::Bin(op, Box::new(lhs.clone()), Box::new(rhs.clone())),
                    line,
                );
                let (rv, rty) = self.expr(ctx, &combined)?;
                let lv = self.lvalue(ctx, lhs)?;
                let target_ty = lv.ctype().clone();
                let rv = self.convert(ctx, rv, &rty, &target_ty, line)?;
                self.store_lvalue(ctx, &lv, rv)?;
                (rv, target_ty)
            }
        };
        Ok(value)
    }

    fn unary(
        &mut self,
        ctx: &mut FnCtx,
        op: UnOpKind,
        inner: &Expr,
        line: u32,
    ) -> Result<(Operand, CType), CompileError> {
        match op {
            UnOpKind::Neg => {
                let (v, ty) = self.expr(ctx, inner)?;
                let ty = if ty == CType::Char { CType::Int } else { ty };
                let r = ctx.b.unop(UnOp::Neg, self.ir_type(&ty), v);
                Ok((r, ty))
            }
            UnOpKind::Not => {
                let (v, ty) = self.expr(ctx, inner)?;
                let c = self.truthiness(ctx, v, &ty);
                let r = ctx.b.unop(UnOp::Not, IrType::I32, c);
                Ok((r, CType::Int))
            }
            UnOpKind::BitNot => {
                let (v, ty) = self.expr(ctx, inner)?;
                let ty = if ty == CType::Char { CType::Int } else { ty };
                let r = ctx.b.unop(UnOp::BitNot, self.ir_type(&ty), v);
                Ok((r, ty))
            }
            UnOpKind::Deref => {
                let (v, ty) = self.expr(ctx, inner)?;
                match ty {
                    CType::Ptr(pointee) => match *pointee {
                        // Deref to array: the address is the value.
                        CType::Array(ref elem, _) => Ok((v, CType::Ptr(elem.clone()))),
                        CType::Struct(_) => Ok((v, (*pointee).clone())),
                        ref p => {
                            let r = ctx.b.load(self.mem_ty(p)?, v, 0);
                            Ok((r, p.clone()))
                        }
                    },
                    // Deref of a function pointer is the function itself.
                    CType::FuncPtr(_) => Ok((v, ty)),
                    _ => Err(CompileError::new(line, "cannot dereference non-pointer")),
                }
            }
            UnOpKind::AddrOf => {
                let lv = self.lvalue(ctx, inner)?;
                match lv {
                    LV::Mem(addr, offset, ty) => {
                        let addr = if offset != 0 {
                            ctx.b.assign(
                                IrType::Ptr,
                                IrExpr::Gep {
                                    base: addr,
                                    index: Operand::ConstI64(0),
                                    scale: 1,
                                    offset,
                                },
                            )
                        } else {
                            addr
                        };
                        Ok((addr, ty.ptr_to()))
                    }
                    LV::Reg(..) => Err(CompileError::new(
                        line,
                        "internal: address-taken variable not in memory",
                    )),
                }
            }
        }
    }

    fn incdec(
        &mut self,
        ctx: &mut FnCtx,
        inc: bool,
        inner: &Expr,
        pre: bool,
        line: u32,
    ) -> Result<(Operand, CType), CompileError> {
        let lv = self.lvalue(ctx, inner)?;
        let ty = lv.ctype().clone();
        let (old, _) = { self.load_lvalue(ctx, self.copy_lv(&lv))? };
        let step: i64 = if inc { 1 } else { -1 };
        let ir_ty = self.ir_type(&ty);
        let new = match &ty {
            CType::Ptr(p) => {
                let scale = self.size_of(p);
                ctx.b.assign(
                    IrType::Ptr,
                    IrExpr::Gep {
                        base: old,
                        index: Operand::ConstI64(step),
                        scale,
                        offset: 0,
                    },
                )
            }
            _ => match ir_ty {
                IrType::F64 => {
                    ctx.b
                        .binop(BinOp::Add, IrType::F64, old, Operand::ConstF64(step as f64))
                }
                IrType::I32 => {
                    ctx.b
                        .binop(BinOp::Add, IrType::I32, old, Operand::ConstI32(step as i32))
                }
                _ => ctx.b.binop(BinOp::Add, ir_ty, old, Operand::ConstI64(step)),
            },
        };
        self.store_lvalue(ctx, &lv, new)?;
        let _ = line;
        Ok((if pre { new } else { old }, ty))
    }

    fn copy_lv(&self, lv: &LV) -> LV {
        match lv {
            LV::Reg(v, t) => LV::Reg(*v, t.clone()),
            LV::Mem(a, o, t) => LV::Mem(*a, *o, t.clone()),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn call(
        &mut self,
        ctx: &mut FnCtx,
        callee: &Expr,
        args: &[Expr],
        line: u32,
    ) -> Result<(Operand, CType), CompileError> {
        // Builtins first.
        if let ExprKind::Ident(name) = &callee.kind {
            if let Some(result) = self.builtin_call(ctx, name, args, line)? {
                return Ok(result);
            }
            // Direct call to a user function (not shadowed by a local).
            if ctx.lookup(name).is_none() {
                if let Some((fid, sig)) = self.func_sigs.get(name).cloned() {
                    let vals = self.call_args(ctx, &sig, args, line)?;
                    return Ok(self.emit_call(ctx, Callee::Local(fid), &sig, vals));
                }
                if let Some((eid, sig)) = self.extern_id(name) {
                    let vals = self.call_args(ctx, &sig, args, line)?;
                    return Ok(self.emit_call(ctx, Callee::Extern(eid), &sig, vals));
                }
            }
        }
        // Indirect call through a function-pointer expression.
        let (fv, fty) = self.expr(ctx, callee)?;
        let CType::FuncPtr(sig) = fty else {
            return Err(CompileError::new(line, "call of non-function"));
        };
        let vals = self.call_args(ctx, &sig, args, line)?;
        let params: Vec<IrType> = sig.params.iter().map(|t| self.ir_type(t)).collect();
        let ret = match sig.ret {
            CType::Void => None,
            ref t => Some(self.ir_type(t)),
        };
        if ret.is_none() {
            ctx.b.stmt(IrStmt::Perform(IrExpr::CallIndirect {
                target: fv,
                params,
                ret,
                args: vals,
            }));
            Ok((Operand::ConstI32(0), CType::Void))
        } else {
            let r = ctx.b.assign(
                self.ir_type(&sig.ret),
                IrExpr::CallIndirect {
                    target: fv,
                    params,
                    ret,
                    args: vals,
                },
            );
            Ok((r, sig.ret.clone()))
        }
    }

    fn call_args(
        &mut self,
        ctx: &mut FnCtx,
        sig: &FuncSig,
        args: &[Expr],
        line: u32,
    ) -> Result<Vec<Operand>, CompileError> {
        if args.len() != sig.params.len() {
            return Err(CompileError::new(
                line,
                format!(
                    "expected {} arguments, found {}",
                    sig.params.len(),
                    args.len()
                ),
            ));
        }
        let mut vals = Vec::with_capacity(args.len());
        for (arg, pty) in args.iter().zip(&sig.params) {
            let (v, vty) = self.expr(ctx, arg)?;
            vals.push(self.convert(ctx, v, &vty, pty, line)?);
        }
        Ok(vals)
    }

    fn emit_call(
        &mut self,
        ctx: &mut FnCtx,
        callee: Callee,
        sig: &FuncSig,
        args: Vec<Operand>,
    ) -> (Operand, CType) {
        if sig.ret == CType::Void {
            ctx.b.stmt(IrStmt::Perform(IrExpr::Call { callee, args }));
            (Operand::ConstI32(0), CType::Void)
        } else {
            let r = ctx
                .b
                .assign(self.ir_type(&sig.ret), IrExpr::Call { callee, args });
            (r, sig.ret.clone())
        }
    }

    /// The paper's C-visible Cage primitives (§4.1).
    fn builtin_call(
        &mut self,
        ctx: &mut FnCtx,
        name: &str,
        args: &[Expr],
        line: u32,
    ) -> Result<Option<(Operand, CType)>, CompileError> {
        let arity: usize = match name {
            "__builtin_segment_new" | "__builtin_segment_free" => 2,
            "__builtin_segment_set_tag" => 3,
            "__builtin_pointer_sign"
            | "__builtin_pointer_auth"
            | "__builtin_sqrt"
            | "__builtin_fabs" => 1,
            _ => return Ok(None),
        };
        if args.len() != arity {
            return Err(CompileError::new(
                line,
                format!("`{name}` expects {arity} argument(s), got {}", args.len()),
            ));
        }
        let result = match name {
            "__builtin_segment_new" => {
                let (p, _) = self.expr(ctx, &args[0])?;
                let (l, lty) = self.expr(ctx, &args[1])?;
                let l = self.convert(ctx, l, &lty, &CType::Long, line)?;
                let r = ctx
                    .b
                    .assign(IrType::Ptr, IrExpr::SegmentNew { addr: p, len: l });
                Some((r, CType::Char.ptr_to()))
            }
            "__builtin_segment_free" => {
                let (p, _) = self.expr(ctx, &args[0])?;
                let (l, lty) = self.expr(ctx, &args[1])?;
                let l = self.convert(ctx, l, &lty, &CType::Long, line)?;
                ctx.b.stmt(IrStmt::SegmentFree { ptr: p, len: l });
                Some((Operand::ConstI32(0), CType::Void))
            }
            "__builtin_segment_set_tag" => {
                let (p, _) = self.expr(ctx, &args[0])?;
                let (t, _) = self.expr(ctx, &args[1])?;
                let (l, lty) = self.expr(ctx, &args[2])?;
                let l = self.convert(ctx, l, &lty, &CType::Long, line)?;
                ctx.b.stmt(IrStmt::SegmentSetTag {
                    addr: p,
                    tagged: t,
                    len: l,
                });
                Some((Operand::ConstI32(0), CType::Void))
            }
            "__builtin_pointer_sign" => {
                let (p, pty) = self.expr(ctx, &args[0])?;
                let r = ctx.b.assign(IrType::Ptr, IrExpr::PointerSign(p));
                Some((r, pty))
            }
            "__builtin_sqrt" => {
                let (v, vty) = self.expr(ctx, &args[0])?;
                let v = self.convert(ctx, v, &vty, &CType::Double, line)?;
                let r = ctx.b.unop(UnOp::Sqrt, IrType::F64, v);
                Some((r, CType::Double))
            }
            "__builtin_fabs" => {
                let (v, vty) = self.expr(ctx, &args[0])?;
                let v = self.convert(ctx, v, &vty, &CType::Double, line)?;
                let r = ctx.b.unop(UnOp::Fabs, IrType::F64, v);
                Some((r, CType::Double))
            }
            "__builtin_pointer_auth" => {
                let (p, pty) = self.expr(ctx, &args[0])?;
                let r = ctx.b.assign(IrType::Ptr, IrExpr::PointerAuth(p));
                Some((r, pty))
            }
            _ => None,
        };
        Ok(result)
    }

    // -- lvalues ----------------------------------------------------------------

    fn lvalue(&mut self, ctx: &mut FnCtx, e: &Expr) -> Result<LV, CompileError> {
        match &e.kind {
            ExprKind::Ident(name) => {
                if let Some(binding) = ctx.lookup(name).cloned() {
                    return Ok(match binding.storage {
                        Storage::Reg(v) => LV::Reg(v, binding.ty),
                        Storage::Slot(slot) => {
                            let addr = ctx.b.alloca_addr(slot);
                            LV::Mem(addr, 0, binding.ty)
                        }
                    });
                }
                if let Some((gid, gty)) = self.global_ids.get(name).cloned() {
                    let addr = ctx.b.assign(IrType::Ptr, IrExpr::GlobalAddr(gid));
                    return Ok(LV::Mem(addr, 0, gty));
                }
                Err(CompileError::new(
                    e.line,
                    format!("unknown identifier `{name}`"),
                ))
            }
            ExprKind::Un(UnOpKind::Deref, inner) => {
                let (v, ty) = self.expr(ctx, inner)?;
                match ty {
                    CType::Ptr(p) => Ok(LV::Mem(v, 0, (*p).clone())),
                    _ => Err(CompileError::new(
                        e.line,
                        "cannot assign through non-pointer",
                    )),
                }
            }
            ExprKind::Index(base, idx) => self.index_lvalue(ctx, base, idx, e.line),
            ExprKind::Member(base, field) => self.member_lvalue(ctx, base, field, false, e.line),
            ExprKind::Arrow(base, field) => self.member_lvalue(ctx, base, field, true, e.line),
            _ => Err(CompileError::new(e.line, "expression is not assignable")),
        }
    }

    fn index_lvalue(
        &mut self,
        ctx: &mut FnCtx,
        base: &Expr,
        idx: &Expr,
        line: u32,
    ) -> Result<LV, CompileError> {
        let (bv, bty) = self.expr(ctx, base)?;
        let elem = bty
            .element()
            .cloned()
            .ok_or_else(|| CompileError::new(line, "indexing a non-array"))?;
        let (iv, ity) = self.expr(ctx, idx)?;
        if !ity.is_integer() {
            return Err(CompileError::new(line, "array index must be an integer"));
        }
        // The index stays in its own width; the lowering coerces it to the
        // target pointer width (an i32 index is free on wasm32 and costs
        // one extend on wasm64, as with real codegen).
        let scale = self.size_of(&elem);
        let addr = ctx.b.assign(
            IrType::Ptr,
            IrExpr::Gep {
                base: bv,
                index: iv,
                scale,
                offset: 0,
            },
        );
        Ok(LV::Mem(addr, 0, elem))
    }

    fn member_lvalue(
        &mut self,
        ctx: &mut FnCtx,
        base: &Expr,
        field: &str,
        through_ptr: bool,
        line: u32,
    ) -> Result<LV, CompileError> {
        let (bv, bty) = self.expr(ctx, base)?;
        let sid = match (&bty, through_ptr) {
            (CType::Struct(id), false) => *id,
            (CType::Ptr(p), true) => match p.as_ref() {
                CType::Struct(id) => *id,
                _ => return Err(CompileError::new(line, "-> on non-struct pointer")),
            },
            _ => return Err(CompileError::new(line, "member access on non-struct")),
        };
        let (offset, fty) = self
            .structs()
            .field(sid, field, self.ptr_bytes)
            .ok_or_else(|| CompileError::new(line, format!("no field `{field}`")))?;
        Ok(LV::Mem(bv, offset, fty))
    }

    /// Loads an lvalue's current value (arrays decay, structs stay
    /// addresses).
    fn load_lvalue(&mut self, ctx: &mut FnCtx, lv: LV) -> Result<(Operand, CType), CompileError> {
        Ok(match lv {
            LV::Reg(v, ty) => (Operand::Value(v), ty),
            LV::Mem(addr, offset, ty) => match &ty {
                CType::Array(elem, _) => {
                    let addr = self.addr_with_offset(ctx, addr, offset);
                    (addr, CType::Ptr(elem.clone()))
                }
                CType::Struct(_) => {
                    let addr = self.addr_with_offset(ctx, addr, offset);
                    (addr, ty)
                }
                scalar => {
                    let v = ctx.b.load(self.mem_ty(scalar)?, addr, offset);
                    (v, ty)
                }
            },
        })
    }

    fn addr_with_offset(&mut self, ctx: &mut FnCtx, addr: Operand, offset: u64) -> Operand {
        if offset == 0 {
            return addr;
        }
        ctx.b.assign(
            IrType::Ptr,
            IrExpr::Gep {
                base: addr,
                index: Operand::ConstI64(0),
                scale: 1,
                offset,
            },
        )
    }

    fn store_lvalue(
        &mut self,
        ctx: &mut FnCtx,
        lv: &LV,
        value: Operand,
    ) -> Result<(), CompileError> {
        match lv {
            LV::Reg(v, _) => ctx.b.reassign(*v, IrExpr::Use(value)),
            LV::Mem(addr, offset, ty) => {
                ctx.b.store(self.mem_ty(ty)?, *addr, *offset, value);
            }
        }
        Ok(())
    }

    // -- conversions -------------------------------------------------------------

    fn convert(
        &mut self,
        ctx: &mut FnCtx,
        v: Operand,
        from: &CType,
        to: &CType,
        line: u32,
    ) -> Result<Operand, CompileError> {
        use CastKind::*;
        if from == to {
            return Ok(v);
        }
        let cast =
            |ctx: &mut FnCtx, kind, v, ty| ctx.b.assign(ty, IrExpr::Cast { kind, operand: v });
        Ok(match (from, to) {
            // Integer widenings/narrowings (char and int share i32).
            (CType::Char, CType::Int) | (CType::Int, CType::Char) => v,
            (CType::Char | CType::Int, CType::Long) => cast(ctx, I32ToI64S, v, IrType::I64),
            (CType::Long, CType::Int | CType::Char) => cast(ctx, I64ToI32, v, IrType::I32),
            // Int <-> double.
            (CType::Char | CType::Int, CType::Double) => cast(ctx, I32ToF64S, v, IrType::F64),
            (CType::Long, CType::Double) => cast(ctx, I64ToF64S, v, IrType::F64),
            (CType::Double, CType::Char | CType::Int) => cast(ctx, F64ToI32S, v, IrType::I32),
            (CType::Double, CType::Long) => cast(ctx, F64ToI64S, v, IrType::I64),
            // Pointer conversions are representation-preserving.
            (a, b) if a.is_pointer() && b.is_pointer() => v,
            (a, CType::Long) if a.is_pointer() => cast(ctx, PtrToInt, v, IrType::I64),
            (CType::Long, b) if b.is_pointer() => cast(ctx, IntToPtr, v, IrType::Ptr),
            (CType::Char | CType::Int, b) if b.is_pointer() => {
                let wide = if self.ptr_bytes == 8 {
                    cast(ctx, I32ToI64S, v, IrType::I64)
                } else {
                    v
                };
                cast(ctx, IntToPtr, wide, IrType::Ptr)
            }
            (a, CType::Int) if a.is_pointer() => {
                if self.ptr_bytes == 8 {
                    let long = cast(ctx, PtrToInt, v, IrType::I64);
                    cast(ctx, I64ToI32, long, IrType::I32)
                } else {
                    cast(ctx, PtrToInt, v, IrType::I32)
                }
            }
            // Array decays happen before conversion; anything else is an
            // error.
            _ => {
                return Err(CompileError::new(
                    line,
                    format!("cannot convert {from} to {to}"),
                ))
            }
        })
    }
}

fn int_cmp_op(op: BinOpKind, is_float: bool) -> BinOp {
    // Signed comparisons; the float lowering maps LtS -> F64Lt etc.
    let _ = is_float;
    match op {
        BinOpKind::Eq => BinOp::Eq,
        BinOpKind::Ne => BinOp::Ne,
        BinOpKind::Lt => BinOp::LtS,
        BinOpKind::Le => BinOp::LeS,
        BinOpKind::Gt => BinOp::GtS,
        BinOpKind::Ge => BinOp::GeS,
        other => panic!("not a comparison: {other:?}"),
    }
}

/// Collects identifiers whose address is taken (they need stack slots).
fn collect_addr_taken(body: &[Stmt], out: &mut HashSet<String>) {
    fn walk_expr(e: &Expr, out: &mut HashSet<String>) {
        match &e.kind {
            ExprKind::Un(UnOpKind::AddrOf, inner) => {
                // &x, &arr[i], &s.f — the root identifier needs a slot.
                let mut root = inner.as_ref();
                loop {
                    match &root.kind {
                        ExprKind::Index(b, i) => {
                            walk_expr(i, out);
                            root = b;
                        }
                        ExprKind::Member(b, _) => root = b,
                        _ => break,
                    }
                }
                if let ExprKind::Ident(name) = &root.kind {
                    out.insert(name.clone());
                }
                walk_expr(inner, out);
            }
            ExprKind::Bin(_, a, b)
            | ExprKind::LogAnd(a, b)
            | ExprKind::LogOr(a, b)
            | ExprKind::Index(a, b) => {
                walk_expr(a, out);
                walk_expr(b, out);
            }
            ExprKind::Assign(_, a, b) => {
                walk_expr(a, out);
                walk_expr(b, out);
            }
            ExprKind::Un(_, a)
            | ExprKind::PreIncDec(_, a)
            | ExprKind::PostIncDec(_, a)
            | ExprKind::Member(a, _)
            | ExprKind::Arrow(a, _)
            | ExprKind::Cast(_, a) => walk_expr(a, out),
            ExprKind::Call(f, args) => {
                walk_expr(f, out);
                args.iter().for_each(|a| walk_expr(a, out));
            }
            _ => {}
        }
    }
    for stmt in body {
        match stmt {
            Stmt::Decl {
                init, brace_init, ..
            } => {
                if let Some(e) = init {
                    walk_expr(e, out);
                }
                if let Some(items) = brace_init {
                    items.iter().for_each(|(_, e)| walk_expr(e, out));
                }
            }
            Stmt::Expr(e) => walk_expr(e, out),
            Stmt::If { cond, then, els } => {
                walk_expr(cond, out);
                collect_addr_taken(then, out);
                collect_addr_taken(els, out);
            }
            Stmt::While { cond, body } => {
                walk_expr(cond, out);
                collect_addr_taken(body, out);
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(s) = init {
                    collect_addr_taken(std::slice::from_ref(s), out);
                }
                if let Some(c) = cond {
                    walk_expr(c, out);
                }
                if let Some(s) = step {
                    walk_expr(s, out);
                }
                collect_addr_taken(body, out);
            }
            Stmt::Return(Some(e), _) => walk_expr(e, out),
            Stmt::Block(stmts) => collect_addr_taken(stmts, out),
            _ => {}
        }
    }
}

/// Desugars a `for` body: `continue` becomes `{ step; continue; }` (without
/// descending into nested loops) and the step is appended at the end.
fn desugar_for_body(body: &[Stmt], step: Option<&Expr>) -> Vec<Stmt> {
    fn rewrite(stmts: &[Stmt], step: &Expr) -> Vec<Stmt> {
        stmts
            .iter()
            .map(|s| match s {
                Stmt::Continue(line) => {
                    Stmt::Block(vec![Stmt::Expr(step.clone()), Stmt::Continue(*line)])
                }
                Stmt::If { cond, then, els } => Stmt::If {
                    cond: cond.clone(),
                    then: rewrite(then, step),
                    els: rewrite(els, step),
                },
                Stmt::Block(inner) => Stmt::Block(rewrite(inner, step)),
                // Nested loops own their continues.
                other => other.clone(),
            })
            .collect()
    }
    let mut out = match step {
        Some(step) => rewrite(body, step),
        None => body.to_vec(),
    };
    if let Some(step) = step {
        out.push(Stmt::Expr(step.clone()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn compile(src: &str) -> IrModule {
        compile_ast(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn compiles_arithmetic_function() {
        let m = compile("long add(long a, long b) { return a + b; }");
        assert_eq!(m.functions.len(), 1);
        assert_eq!(m.functions[0].params, vec![IrType::I64, IrType::I64]);
        assert_eq!(m.functions[0].ret, Some(IrType::I64));
    }

    #[test]
    fn scalars_use_registers_arrays_use_slots() {
        let m = compile("long f() { long x = 1; long a[4]; a[0] = x; return a[0]; }");
        assert_eq!(
            m.functions[0].allocas.len(),
            1,
            "only the array gets a slot"
        );
        assert_eq!(m.functions[0].allocas[0].size, 32);
    }

    #[test]
    fn address_taken_scalars_get_slots() {
        let m = compile("void g(long* p); long f() { long x = 1; g(&x); return x; }");
        let f = m.functions.iter().find(|f| f.name == "f").unwrap();
        assert_eq!(f.allocas.len(), 1);
    }

    #[test]
    fn malloc_becomes_cage_libc_extern() {
        let m = compile("char* f() { return malloc(32); }");
        assert_eq!(m.externs.len(), 1);
        assert_eq!(m.externs[0].module, "cage_libc");
        assert_eq!(m.externs[0].name, "malloc");
    }

    #[test]
    fn builtins_emit_segment_instructions() {
        let m = compile(
            "char* f(char* p) { char* t = __builtin_segment_new(p, 32); __builtin_segment_free(t, 32); return t; }",
        );
        let mut saw_new = false;
        let mut saw_free = false;
        cage_ir::instr::visit_stmts(&m.functions[0].body, &mut |s| {
            if let cage_ir::Stmt::Assign { expr, .. } = s {
                if matches!(expr, IrExpr::SegmentNew { .. }) {
                    saw_new = true;
                }
            }
            if matches!(s, cage_ir::Stmt::SegmentFree { .. }) {
                saw_free = true;
            }
        });
        assert!(saw_new && saw_free);
    }

    #[test]
    fn string_literals_become_globals() {
        let m = compile("char* f() { return \"hello\"; }");
        assert_eq!(m.globals.len(), 1);
        assert_eq!(m.globals[0].bytes, b"hello\0");
    }

    #[test]
    fn struct_member_access_compiles() {
        let m = compile(
            "struct P { long x; long y; };\n\
             long f() { struct P p; p.x = 3; p.y = 4; return p.x + p.y; }",
        );
        assert_eq!(m.functions[0].allocas[0].size, 16);
    }

    #[test]
    fn type_error_unknown_identifier() {
        let err = compile_ast(&parse("long f() { return ghost; }").unwrap()).unwrap_err();
        assert!(err.message.contains("ghost"));
    }

    #[test]
    fn type_error_bad_conversion() {
        let err = compile_ast(
            &parse("struct S { int a; }; double f() { struct S s; return s; }").unwrap(),
        )
        .unwrap_err();
        assert!(err.message.contains("convert"), "{err}");
    }

    #[test]
    fn wrong_arity_rejected() {
        let err =
            compile_ast(&parse("long g(long a) { return a; } long f() { return g(); }").unwrap())
                .unwrap_err();
        assert!(err.message.contains("argument"));
    }

    #[test]
    fn ptr_width_changes_sizeof() {
        let prog = parse("long f() { return sizeof(char*); }").unwrap();
        let m64 = compile_ast_for(&prog, 8).unwrap();
        let m32 = compile_ast_for(&prog, 4).unwrap();
        // The constant 8 vs 4 appears in the return.
        let find_consts = |m: &IrModule| {
            let mut found = Vec::new();
            cage_ir::instr::visit_stmts(&m.functions[0].body, &mut |s| {
                if let cage_ir::Stmt::Return(Some(Operand::ConstI64(v))) = s {
                    found.push(*v);
                }
            });
            found
        };
        assert!(find_consts(&m64).contains(&8));
        assert!(find_consts(&m32).contains(&4));
    }
}
