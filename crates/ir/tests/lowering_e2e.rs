//! End-to-end: build IR, run the pass pipeline, lower to wasm, validate,
//! and execute in the engine.

use cage_engine::{ExecConfig, Imports, InternalSafety, Store, Value};
use cage_ir::passes::{run_pipeline, HardenConfig};
use cage_ir::{
    lower, BinOp, Callee, Expr, FunctionBuilder, IrModule, IrType, LowerOptions, MemTy, Operand,
    PtrWidth, Stmt, UnOp,
};

fn run_export(
    ir: &IrModule,
    opts: &LowerOptions,
    config: ExecConfig,
    name: &str,
    args: &[Value],
) -> Result<Vec<Value>, cage_engine::Trap> {
    let lowered = lower(ir, opts).expect("lowering");
    cage_wasm::validate(&lowered.module).expect("hardened module validates");
    let mut store = Store::new(config);
    let h = store.instantiate(&lowered.module, &Imports::new()).unwrap();
    store.invoke(h, name, args)
}

/// sum(n) = 0 + 1 + ... + n-1 via a while loop with a stack array.
fn sum_array_module() -> IrModule {
    let mut b = FunctionBuilder::new("sum", &[IrType::I64], Some(IrType::I64));
    b.set_exported(true);
    let arr = b.alloca(8 * 16, "arr");
    let base = b.alloca_addr(arr);
    let i = b.copy(IrType::I64, Operand::ConstI64(0));
    // while (i < n) { arr[i] = i; i += 1 }
    b.push_block();
    let slot = b.assign(
        IrType::Ptr,
        Expr::Gep {
            base,
            index: Operand::Value(i),
            scale: 8,
            offset: 0,
        },
    );
    b.store(MemTy::I64, slot, 0, Operand::Value(i));
    let next = b.binop(
        BinOp::Add,
        IrType::I64,
        Operand::Value(i),
        Operand::ConstI64(1),
    );
    b.reassign(i, Expr::Use(next));
    let body = b.pop_block();
    b.push_block();
    let cond = b.binop(BinOp::LtS, IrType::I64, Operand::Value(i), b.param(0));
    let header = b.pop_block();
    b.stmt(Stmt::While { header, cond, body });
    // acc loop
    let acc = b.copy(IrType::I64, Operand::ConstI64(0));
    let j = b.copy(IrType::I64, Operand::ConstI64(0));
    b.push_block();
    let slot = b.assign(
        IrType::Ptr,
        Expr::Gep {
            base,
            index: Operand::Value(j),
            scale: 8,
            offset: 0,
        },
    );
    let v = b.load(MemTy::I64, slot, 0);
    let sum = b.binop(BinOp::Add, IrType::I64, Operand::Value(acc), v);
    b.reassign(acc, Expr::Use(sum));
    let nj = b.binop(
        BinOp::Add,
        IrType::I64,
        Operand::Value(j),
        Operand::ConstI64(1),
    );
    b.reassign(j, Expr::Use(nj));
    let body = b.pop_block();
    b.push_block();
    let cond = b.binop(BinOp::LtS, IrType::I64, Operand::Value(j), b.param(0));
    let header = b.pop_block();
    b.stmt(Stmt::While { header, cond, body });
    b.stmt(Stmt::Return(Some(Operand::Value(acc))));

    let mut m = IrModule::new();
    m.functions.push(b.finish());
    m
}

#[test]
fn loops_and_stack_arrays_wasm64() {
    let mut ir = sum_array_module();
    run_pipeline(&mut ir, HardenConfig::none());
    let out = run_export(
        &ir,
        &LowerOptions::default(),
        ExecConfig::default(),
        "sum",
        &[Value::I64(10)],
    )
    .unwrap();
    assert_eq!(out, vec![Value::I64(45)]);
}

#[test]
fn loops_and_stack_arrays_wasm32() {
    let mut ir = sum_array_module();
    run_pipeline(&mut ir, HardenConfig::none());
    let opts = LowerOptions {
        ptr_width: PtrWidth::W32,
        ..LowerOptions::default()
    };
    let out = run_export(&ir, &opts, ExecConfig::default(), "sum", &[Value::I64(10)]).unwrap();
    assert_eq!(out, vec![Value::I64(45)]);
}

#[test]
fn hardened_module_still_computes_correctly() {
    // The dynamic indices make the array "unsafe"; with the sanitizer on
    // and MTE active, the program must still compute the same result.
    let mut ir = sum_array_module();
    run_pipeline(&mut ir, HardenConfig::full());
    // The sanitizer instrumented the alloca.
    assert!(ir.functions[0].allocas.iter().any(|a| a.instrument));
    let config = ExecConfig {
        internal: InternalSafety::Mte,
        pointer_auth: true,
        ..ExecConfig::default()
    };
    let out = run_export(
        &ir,
        &LowerOptions::default(),
        config,
        "sum",
        &[Value::I64(10)],
    )
    .unwrap();
    assert_eq!(out, vec![Value::I64(45)]);
}

#[test]
fn hardened_module_traps_on_stack_overflow() {
    // write(buf[idx]) with idx past the 2-element array: under the
    // sanitizer + MTE this must trap as a memory-safety violation.
    let mut b = FunctionBuilder::new("poke", &[IrType::I64], Some(IrType::I64));
    b.set_exported(true);
    let arr = b.alloca(16, "buf");
    let base = b.alloca_addr(arr);
    let slot = b.assign(
        IrType::Ptr,
        Expr::Gep {
            base,
            index: b.param(0),
            scale: 8,
            offset: 0,
        },
    );
    b.store(MemTy::I64, slot, 0, Operand::ConstI64(0x41));
    b.stmt(Stmt::Return(Some(Operand::ConstI64(0))));
    let mut ir = IrModule::new();
    ir.functions.push(b.finish());
    run_pipeline(
        &mut ir,
        HardenConfig {
            stack_safety: true,
            ptr_auth: false,
        },
    );

    let config = ExecConfig {
        internal: InternalSafety::Mte,
        ..ExecConfig::default()
    };
    // In-bounds write is fine.
    let lowered = lower(&ir, &LowerOptions::default()).unwrap();
    cage_wasm::validate(&lowered.module).unwrap();
    let mut store = Store::new(config);
    let h = store.instantiate(&lowered.module, &Imports::new()).unwrap();
    assert!(store.invoke(h, "poke", &[Value::I64(1)]).is_ok());
    // Out-of-bounds write (index 4 = 32 bytes past a 16-byte slot) traps.
    let err = store.invoke(h, "poke", &[Value::I64(4)]).unwrap_err();
    assert!(err.is_memory_safety_violation(), "{err}");
    // Without the sanitizer, the same overflow silently corrupts the
    // neighbouring stack slot (the paper's motivation).
    let mut ir_plain = IrModule::new();
    let mut b = FunctionBuilder::new("poke", &[IrType::I64], Some(IrType::I64));
    b.set_exported(true);
    let arr = b.alloca(16, "buf");
    let base = b.alloca_addr(arr);
    let slot = b.assign(
        IrType::Ptr,
        Expr::Gep {
            base,
            index: b.param(0),
            scale: 8,
            offset: 0,
        },
    );
    b.store(MemTy::I64, slot, 0, Operand::ConstI64(0x41));
    b.stmt(Stmt::Return(Some(Operand::ConstI64(0))));
    ir_plain.functions.push(b.finish());
    let lowered = lower(&ir_plain, &LowerOptions::default()).unwrap();
    let mut store = Store::new(ExecConfig::default());
    let h = store.instantiate(&lowered.module, &Imports::new()).unwrap();
    assert!(
        store.invoke(h, "poke", &[Value::I64(4)]).is_ok(),
        "baseline misses it"
    );
}

#[test]
fn function_pointers_with_auth_dispatch_correctly() {
    // double(x) and square(x) through a function pointer, hardened.
    let mut m = IrModule::new();

    let mut fb = FunctionBuilder::new("double", &[IrType::I64], Some(IrType::I64));
    let d = fb.binop(BinOp::Add, IrType::I64, fb.param(0), fb.param(0));
    fb.stmt(Stmt::Return(Some(d)));
    m.functions.push(fb.finish());

    let mut fb = FunctionBuilder::new("square", &[IrType::I64], Some(IrType::I64));
    let s = fb.binop(BinOp::Mul, IrType::I64, fb.param(0), fb.param(0));
    fb.stmt(Stmt::Return(Some(s)));
    m.functions.push(fb.finish());

    let mut fb = FunctionBuilder::new("dispatch", &[IrType::I32, IrType::I64], Some(IrType::I64));
    fb.set_exported(true);
    let fp = fb.fresh(IrType::Ptr);
    fb.push_block();
    fb.reassign(fp, Expr::FuncAddr(cage_ir::FuncId(0)));
    let then = fb.pop_block();
    fb.push_block();
    fb.reassign(fp, Expr::FuncAddr(cage_ir::FuncId(1)));
    let els = fb.pop_block();
    fb.stmt(Stmt::If {
        cond: fb.param(0),
        then,
        els,
    });
    let r = fb.assign(
        IrType::I64,
        Expr::CallIndirect {
            target: Operand::Value(fp),
            params: vec![IrType::I64],
            ret: Some(IrType::I64),
            args: vec![fb.param(1)],
        },
    );
    fb.stmt(Stmt::Return(Some(r)));
    m.functions.push(fb.finish());

    run_pipeline(&mut m, HardenConfig::full());
    let config = ExecConfig {
        pointer_auth: true,
        ..ExecConfig::default()
    };
    let lowered = lower(&m, &LowerOptions::default()).unwrap();
    cage_wasm::validate(&lowered.module).unwrap();
    let mut store = Store::new(config);
    let h = store.instantiate(&lowered.module, &Imports::new()).unwrap();
    assert_eq!(
        store
            .invoke(h, "dispatch", &[Value::I32(1), Value::I64(21)])
            .unwrap(),
        vec![Value::I64(42)]
    );
    assert_eq!(
        store
            .invoke(h, "dispatch", &[Value::I32(0), Value::I64(6)])
            .unwrap(),
        vec![Value::I64(36)]
    );
}

#[test]
fn forged_function_pointer_traps_under_auth() {
    // Call through a raw (unsigned) table index: with ptr-auth enabled the
    // authenticate step must trap.
    let mut m = IrModule::new();
    let mut fb = FunctionBuilder::new("noop", &[], None);
    fb.stmt(Stmt::Return(None));
    m.functions.push(fb.finish());

    let mut fb = FunctionBuilder::new("forge", &[IrType::I64], Some(IrType::I64));
    fb.set_exported(true);
    // A legitimate signed pointer exists (so the table is populated)…
    let legit = fb.assign(IrType::Ptr, Expr::FuncAddr(cage_ir::FuncId(0)));
    let fp = fb.fresh(IrType::Ptr);
    fb.push_block();
    fb.reassign(fp, Expr::Use(legit));
    let then = fb.pop_block();
    fb.push_block();
    // …but the attacker substitutes a raw, unsigned table index.
    fb.reassign(fp, Expr::Use(fb.param(0)));
    let els = fb.pop_block();
    let zero = fb.binop(BinOp::Eq, IrType::I64, fb.param(0), Operand::ConstI64(0));
    fb.stmt(Stmt::If {
        cond: zero,
        then,
        els,
    });
    fb.stmt(Stmt::Perform(Expr::CallIndirect {
        target: Operand::Value(fp),
        params: vec![],
        ret: None,
        args: vec![],
    }));
    fb.stmt(Stmt::Return(Some(Operand::ConstI64(0))));
    m.functions.push(fb.finish());

    run_pipeline(&mut m, HardenConfig::full());
    let config = ExecConfig {
        pointer_auth: true,
        ..ExecConfig::default()
    };
    let lowered = lower(&m, &LowerOptions::default()).unwrap();
    let mut store = Store::new(config);
    let h = store.instantiate(&lowered.module, &Imports::new()).unwrap();
    let err = store.invoke(h, "forge", &[Value::I64(1)]).unwrap_err();
    assert!(matches!(err, cage_engine::Trap::PointerAuth(_)), "{err}");
}

#[test]
fn segments_rejected_on_wasm32() {
    let mut ir = sum_array_module();
    run_pipeline(
        &mut ir,
        HardenConfig {
            stack_safety: true,
            ptr_auth: false,
        },
    );
    let opts = LowerOptions {
        ptr_width: PtrWidth::W32,
        ..LowerOptions::default()
    };
    assert!(matches!(
        lower(&ir, &opts),
        Err(cage_ir::LowerError::CageRequiresWasm64(_))
    ));
}

#[test]
fn globals_are_laid_out_and_initialised() {
    let mut m = IrModule::new();
    let g = m.add_global("msg", vec![7, 0, 0, 0, 0, 0, 0, 0], 8);
    let mut fb = FunctionBuilder::new("read_g", &[], Some(IrType::I64));
    fb.set_exported(true);
    let addr = fb.assign(IrType::Ptr, Expr::GlobalAddr(g));
    let v = fb.load(MemTy::I64, addr, 0);
    fb.stmt(Stmt::Return(Some(v)));
    m.functions.push(fb.finish());

    let lowered = lower(&m, &LowerOptions::default()).unwrap();
    assert!(lowered.heap_base > lowered.global_addrs[0]);
    let mut store = Store::new(ExecConfig::default());
    let h = store.instantiate(&lowered.module, &Imports::new()).unwrap();
    assert_eq!(store.invoke(h, "read_g", &[]).unwrap(), vec![Value::I64(7)]);
    // __heap_base global is exported.
    assert_eq!(
        store.global(h, "__heap_base"),
        Some(Value::I64(lowered.heap_base as i64))
    );
}

#[test]
fn break_and_continue_lower_correctly() {
    // count even numbers below n, skipping odds with continue and leaving
    // at n via break.
    let mut b = FunctionBuilder::new("evens", &[IrType::I64], Some(IrType::I64));
    b.set_exported(true);
    let i = b.copy(IrType::I64, Operand::ConstI64(0));
    let count = b.copy(IrType::I64, Operand::ConstI64(0));
    b.push_block();
    {
        // if i >= n break
        let done = b.binop(BinOp::GeS, IrType::I64, Operand::Value(i), b.param(0));
        b.push_block();
        b.stmt(Stmt::Break);
        let then = b.pop_block();
        b.stmt(Stmt::If {
            cond: done,
            then,
            els: vec![],
        });
        // i += 1 (pre-increment: loop variable advances before the skip)
        let ni = b.binop(
            BinOp::Add,
            IrType::I64,
            Operand::Value(i),
            Operand::ConstI64(1),
        );
        b.reassign(i, Expr::Use(ni));
        // if (i % 2) continue
        let odd = b.binop(
            BinOp::RemS,
            IrType::I64,
            Operand::Value(i),
            Operand::ConstI64(2),
        );
        let is_odd = b.binop(BinOp::Ne, IrType::I64, odd, Operand::ConstI64(0));
        b.push_block();
        b.stmt(Stmt::Continue);
        let then = b.pop_block();
        b.stmt(Stmt::If {
            cond: is_odd,
            then,
            els: vec![],
        });
        let nc = b.binop(
            BinOp::Add,
            IrType::I64,
            Operand::Value(count),
            Operand::ConstI64(1),
        );
        b.reassign(count, Expr::Use(nc));
    }
    let body = b.pop_block();
    b.stmt(Stmt::While {
        header: vec![],
        cond: Operand::ConstI32(1),
        body,
    });
    b.stmt(Stmt::Return(Some(Operand::Value(count))));
    let mut ir = IrModule::new();
    ir.functions.push(b.finish());

    let out = run_export(
        &ir,
        &LowerOptions::default(),
        ExecConfig::default(),
        "evens",
        &[Value::I64(10)],
    )
    .unwrap();
    assert_eq!(out, vec![Value::I64(5)]);
}

#[test]
fn float_math_and_casts() {
    // f(x) = sqrt(|x|) as i64
    let mut b = FunctionBuilder::new("f", &[IrType::F64], Some(IrType::I64));
    b.set_exported(true);
    let a = b.unop(UnOp::Fabs, IrType::F64, b.param(0));
    let s = b.unop(UnOp::Sqrt, IrType::F64, a);
    let i = b.assign(
        IrType::I64,
        Expr::Cast {
            kind: cage_ir::CastKind::F64ToI64S,
            operand: s,
        },
    );
    b.stmt(Stmt::Return(Some(i)));
    let mut ir = IrModule::new();
    ir.functions.push(b.finish());
    let out = run_export(
        &ir,
        &LowerOptions::default(),
        ExecConfig::default(),
        "f",
        &[Value::F64(-144.0)],
    )
    .unwrap();
    assert_eq!(out, vec![Value::I64(12)]);
}

#[test]
fn extern_calls_route_to_host_functions() {
    let mut m = IrModule::new();
    let ext = m.add_extern(cage_ir::ExternFunc {
        module: "env".into(),
        name: "triple".into(),
        params: vec![IrType::I64],
        ret: Some(IrType::I64),
    });
    let mut fb = FunctionBuilder::new("go", &[IrType::I64], Some(IrType::I64));
    fb.set_exported(true);
    let r = fb.assign(
        IrType::I64,
        Expr::Call {
            callee: Callee::Extern(ext),
            args: vec![fb.param(0)],
        },
    );
    fb.stmt(Stmt::Return(Some(r)));
    m.functions.push(fb.finish());

    let lowered = lower(&m, &LowerOptions::default()).unwrap();
    let mut imports = Imports::new();
    imports.define(
        "env",
        "triple",
        cage_engine::host::HostFunc::new(
            &[cage_wasm::ValType::I64],
            &[cage_wasm::ValType::I64],
            |_, args| Ok(vec![Value::I64(args[0].as_i64() * 3)]),
        ),
    );
    let mut store = Store::new(ExecConfig::default());
    let h = store.instantiate(&lowered.module, &imports).unwrap();
    assert_eq!(
        store.invoke(h, "go", &[Value::I64(14)]).unwrap(),
        vec![Value::I64(42)]
    );
}

#[test]
fn mem2reg_runs_before_sanitizer_so_promoted_slots_stay_untagged() {
    // §6.1: "both sanitizer passes run after all LLVM optimizations. This
    // ensures that Cage does not block passes that might remove stack
    // allocations, such as mem2reg." A scalar slot whose address never
    // escapes is promoted first and therefore never instrumented.
    let mut b = FunctionBuilder::new("f", &[], Some(IrType::I64));
    let scalar = b.alloca(8, "x");
    let p = b.alloca_addr(scalar);
    b.store(MemTy::I64, p, 0, Operand::ConstI64(5));
    let v = b.load(MemTy::I64, p, 0);
    b.stmt(Stmt::Return(Some(v)));
    let mut ir = IrModule::new();
    ir.functions.push(b.finish());

    run_pipeline(
        &mut ir,
        HardenConfig {
            stack_safety: true,
            ptr_auth: false,
        },
    );
    let f = &ir.functions[0];
    assert_eq!(f.allocas[0].size, 0, "slot promoted away by mem2reg");
    assert!(!f.allocas[0].instrument, "promoted slot never instrumented");
    let mut segment_news = 0;
    cage_ir::instr::visit_stmts(&f.body, &mut |s| {
        if let cage_ir::Stmt::Assign {
            expr: Expr::SegmentNew { .. },
            ..
        } = s
        {
            segment_news += 1;
        }
    });
    assert_eq!(segment_news, 0, "no tagging code for promoted slots");
}

#[test]
fn tag_increment_discipline_gives_distinct_adjacent_tags() {
    // §4.2: subsequent instrumented stack slots increment the first slot's
    // random tag, so adjacent slots in a frame never collide. Observable:
    // writing one past slot A lands in slot B and always traps, for every
    // seed.
    let mut b = FunctionBuilder::new("f", &[IrType::I64], Some(IrType::I64));
    b.set_exported(true);
    let a = b.alloca(16, "a");
    let c = b.alloca(16, "c");
    // Escape both so Algorithm 1 instruments them.
    let pa = b.alloca_addr(a);
    let pc = b.alloca_addr(c);
    b.stmt(Stmt::Perform(Expr::Call {
        callee: cage_ir::Callee::Extern(0),
        args: vec![pa, pc],
    }));
    // Write at a[idx] (idx in bytes) through a GEP.
    let slot = b.assign(
        IrType::Ptr,
        Expr::Gep {
            base: pa,
            index: b.param(0),
            scale: 1,
            offset: 0,
        },
    );
    b.store(MemTy::I8, slot, 0, Operand::ConstI32(7));
    b.stmt(Stmt::Return(Some(Operand::ConstI64(0))));
    let mut ir = IrModule::new();
    ir.add_extern(cage_ir::ExternFunc {
        module: "env".into(),
        name: "sink".into(),
        params: vec![IrType::Ptr, IrType::Ptr],
        ret: None,
    });
    ir.functions.push(b.finish());
    run_pipeline(
        &mut ir,
        HardenConfig {
            stack_safety: true,
            ptr_auth: false,
        },
    );
    let lowered = lower(&ir, &LowerOptions::default()).unwrap();

    for seed in 0..20u64 {
        let config = ExecConfig {
            internal: InternalSafety::Mte,
            seed,
            ..ExecConfig::default()
        };
        let mut store = cage_engine::Store::new(config);
        let mut imports = Imports::new();
        imports.define(
            "env",
            "sink",
            cage_engine::host::HostFunc::new(
                &[cage_wasm::ValType::I64, cage_wasm::ValType::I64],
                &[],
                |_, _| Ok(vec![]),
            ),
        );
        let h = store.instantiate(&lowered.module, &imports).unwrap();
        // In-bounds write is fine.
        store.invoke(h, "f", &[Value::I64(15)]).unwrap();
        // One past slot a — adjacent slot has tag+1, never equal: traps.
        let err = store.invoke(h, "f", &[Value::I64(16)]).unwrap_err();
        assert!(err.is_memory_safety_violation(), "seed {seed}: {err}");
    }
}

// ---- Prescan robustness: malformed IR errors instead of panicking ----

#[test]
fn break_outside_loop_is_an_error() {
    let mut b = FunctionBuilder::new("bad", &[], None);
    b.stmt(Stmt::Break);
    let mut m = IrModule::new();
    m.functions.push(b.finish());
    assert!(matches!(
        lower(&m, &LowerOptions::default()),
        Err(cage_ir::LowerError::Malformed("break outside loop"))
    ));
}

#[test]
fn continue_outside_loop_is_an_error() {
    let mut b = FunctionBuilder::new("bad", &[], None);
    b.stmt(Stmt::Continue);
    let mut m = IrModule::new();
    m.functions.push(b.finish());
    assert!(matches!(
        lower(&m, &LowerOptions::default()),
        Err(cage_ir::LowerError::Malformed("continue outside loop"))
    ));
}

#[test]
fn float_pointer_index_is_an_error() {
    let mut b = FunctionBuilder::new("bad", &[IrType::Ptr], Some(IrType::I64));
    let addr = b.assign(
        IrType::Ptr,
        Expr::Gep {
            base: b.param(0),
            index: Operand::ConstF64(1.5),
            scale: 8,
            offset: 0,
        },
    );
    let v = b.load(MemTy::I64, addr, 0);
    b.stmt(Stmt::Return(Some(v)));
    let mut m = IrModule::new();
    m.functions.push(b.finish());
    assert!(matches!(
        lower(&m, &LowerOptions::default()),
        Err(cage_ir::LowerError::Malformed(
            "float used as pointer index"
        ))
    ));
}

#[test]
fn integer_only_operator_on_f64_is_an_error() {
    let mut b = FunctionBuilder::new("bad", &[IrType::F64], Some(IrType::F64));
    let r = b.binop(BinOp::RemS, IrType::F64, b.param(0), Operand::ConstF64(2.0));
    b.stmt(Stmt::Return(Some(r)));
    let mut m = IrModule::new();
    m.functions.push(b.finish());
    assert!(matches!(
        lower(&m, &LowerOptions::default()),
        Err(cage_ir::LowerError::Malformed("operator undefined on f64"))
    ));
}

#[test]
fn nesting_beyond_limits_is_rejected_before_recursion() {
    // 100k nested ifs: plain `lower` would recurse over them, so the
    // limited entry point must reject the body in its iterative prescan.
    let mut b = FunctionBuilder::new("deep", &[], None);
    b.stmt(Stmt::Return(None));
    let mut f = b.finish();
    let mut body = std::mem::take(&mut f.body);
    for _ in 0..100_000 {
        body = vec![Stmt::If {
            cond: Operand::ConstI32(1),
            then: body,
            els: vec![],
        }];
    }
    f.body = body;
    let mut m = IrModule::new();
    m.functions.push(f);
    let limits = cage_wasm::CompileLimits::default();
    let err = cage_ir::lower_with_limits(&m, &LowerOptions::default(), &limits, &limits.fuel())
        .unwrap_err();
    assert!(
        matches!(err, cage_ir::LowerError::Limit(ref e) if e.what == "statement nesting depth")
    );
    // Dropping the 100k-deep tree would itself recurse through nested
    // Vec drops in some layouts; unravel it iteratively instead.
    let mut flat: Vec<Stmt> = Vec::new();
    let mut work = std::mem::take(&mut m.functions[0].body);
    while let Some(stmt) = work.pop() {
        match stmt {
            Stmt::If { then, els, .. } => {
                work.extend(then);
                work.extend(els);
            }
            other => flat.push(other),
        }
    }
    drop(flat);
}

#[test]
fn compile_fuel_exhaustion_is_reported() {
    let m = sum_array_module();
    let limits = cage_wasm::CompileLimits::default();
    let fuel = cage_wasm::CompileFuel::new(2);
    let err = cage_ir::lower_with_limits(&m, &LowerOptions::default(), &limits, &fuel).unwrap_err();
    assert!(matches!(err, cage_ir::LowerError::Limit(ref e) if e.what == "compile fuel"));
}
