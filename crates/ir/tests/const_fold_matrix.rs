//! Const-fold soundness matrix: for every integer `BinOp` × {I32, I64}
//! × boundary-constant pair, the folder's verdict is checked against
//! the engine running the *unoptimized* lowering of the same op:
//!
//! - if the folder produced a constant, the runtime must produce the
//!   same value (and must not trap);
//! - if the runtime traps, the folder must have refused to fold (the
//!   trap belongs to runtime semantics).
//!
//! This matrix fails loudly on the historical width bugs: a 64-bit
//! evaluator folds `i32.shl 1, 32` to `0` (runtime: `1`),
//! `i32.shr_u -1, 1` to `-1` (runtime: `0x7FFF_FFFF`), and
//! `i32.div_s INT_MIN, -1` to `INT_MIN` (runtime: trap).

use cage_engine::{ExecConfig, Imports, Store, Value};
use cage_ir::passes::const_fold;
use cage_ir::{
    lower, BinOp, CastKind, Expr, FunctionBuilder, IrModule, IrType, LowerOptions, Operand, Stmt,
};

const OPS: [BinOp; 23] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::DivS,
    BinOp::DivU,
    BinOp::RemS,
    BinOp::RemU,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Shl,
    BinOp::ShrS,
    BinOp::ShrU,
    BinOp::Eq,
    BinOp::Ne,
    BinOp::LtS,
    BinOp::LtU,
    BinOp::LeS,
    BinOp::LeU,
    BinOp::GtS,
    BinOp::GtU,
    BinOp::GeS,
    BinOp::GeU,
];

const I32_BOUNDARIES: [i64; 8] = [0, 1, -1, 2, 31, 32, i32::MIN as i64, i32::MAX as i64];
const I64_BOUNDARIES: [i64; 8] = [0, 1, -1, 2, 63, 64, i64::MIN, i64::MAX];

/// `return (i64)(a op b)` with both operands as literal constants.
fn build(op: BinOp, ty: IrType, a: i64, b: i64) -> IrModule {
    let mut bld = FunctionBuilder::new("f", &[], Some(IrType::I64));
    bld.set_exported(true);
    let (lhs, rhs) = match ty {
        IrType::I32 => (Operand::ConstI32(a as i32), Operand::ConstI32(b as i32)),
        _ => (Operand::ConstI64(a), Operand::ConstI64(b)),
    };
    let v = bld.binop(op, ty, lhs, rhs);
    let out = if ty == IrType::I32 || op.is_comparison() {
        bld.assign(
            IrType::I64,
            Expr::Cast {
                kind: CastKind::I32ToI64S,
                operand: v,
            },
        )
    } else {
        v
    };
    bld.stmt(Stmt::Return(Some(out)));
    let mut m = IrModule::new();
    m.functions.push(bld.finish());
    m
}

/// What the folder says: `Some(constant, sign-extended)` or `None`.
fn folded_const(op: BinOp, ty: IrType, a: i64, b: i64) -> Option<i64> {
    let mut m = build(op, ty, a, b);
    const_fold::run(&mut m.functions[0]);
    match &m.functions[0].body[0] {
        Stmt::Assign {
            expr: Expr::Use(c), ..
        } => c.as_const_int(),
        _ => None,
    }
}

/// What the engine says, with NO optimisation passes at all.
fn runtime_result(op: BinOp, ty: IrType, a: i64, b: i64) -> Result<i64, cage_engine::Trap> {
    let ir = build(op, ty, a, b);
    let lowered = lower(&ir, &LowerOptions::default()).expect("lowering");
    cage_wasm::validate(&lowered.module).expect("module validates");
    let mut store = Store::new(ExecConfig::default());
    let h = store
        .instantiate(&lowered.module, &Imports::new())
        .expect("instantiate");
    let out = store.invoke(h, "f", &[])?;
    match out.as_slice() {
        [Value::I64(v)] => Ok(*v),
        other => panic!("unexpected result shape {other:?}"),
    }
}

#[test]
fn fold_matches_runtime_for_every_op_and_boundary_pair() {
    let mut checked = 0u32;
    let mut folded = 0u32;
    let mut trapping = 0u32;
    for ty in [IrType::I32, IrType::I64] {
        let consts = match ty {
            IrType::I32 => &I32_BOUNDARIES,
            _ => &I64_BOUNDARIES,
        };
        for &op in &OPS {
            for &a in consts {
                for &b in consts {
                    checked += 1;
                    let fold = folded_const(op, ty, a, b);
                    let runtime = runtime_result(op, ty, a, b);
                    match (&fold, &runtime) {
                        (Some(f), Ok(r)) => {
                            assert_eq!(
                                f, r,
                                "{op:?} {ty:?} ({a}, {b}): folded {f:#x} != runtime {r:#x}"
                            );
                            folded += 1;
                        }
                        (Some(f), Err(trap)) => {
                            panic!(
                                "{op:?} {ty:?} ({a}, {b}): folded to {f:#x} but runtime traps \
                                 ({trap:?}) — fold must preserve the trap"
                            );
                        }
                        (None, Err(_)) => trapping += 1,
                        // Refusing to fold a non-trapping case is merely
                        // conservative; integer div/rem by zero and
                        // div_s MIN/-1 are the only expected refusals.
                        (None, Ok(_)) => {}
                    }
                }
            }
        }
    }
    assert_eq!(checked, 23 * 8 * 8 * 2);
    assert!(folded > 2000, "folder should fold most cases: {folded}");
    assert!(trapping > 0, "matrix must include trapping cases");
}
