//! Braun-style SSA construction over an abstract CFG.
//!
//! Implements the on-the-fly algorithm of Braun et al. ("Simple and
//! Efficient Construction of Static Single Assignment Form", CC 2013):
//! the client walks its input in any order, registering blocks, edges and
//! variable reads/writes; phi functions materialise on demand at join
//! points, and blocks whose predecessor sets are not yet complete (loop
//! headers during body construction) hold *incomplete* phis that are
//! resolved when the block is sealed. Trivial phis (all operands equal)
//! are replaced by their unique operand through a redirection map —
//! [`SsaBuilder::resolve`] follows the chain — rather than by rewriting
//! uses in place, so the client can resolve its own instruction operands
//! once, after [`SsaBuilder::finish`].
//!
//! Everything is `u32` identifiers: the client owns the meaning of
//! variables and values. Deterministic by construction (`BTreeMap`
//! state, no hashing-order dependence), which matters because the engine
//! derives bytecode — and ultimately the cycle-golden file — from the
//! output.

use std::collections::BTreeMap;

/// A client-defined variable (e.g. a wasm local index).
pub type Var = u32;
/// A basic-block identifier handed out by [`SsaBuilder::new_block`].
pub type Block = u32;
/// An SSA value identifier handed out by [`SsaBuilder::new_value`] (or
/// internally for phis).
pub type Value = u32;

/// The value of a read with no reaching definition (only possible in
/// statically unreachable code): a phi over zero predecessors resolves
/// to this.
pub const UNDEF: Value = u32::MAX;

#[derive(Debug, Default)]
struct BlockData {
    preds: Vec<Block>,
    sealed: bool,
    defs: BTreeMap<Var, Value>,
    /// Phis created before the predecessor set was complete, awaiting
    /// [`SsaBuilder::seal_block`].
    incomplete: Vec<(Var, Value)>,
}

#[derive(Debug)]
struct PhiData {
    block: Block,
    /// `(predecessor, value)` — one entry per predecessor edge.
    operands: Vec<(Block, Value)>,
}

/// One frame of the explicit reaching-definition walk
/// ([`SsaBuilder::run_read`]); replaces the recursion of Braun et al.'s
/// `readVariableRecursive`/`addPhiOperands` pair.
enum Walk {
    /// Resolve the variable's value at the end of `block`.
    Read { block: Block },
    /// A single-predecessor chain hop: once the predecessor's value is
    /// known, memoize it in `block` too.
    Store { block: Block },
    /// Fill `phi`'s operands from `preds`; `next` predecessors have been
    /// dispatched so far. `write_back` distinguishes a read-triggered
    /// phi (memoize the resolved value in the block's def map) from a
    /// seal-triggered completion (leave the def map alone).
    Fill {
        phi: Value,
        block: Block,
        preds: Vec<Block>,
        next: usize,
        write_back: bool,
    },
}

/// Incremental SSA builder. See the module docs for the protocol:
/// create blocks, add predecessor edges, read/write variables, seal each
/// block once its predecessors are final, then call
/// [`SsaBuilder::finish`] and resolve operands.
#[derive(Debug, Default)]
pub struct SsaBuilder {
    next_value: u32,
    blocks: Vec<BlockData>,
    phis: BTreeMap<Value, PhiData>,
    replaced: BTreeMap<Value, Value>,
}

impl SsaBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh value id for a client-side definition.
    pub fn new_value(&mut self) -> Value {
        let v = self.next_value;
        self.next_value += 1;
        v
    }

    /// Creates a new, unsealed block with no predecessors.
    pub fn new_block(&mut self) -> Block {
        let b = self.blocks.len() as Block;
        self.blocks.push(BlockData::default());
        b
    }

    /// Registers a control-flow edge `pred -> block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` is already sealed.
    pub fn add_pred(&mut self, block: Block, pred: Block) {
        let data = &mut self.blocks[block as usize];
        assert!(!data.sealed, "edge added to sealed block {block}");
        data.preds.push(pred);
    }

    /// Number of predecessor edges registered for `block`.
    #[must_use]
    pub fn pred_count(&self, block: Block) -> usize {
        self.blocks[block as usize].preds.len()
    }

    /// Records that `var` holds `value` at the end of `block`.
    pub fn write_var(&mut self, var: Var, block: Block, value: Value) {
        self.blocks[block as usize].defs.insert(var, value);
    }

    /// The value of `var` at the current end of `block`, creating phis
    /// as needed. Returns [`UNDEF`] only for reads in unreachable code.
    ///
    /// The reaching-definition walk over predecessor chains runs on an
    /// explicit work stack: its depth scales with the longest acyclic
    /// CFG path (one hop per block for straight-line chains, one per
    /// join for branchy code), so a recursive walk would overflow the
    /// host stack on pathological but valid inputs — e.g. a variable
    /// defined once and read after a hundred thousand sequential `if`s.
    pub fn read_var(&mut self, var: Var, block: Block) -> Value {
        self.run_read(var, Walk::Read { block })
    }

    /// Marks the predecessor set of `block` as final, completing any
    /// phis created while it was open (loop headers).
    ///
    /// # Panics
    ///
    /// Panics if `block` is already sealed.
    pub fn seal_block(&mut self, block: Block) {
        let data = &mut self.blocks[block as usize];
        assert!(!data.sealed, "block {block} sealed twice");
        data.sealed = true;
        let incomplete = std::mem::take(&mut data.incomplete);
        for (var, phi) in incomplete {
            let block = self.phis[&phi].block;
            let preds = self.blocks[block as usize].preds.clone();
            // Seal-time completion leaves the block's def map alone: the
            // phi stays recorded and redirects through `replaced` if it
            // turns out trivial.
            self.run_read(
                var,
                Walk::Fill {
                    phi,
                    block,
                    preds,
                    next: 0,
                    write_back: false,
                },
            );
        }
    }

    /// The iterative engine behind [`SsaBuilder::read_var`] and
    /// [`SsaBuilder::seal_block`]: a faithful explicit-stack rendering
    /// of Braun et al.'s mutually recursive `readVariable` /
    /// `addPhiOperands`, preserving the exact order of value allocation
    /// and operand insertion (the bytecode derived from this feeds the
    /// cycle golden file).
    fn run_read(&mut self, var: Var, start: Walk) -> Value {
        let mut stack = vec![start];
        // The value produced by the most recently completed frame.
        let mut ret = UNDEF;
        while let Some(top) = stack.last_mut() {
            match top {
                Walk::Read { block } => {
                    let block = *block;
                    stack.pop();
                    if let Some(&v) = self.blocks[block as usize].defs.get(&var) {
                        ret = self.resolve(v);
                        continue;
                    }
                    let data = &self.blocks[block as usize];
                    if !data.sealed {
                        let phi = self.new_phi(block);
                        self.blocks[block as usize].incomplete.push((var, phi));
                        self.write_var(var, block, phi);
                        ret = phi;
                    } else if data.preds.is_empty() {
                        self.write_var(var, block, UNDEF);
                        ret = UNDEF;
                    } else if data.preds.len() == 1 {
                        let p = data.preds[0];
                        stack.push(Walk::Store { block });
                        stack.push(Walk::Read { block: p });
                    } else {
                        // Break potential cycles (loops) by writing the
                        // phi before collecting its operands.
                        let preds = data.preds.clone();
                        let phi = self.new_phi(block);
                        self.write_var(var, block, phi);
                        stack.push(Walk::Fill {
                            phi,
                            block,
                            preds,
                            next: 0,
                            write_back: true,
                        });
                    }
                }
                Walk::Store { block } => {
                    let block = *block;
                    stack.pop();
                    self.write_var(var, block, ret);
                }
                Walk::Fill {
                    phi,
                    block,
                    preds,
                    next,
                    write_back,
                } => {
                    if *next > 0 {
                        // A predecessor read just completed: record it.
                        let p = preds[*next - 1];
                        let (phi, value) = (*phi, ret);
                        self.phis
                            .get_mut(&phi)
                            .expect("phi live while adding operands")
                            .operands
                            .push((p, value));
                    }
                    if *next < preds.len() {
                        let p = preds[*next];
                        *next += 1;
                        stack.push(Walk::Read { block: p });
                    } else {
                        let (phi, block, write_back) = (*phi, *block, *write_back);
                        stack.pop();
                        let resolved = self.try_remove_trivial(phi);
                        if write_back {
                            self.write_var(var, block, resolved);
                        }
                        ret = resolved;
                    }
                }
            }
        }
        ret
    }

    /// Creates an operand-less phi in `block` for the client to fill via
    /// [`SsaBuilder::add_phi_operand`] (used for block-result values,
    /// where the merged value lives on the operand stack rather than in
    /// a variable).
    pub fn new_phi(&mut self, block: Block) -> Value {
        let v = self.new_value();
        self.phis.insert(
            v,
            PhiData {
                block,
                operands: Vec::new(),
            },
        );
        v
    }

    /// Appends the operand `value` flowing into phi `phi` along the edge
    /// from `pred`.
    ///
    /// # Panics
    ///
    /// Panics if `phi` is not a live phi.
    pub fn add_phi_operand(&mut self, phi: Value, pred: Block, value: Value) {
        self.phis
            .get_mut(&phi)
            .expect("operand added to non-phi value")
            .operands
            .push((pred, value));
    }

    /// Replaces `phi` by its unique operand when all operands agree
    /// (ignoring self-references); returns the surviving value.
    fn try_remove_trivial(&mut self, phi: Value) -> Value {
        let mut same: Option<Value> = None;
        for i in 0..self.phis[&phi].operands.len() {
            let (_, raw) = self.phis[&phi].operands[i];
            let v = self.resolve(raw);
            if v == phi || Some(v) == same || v == UNDEF {
                continue;
            }
            if same.is_some() {
                return phi; // two distinct operands: not trivial
            }
            same = Some(v);
        }
        let same = same.unwrap_or(UNDEF);
        self.phis.remove(&phi);
        self.replaced.insert(phi, same);
        same
    }

    /// Follows the trivial-phi redirection chain from `v` to the value
    /// that actually carries it.
    #[must_use]
    pub fn resolve(&self, mut v: Value) -> Value {
        while let Some(&r) = self.replaced.get(&v) {
            v = r;
        }
        v
    }

    /// Runs trivial-phi elimination to a fixpoint. The on-the-fly
    /// algorithm can leave a phi that only *became* trivial when one of
    /// its operand phis was removed (no use lists are maintained); such
    /// leftovers are correct but redundant, and this pass removes them.
    /// Call once after construction, before reading phis back.
    pub fn finish(&mut self) {
        loop {
            let mut changed = false;
            let ids: Vec<Value> = self.phis.keys().copied().collect();
            for id in ids {
                if self.phis.contains_key(&id) && self.try_remove_trivial(id) != id {
                    changed = true;
                }
            }
            if !changed {
                return;
            }
        }
    }

    /// Whether `v` is a (surviving) phi.
    #[must_use]
    pub fn is_phi(&self, v: Value) -> bool {
        self.phis.contains_key(&v)
    }

    /// The surviving phis of `block`, in ascending value order.
    #[must_use]
    pub fn phis_in(&self, block: Block) -> Vec<Value> {
        self.phis
            .iter()
            .filter(|(_, d)| d.block == block)
            .map(|(&v, _)| v)
            .collect()
    }

    /// The resolved `(predecessor, value)` operands of phi `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a surviving phi.
    #[must_use]
    pub fn phi_operands(&self, v: Value) -> Vec<(Block, Value)> {
        self.phis[&v]
            .operands
            .iter()
            .map(|&(p, val)| (p, self.resolve(val)))
            .collect()
    }

    /// Total number of value ids allocated.
    #[must_use]
    pub fn num_values(&self) -> u32 {
        self.next_value
    }
}

/// Orders a parallel copy set (semantics: all sources are read before
/// any destination is written) into a sequential move list, breaking
/// swap cycles through the reserved `scratch` location.
///
/// Destinations must be distinct; `dst == src` self-copies are dropped.
/// This is the phi-elimination step: each predecessor of a join runs one
/// parallel copy writing every phi of the join, and the sequentialised
/// form is what the register bytecode actually executes.
#[must_use]
pub fn sequence_parallel_copies(copies: &[(u16, u16)], scratch: u16) -> Vec<(u16, u16)> {
    let mut pending: Vec<(u16, u16)> = copies.iter().copied().filter(|(d, s)| d != s).collect();
    let mut out = Vec::with_capacity(pending.len() + 1);
    while !pending.is_empty() {
        // Emit any copy whose destination no other pending copy still
        // reads; if none exists every destination is also a source — a
        // cycle — so park one value in scratch to open it.
        if let Some(i) = (0..pending.len()).find(|&i| {
            let d = pending[i].0;
            pending.iter().all(|&(_, s)| s != d)
        }) {
            out.push(pending.remove(i));
        } else {
            let d = pending[0].0;
            out.push((scratch, d));
            for c in &mut pending {
                if c.1 == d {
                    c.1 = scratch;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_reads_see_writes() {
        let mut b = SsaBuilder::new();
        let entry = b.new_block();
        b.seal_block(entry);
        let v0 = b.new_value();
        b.write_var(0, entry, v0);
        assert_eq!(b.read_var(0, entry), v0);
    }

    #[test]
    fn diamond_join_creates_phi() {
        let mut b = SsaBuilder::new();
        let entry = b.new_block();
        b.seal_block(entry);
        let (then_b, else_b, join) = (b.new_block(), b.new_block(), b.new_block());
        b.add_pred(then_b, entry);
        b.add_pred(else_b, entry);
        b.seal_block(then_b);
        b.seal_block(else_b);
        let (t, e) = (b.new_value(), b.new_value());
        b.write_var(0, then_b, t);
        b.write_var(0, else_b, e);
        b.add_pred(join, then_b);
        b.add_pred(join, else_b);
        b.seal_block(join);
        let v = b.read_var(0, join);
        b.finish();
        assert!(b.is_phi(v));
        assert_eq!(b.phi_operands(v), vec![(then_b, t), (else_b, e)]);
        assert_eq!(b.phis_in(join), vec![v]);
    }

    #[test]
    fn diamond_with_equal_values_is_trivial() {
        let mut b = SsaBuilder::new();
        let entry = b.new_block();
        b.seal_block(entry);
        let v0 = b.new_value();
        b.write_var(0, entry, v0);
        let (then_b, else_b, join) = (b.new_block(), b.new_block(), b.new_block());
        for arm in [then_b, else_b] {
            b.add_pred(arm, entry);
            b.seal_block(arm);
            b.add_pred(join, arm);
        }
        b.seal_block(join);
        let v = b.read_var(0, join);
        b.finish();
        assert_eq!(b.resolve(v), v0);
        assert!(b.phis_in(join).is_empty());
    }

    #[test]
    fn loop_header_phi_resolves_at_seal() {
        // entry -> header <-> body; header also exits. The variable is
        // incremented in the body, so the header phi is non-trivial.
        let mut b = SsaBuilder::new();
        let entry = b.new_block();
        b.seal_block(entry);
        let v0 = b.new_value();
        b.write_var(0, entry, v0);
        let header = b.new_block();
        b.add_pred(header, entry);
        let body = b.new_block();
        b.add_pred(body, header);
        b.seal_block(body);
        let at_top = b.read_var(0, header); // incomplete phi
        let inc = b.new_value();
        b.write_var(0, body, inc);
        b.add_pred(header, body);
        b.seal_block(header);
        b.finish();
        assert!(b.is_phi(at_top));
        assert_eq!(b.phi_operands(at_top), vec![(entry, v0), (body, inc)]);
    }

    #[test]
    fn loop_invariant_variable_needs_no_phi() {
        let mut b = SsaBuilder::new();
        let entry = b.new_block();
        b.seal_block(entry);
        let v0 = b.new_value();
        b.write_var(0, entry, v0);
        let header = b.new_block();
        b.add_pred(header, entry);
        let body = b.new_block();
        b.add_pred(body, header);
        b.seal_block(body);
        let at_top = b.read_var(0, header);
        // No write in the body: the back edge carries the same value.
        b.add_pred(header, body);
        b.seal_block(header);
        b.finish();
        assert_eq!(b.resolve(at_top), v0);
    }

    #[test]
    fn unreachable_read_is_undef() {
        let mut b = SsaBuilder::new();
        let orphan = b.new_block();
        b.seal_block(orphan);
        assert_eq!(b.read_var(7, orphan), UNDEF);
    }

    #[test]
    fn deep_single_pred_chain_reads_without_recursion() {
        // 200k straight-line blocks: the variable is written once at the
        // top and read at the bottom. The read walk must traverse the
        // whole chain with its explicit stack — the old recursive
        // implementation overflowed the host stack around 100k here.
        let mut b = SsaBuilder::new();
        let entry = b.new_block();
        b.seal_block(entry);
        let v0 = b.new_value();
        b.write_var(0, entry, v0);
        let mut prev = entry;
        for _ in 0..200_000 {
            let blk = b.new_block();
            b.add_pred(blk, prev);
            b.seal_block(blk);
            prev = blk;
        }
        let got = b.read_var(0, prev);
        assert_eq!(b.resolve(got), v0);
    }

    #[test]
    fn deep_diamond_chain_seals_without_recursion() {
        // 100k sequential diamonds, each writing the variable in one arm:
        // every join needs a phi whose operands come from the previous
        // join's phi — the longest acyclic chain the seal path walks.
        let mut b = SsaBuilder::new();
        let entry = b.new_block();
        b.seal_block(entry);
        let v0 = b.new_value();
        b.write_var(0, entry, v0);
        let mut prev = entry;
        for _ in 0..100_000 {
            let (t, e, join) = (b.new_block(), b.new_block(), b.new_block());
            b.add_pred(t, prev);
            b.add_pred(e, prev);
            b.seal_block(t);
            b.seal_block(e);
            let w = b.new_value();
            b.write_var(0, t, w);
            b.add_pred(join, t);
            b.add_pred(join, e);
            b.seal_block(join);
            prev = join;
        }
        let v = b.read_var(0, prev);
        b.finish();
        assert!(b.is_phi(v));
    }

    #[test]
    fn parallel_copies_emit_in_dependency_order() {
        // b <- a must run before a is clobbered by a <- c.
        let out = sequence_parallel_copies(&[(0, 2), (1, 0)], 9);
        assert_eq!(out, vec![(1, 0), (0, 2)]);
    }

    #[test]
    fn parallel_copy_swap_goes_through_scratch() {
        let out = sequence_parallel_copies(&[(0, 1), (1, 0)], 9);
        assert_eq!(out, vec![(9, 0), (0, 1), (1, 9)]);
    }

    #[test]
    fn parallel_copy_three_cycle() {
        let out = sequence_parallel_copies(&[(0, 1), (1, 2), (2, 0)], 9);
        // Simulate to verify: start r0=100, r1=101, r2=102.
        let mut regs = [100u64, 101, 102, 0, 0, 0, 0, 0, 0, 0];
        for (d, s) in out {
            regs[d as usize] = regs[s as usize];
        }
        assert_eq!(&regs[..3], &[101, 102, 100]);
    }

    #[test]
    fn self_copies_are_dropped() {
        assert!(sequence_parallel_copies(&[(3, 3)], 9).is_empty());
    }
}
