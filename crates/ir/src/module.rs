//! IR module and function containers.

use crate::instr::Stmt;
use crate::types::IrType;

/// A virtual register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub u32);

/// A stack allocation within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AllocaId(pub u32);

/// A function defined in the module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

/// A global data object (placed in linear memory at layout time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalId(pub u32);

/// A stack allocation: C locals whose address is taken, arrays, structs.
#[derive(Debug, Clone, PartialEq)]
pub struct Alloca {
    /// Requested size in bytes (padded to 16 at lowering when tagged).
    pub size: u64,
    /// Debug name.
    pub name: String,
    /// Set by the stack-safety pass: wrap this allocation in a segment.
    pub instrument: bool,
    /// Marks the synthetic untagged guard slot (Fig. 8b).
    pub is_guard: bool,
}

/// An imported function (resolved to a host function at instantiation).
#[derive(Debug, Clone, PartialEq)]
pub struct ExternFunc {
    /// Import module namespace.
    pub module: String,
    /// Import name.
    pub name: String,
    /// Parameter types.
    pub params: Vec<IrType>,
    /// Result type.
    pub ret: Option<IrType>,
}

/// A global data object: initial bytes living in linear memory.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalData {
    /// Debug name.
    pub name: String,
    /// Initial contents (also fixes the size).
    pub bytes: Vec<u8>,
    /// Alignment requirement.
    pub align: u64,
}

/// A function under compilation.
#[derive(Debug, Clone, PartialEq)]
pub struct IrFunction {
    /// Symbol name.
    pub name: String,
    /// Parameter types (registers `0..params.len()`).
    pub params: Vec<IrType>,
    /// Result type.
    pub ret: Option<IrType>,
    /// Stack allocations, in frame order.
    pub allocas: Vec<Alloca>,
    /// Types of all virtual registers (parameters first).
    pub value_types: Vec<IrType>,
    /// Structured body.
    pub body: Vec<Stmt>,
    /// Whether the function is exported from the module.
    pub exported: bool,
}

impl IrFunction {
    /// Allocates a fresh virtual register of type `ty`.
    pub fn new_value(&mut self, ty: IrType) -> ValueId {
        self.value_types.push(ty);
        ValueId((self.value_types.len() - 1) as u32)
    }

    /// The type of register `v`.
    ///
    /// # Panics
    ///
    /// Panics when `v` is out of range.
    #[must_use]
    pub fn value_type(&self, v: ValueId) -> IrType {
        self.value_types[v.0 as usize]
    }
}

/// A whole IR module.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IrModule {
    /// Imported functions.
    pub externs: Vec<ExternFunc>,
    /// Defined functions.
    pub functions: Vec<IrFunction>,
    /// Global data objects.
    pub globals: Vec<GlobalData>,
}

impl IrModule {
    /// An empty module.
    #[must_use]
    pub fn new() -> Self {
        IrModule::default()
    }

    /// Looks up a function by name.
    #[must_use]
    pub fn function(&self, name: &str) -> Option<(FuncId, &IrFunction)> {
        self.functions
            .iter()
            .enumerate()
            .find(|(_, f)| f.name == name)
            .map(|(i, f)| (FuncId(i as u32), f))
    }

    /// Registers an extern; returns its index. Reuses an existing entry
    /// with the same module/name.
    pub fn add_extern(&mut self, ext: ExternFunc) -> u32 {
        if let Some(i) = self
            .externs
            .iter()
            .position(|e| e.module == ext.module && e.name == ext.name)
        {
            return i as u32;
        }
        self.externs.push(ext);
        (self.externs.len() - 1) as u32
    }

    /// Adds a global data object; returns its id.
    pub fn add_global(&mut self, name: &str, bytes: Vec<u8>, align: u64) -> GlobalId {
        self.globals.push(GlobalData {
            name: name.to_string(),
            bytes,
            align,
        });
        GlobalId((self.globals.len() - 1) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_value_assigns_sequential_ids() {
        let mut f = IrFunction {
            name: "f".into(),
            params: vec![IrType::I64],
            ret: None,
            allocas: vec![],
            value_types: vec![IrType::I64],
            body: vec![],
            exported: false,
        };
        let v = f.new_value(IrType::F64);
        assert_eq!(v, ValueId(1));
        assert_eq!(f.value_type(v), IrType::F64);
    }

    #[test]
    fn extern_deduplication() {
        let mut m = IrModule::new();
        let a = m.add_extern(ExternFunc {
            module: "cage_libc".into(),
            name: "malloc".into(),
            params: vec![IrType::I64],
            ret: Some(IrType::Ptr),
        });
        let b = m.add_extern(ExternFunc {
            module: "cage_libc".into(),
            name: "malloc".into(),
            params: vec![IrType::I64],
            ret: Some(IrType::Ptr),
        });
        assert_eq!(a, b);
        assert_eq!(m.externs.len(), 1);
    }

    #[test]
    fn function_lookup() {
        let mut m = IrModule::new();
        m.functions.push(IrFunction {
            name: "main".into(),
            params: vec![],
            ret: Some(IrType::I32),
            allocas: vec![],
            value_types: vec![],
            body: vec![],
            exported: true,
        });
        assert_eq!(m.function("main").unwrap().0, FuncId(0));
        assert!(m.function("ghost").is_none());
    }
}
