//! # cage-ir — the compiler middle-end of the Cage toolchain
//!
//! Stands in for the paper's LLVM 17 layer (§6.1): a small structured IR
//! with stack allocations (`alloca`s), address arithmetic (GEPs), calls and
//! function pointers — exactly the constructs Cage's two sanitizer passes
//! inspect — plus a lowering to `cage-wasm` that plays the role of LLVM's
//! WASM backend emitting the new Cage instructions.
//!
//! The two paper passes are implemented faithfully:
//!
//! * [`passes::stack_safety`] — Algorithm 1: finds stack allocations that
//!   escape or are addressed through statically unverifiable GEPs, wraps
//!   them in segments (`segment.new` on entry, retag-to-frame on every
//!   exit) and inserts the untagged guard slot that prevents adjacent-frame
//!   tag collisions (Fig. 8b).
//! * [`passes::ptr_auth`] — signs every function address at creation and
//!   authenticates before every indirect call (Fig. 9's instruction
//!   sequence appears at lowering).
//!
//! Utility passes (`mem2reg`, constant folding, DCE) run *before* the
//! sanitizers, mirroring the paper's pipeline ("both sanitizer passes run
//! after all LLVM optimizations", §6.1).
//!
//! The crate also hosts the generic machinery behind the engine's
//! register-bytecode tier: [`ssa`] (Braun-style SSA construction and
//! parallel-copy sequencing for phi elimination) and [`regalloc`]
//! (block liveness and linear-scan slot assignment).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod builder;
pub mod instr;
pub mod lower;
pub mod module;
pub mod passes;
pub mod regalloc;
pub mod ssa;
pub mod types;

pub use builder::FunctionBuilder;
pub use instr::{BinOp, Callee, CastKind, Expr, MemTy, Operand, Stmt, UnOp};
pub use lower::{lower, lower_with_limits, LowerError, LowerOptions, PtrWidth};
pub use module::{
    Alloca, AllocaId, ExternFunc, FuncId, GlobalData, GlobalId, IrFunction, IrModule, ValueId,
};
pub use types::IrType;
