//! IR value types.

use std::fmt;

/// A first-class IR value type.
///
/// `Ptr` abstracts over the pointer width: it lowers to `i64` on wasm64
/// (where Cage's metadata bits live) and to `i32` on wasm32 baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IrType {
    /// 32-bit integer (C `int`, comparison results).
    I32,
    /// 64-bit integer (C `long long`, sizes).
    I64,
    /// 64-bit float (C `double`).
    F64,
    /// A linear-memory pointer.
    Ptr,
}

impl fmt::Display for IrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            IrType::I32 => "i32",
            IrType::I64 => "i64",
            IrType::F64 => "f64",
            IrType::Ptr => "ptr",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(IrType::Ptr.to_string(), "ptr");
        assert_eq!(IrType::F64.to_string(), "f64");
    }
}
