//! IR statements, expressions and operators.
//!
//! The IR is a structured register machine: values are virtual registers
//! assigned by [`Stmt::Assign`]; control flow is well-nested (`If`,
//! `While`, `Break`, `Continue`, `Return`), mirroring both C's and WASM's
//! structure so lowering is mechanical.

use crate::module::{AllocaId, FuncId, GlobalId, ValueId};
use crate::types::IrType;

/// Memory access granularity and interpretation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemTy {
    /// 1 byte, sign-extended to i32 (C `signed char`).
    I8,
    /// 1 byte, zero-extended to i32 (C `unsigned char`).
    U8,
    /// 2 bytes, sign-extended to i32 (C `short`).
    I16,
    /// 4 bytes as i32 (C `int`).
    I32,
    /// 8 bytes as i64 (C `long long`).
    I64,
    /// 8 bytes as f64 (C `double`).
    F64,
    /// A pointer: width resolved by the lowering target (8 on wasm64,
    /// 4 on wasm32). [`MemTy::width`] reports the conservative maximum.
    Ptr,
}

impl MemTy {
    /// Access width in bytes.
    #[must_use]
    pub fn width(self) -> u64 {
        match self {
            MemTy::I8 | MemTy::U8 => 1,
            MemTy::I16 => 2,
            MemTy::I32 => 4,
            MemTy::I64 | MemTy::F64 | MemTy::Ptr => 8,
        }
    }

    /// Register type of the loaded/stored value.
    #[must_use]
    pub fn value_type(self) -> IrType {
        match self {
            MemTy::I8 | MemTy::U8 | MemTy::I16 | MemTy::I32 => IrType::I32,
            MemTy::I64 => IrType::I64,
            MemTy::F64 => IrType::F64,
            MemTy::Ptr => IrType::Ptr,
        }
    }
}

/// Binary operators. Integer ops interpret their operands by the
/// expression's type; comparisons yield `i32` 0/1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    DivS,
    DivU,
    RemS,
    RemU,
    And,
    Or,
    Xor,
    Shl,
    ShrS,
    ShrU,
    Eq,
    Ne,
    LtS,
    LtU,
    LeS,
    LeU,
    GtS,
    GtU,
    GeS,
    GeU,
}

impl BinOp {
    /// Whether the result is an `i32` boolean regardless of operand type.
    #[must_use]
    pub fn is_comparison(self) -> bool {
        use BinOp::*;
        matches!(
            self,
            Eq | Ne | LtS | LtU | LeS | LeU | GtS | GtU | GeS | GeU
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (`x == 0`), yields i32.
    Not,
    /// Bitwise complement.
    BitNot,
    /// Float square root.
    Sqrt,
    /// Float absolute value.
    Fabs,
}

/// A use of a value: register or constant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Operand {
    /// A virtual register.
    Value(ValueId),
    /// i32 constant.
    ConstI32(i32),
    /// i64 constant.
    ConstI64(i64),
    /// f64 constant.
    ConstF64(f64),
}

impl Operand {
    /// The constant value if this is an integer constant.
    #[must_use]
    pub fn as_const_int(&self) -> Option<i64> {
        match self {
            Operand::ConstI32(v) => Some(i64::from(*v)),
            Operand::ConstI64(v) => Some(*v),
            _ => None,
        }
    }

    /// The register if this is a value use.
    #[must_use]
    pub fn as_value(&self) -> Option<ValueId> {
        match self {
            Operand::Value(v) => Some(*v),
            _ => None,
        }
    }
}

/// Call target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Callee {
    /// A function defined in this module.
    Local(FuncId),
    /// An imported (host) function.
    Extern(u32),
}

/// Conversions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum CastKind {
    I32ToI64S,
    I32ToI64U,
    I64ToI32,
    I32ToF64S,
    I64ToF64S,
    F64ToI32S,
    F64ToI64S,
    /// Pointer <-> integer of pointer width (no-op bit cast at lowering).
    PtrToInt,
    /// Integer of pointer width -> pointer.
    IntToPtr,
}

/// Right-hand sides of assignments.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Pass a value/constant through.
    Use(Operand),
    /// Binary operation on `ty` operands.
    BinOp {
        /// Operator.
        op: BinOp,
        /// Operand interpretation.
        ty: IrType,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// Unary operation.
    UnOp {
        /// Operator.
        op: UnOp,
        /// Operand type.
        ty: IrType,
        /// Operand.
        operand: Operand,
    },
    /// Load from linear memory.
    Load {
        /// Access type.
        ty: MemTy,
        /// Address operand (a `Ptr`).
        addr: Operand,
        /// Constant byte offset folded into the access.
        offset: u64,
    },
    /// Address of a stack allocation.
    AllocaAddr(AllocaId),
    /// Address of a global data object.
    GlobalAddr(GlobalId),
    /// `base + index * scale + offset` address arithmetic (the GEP).
    Gep {
        /// Base pointer.
        base: Operand,
        /// Dynamic index (may be a constant operand).
        index: Operand,
        /// Element size.
        scale: u64,
        /// Constant byte offset.
        offset: u64,
    },
    /// Direct call.
    Call {
        /// Target.
        callee: Callee,
        /// Arguments.
        args: Vec<Operand>,
    },
    /// Indirect call through a function pointer.
    CallIndirect {
        /// Function pointer operand.
        target: Operand,
        /// Signature: parameter types.
        params: Vec<IrType>,
        /// Signature: result type.
        ret: Option<IrType>,
        /// Arguments.
        args: Vec<Operand>,
    },
    /// Take the address of a function (a table index at lowering).
    FuncAddr(FuncId),
    /// Conversion.
    Cast {
        /// Conversion kind.
        kind: CastKind,
        /// Operand.
        operand: Operand,
    },
    /// Cage: `segment.new` — returns the tagged pointer.
    SegmentNew {
        /// Segment base (16-byte aligned).
        addr: Operand,
        /// Segment length (16-byte multiple).
        len: Operand,
    },
    /// Cage: derive a tagged pointer for `addr` whose tag is `prev`'s tag
    /// plus one, wrapping 15 -> 1 — the stack-tagging discipline of §4.2
    /// ("subsequent stack allocations use this tag and increment it by
    /// one"), which guarantees adjacent slots in a frame never collide.
    TagIncrement {
        /// Pointer carrying the previous slot's tag.
        prev: Operand,
        /// Raw (untagged) address of the new slot.
        addr: Operand,
    },
    /// Cage: `i64.pointer_sign`.
    PointerSign(Operand),
    /// Cage: `i64.pointer_auth`.
    PointerAuth(Operand),
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `dst = expr`.
    Assign {
        /// Destination register.
        dst: ValueId,
        /// Right-hand side.
        expr: Expr,
    },
    /// Evaluate a call for its side effects, discarding any result.
    Perform(Expr),
    /// Store to linear memory.
    Store {
        /// Access type.
        ty: MemTy,
        /// Address operand.
        addr: Operand,
        /// Constant byte offset.
        offset: u64,
        /// Value to store.
        value: Operand,
    },
    /// Two-armed conditional.
    If {
        /// i32 condition.
        cond: Operand,
        /// Then branch.
        then: Vec<Stmt>,
        /// Else branch.
        els: Vec<Stmt>,
    },
    /// `while` loop: `header` recomputes the condition each iteration.
    While {
        /// Statements recomputing the condition.
        header: Vec<Stmt>,
        /// i32 condition operand (defined by `header` or constant).
        cond: Operand,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Exit the innermost loop.
    Break,
    /// Next iteration of the innermost loop.
    Continue,
    /// Return from the function.
    Return(Option<Operand>),
    /// Cage: `segment.set_tag` — retag `addr` with `tagged`'s tag.
    SegmentSetTag {
        /// Region base.
        addr: Operand,
        /// Pointer carrying the new tag.
        tagged: Operand,
        /// Region length.
        len: Operand,
    },
    /// Cage: `segment.free`.
    SegmentFree {
        /// Tagged segment pointer.
        ptr: Operand,
        /// Segment length.
        len: Operand,
    },
}

/// Walks all statements in a body depth-first, mutably.
pub fn visit_stmts_mut(body: &mut [Stmt], f: &mut impl FnMut(&mut Stmt)) {
    for stmt in body.iter_mut() {
        f(stmt);
        match stmt {
            Stmt::If { then, els, .. } => {
                visit_stmts_mut(then, f);
                visit_stmts_mut(els, f);
            }
            Stmt::While { header, body, .. } => {
                visit_stmts_mut(header, f);
                visit_stmts_mut(body, f);
            }
            _ => {}
        }
    }
}

/// Walks all statements depth-first, immutably.
pub fn visit_stmts(body: &[Stmt], f: &mut impl FnMut(&Stmt)) {
    for stmt in body {
        f(stmt);
        match stmt {
            Stmt::If { then, els, .. } => {
                visit_stmts(then, f);
                visit_stmts(els, f);
            }
            Stmt::While { header, body, .. } => {
                visit_stmts(header, f);
                visit_stmts(body, f);
            }
            _ => {}
        }
    }
}

/// Calls `f` on every expression in a statement (not recursing into nested
/// statement bodies — combine with [`visit_stmts`]).
pub fn visit_exprs(stmt: &Stmt, f: &mut impl FnMut(&Expr)) {
    match stmt {
        Stmt::Assign { expr, .. } | Stmt::Perform(expr) => f(expr),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memty_metadata() {
        assert_eq!(MemTy::I8.width(), 1);
        assert_eq!(MemTy::I8.value_type(), IrType::I32);
        assert_eq!(MemTy::F64.width(), 8);
        assert_eq!(MemTy::F64.value_type(), IrType::F64);
    }

    #[test]
    fn comparison_predicate() {
        assert!(BinOp::LtU.is_comparison());
        assert!(!BinOp::Add.is_comparison());
    }

    #[test]
    fn operand_accessors() {
        assert_eq!(Operand::ConstI32(-3).as_const_int(), Some(-3));
        assert_eq!(Operand::ConstI64(9).as_const_int(), Some(9));
        assert_eq!(Operand::ConstF64(1.0).as_const_int(), None);
        assert_eq!(Operand::Value(ValueId(4)).as_value(), Some(ValueId(4)));
    }

    #[test]
    fn visitor_reaches_nested_statements() {
        let mut body = vec![Stmt::While {
            header: vec![],
            cond: Operand::ConstI32(1),
            body: vec![Stmt::If {
                cond: Operand::ConstI32(0),
                then: vec![Stmt::Break],
                els: vec![Stmt::Continue],
            }],
        }];
        let mut count = 0;
        visit_stmts_mut(&mut body, &mut |_| count += 1);
        assert_eq!(count, 4);
    }
}
