//! Alloca analyses backing Algorithm 1: escape analysis and
//! statically-unverifiable-GEP detection.
//!
//! The paper instruments a stack allocation when it (i) escapes the
//! function or (ii) is addressed through a GEP the compiler cannot verify
//! statically; everything else keeps its zero-cost untagged slot (§4.2
//! "Cage omits the instrumentation of stack allocations that (i) do not
//! escape the function or (ii) are only accessed using statically
//! verifiable indices").

use std::collections::{BTreeMap, BTreeSet};

use crate::instr::{Expr, Operand, Stmt};
use crate::module::{AllocaId, IrFunction, ValueId};

/// Per-alloca analysis results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocaAnalysis {
    /// `escapes[i]`: the address of alloca `i` leaves the function.
    pub escapes: Vec<bool>,
    /// `unsafe_gep[i]`: alloca `i` is addressed with an index that cannot
    /// be verified statically.
    pub unsafe_gep: Vec<bool>,
}

impl AllocaAnalysis {
    /// Whether Algorithm 1 instruments alloca `id`.
    #[must_use]
    pub fn needs_instrumentation(&self, id: AllocaId) -> bool {
        self.escapes[id.0 as usize] || self.unsafe_gep[id.0 as usize]
    }
}

type Derived = BTreeMap<ValueId, BTreeSet<AllocaId>>;

fn operand_derived(derived: &Derived, op: &Operand) -> BTreeSet<AllocaId> {
    match op.as_value() {
        Some(v) => derived.get(&v).cloned().unwrap_or_default(),
        None => BTreeSet::new(),
    }
}

/// Runs the alloca analyses on `func`.
#[must_use]
pub fn analyze_allocas(func: &IrFunction) -> AllocaAnalysis {
    let n = func.allocas.len();
    let mut escapes = vec![false; n];
    let mut unsafe_gep = vec![false; n];
    let mut derived: Derived = BTreeMap::new();

    // Fixpoint: register reassignment and loops can propagate pointer
    // derivations in either direction.
    loop {
        let mut changed = false;
        crate::instr::visit_stmts(&func.body, &mut |stmt| {
            if let Stmt::Assign { dst, expr } = stmt {
                let new: BTreeSet<AllocaId> = match expr {
                    Expr::AllocaAddr(id) => std::iter::once(*id).collect(),
                    Expr::Use(op) | Expr::PointerSign(op) | Expr::PointerAuth(op) => {
                        operand_derived(&derived, op)
                    }
                    Expr::Cast { operand, .. } | Expr::UnOp { operand, .. } => {
                        operand_derived(&derived, operand)
                    }
                    Expr::BinOp { lhs, rhs, .. } => {
                        let mut s = operand_derived(&derived, lhs);
                        s.extend(operand_derived(&derived, rhs));
                        s
                    }
                    Expr::Gep { base, .. } => operand_derived(&derived, base),
                    Expr::SegmentNew { addr, .. } | Expr::TagIncrement { addr, .. } => {
                        operand_derived(&derived, addr)
                    }
                    // Loads and call results are not tracked: the flows
                    // that put an alloca pointer behind them already
                    // marked the alloca as escaping.
                    Expr::Load { .. }
                    | Expr::Call { .. }
                    | Expr::CallIndirect { .. }
                    | Expr::FuncAddr(_)
                    | Expr::GlobalAddr(_) => BTreeSet::new(),
                };
                let entry = derived.entry(*dst).or_default();
                let before = entry.len();
                entry.extend(new);
                if entry.len() != before {
                    changed = true;
                }
            }
        });
        if !changed {
            break;
        }
    }

    // Escape and unsafe-GEP detection.
    crate::instr::visit_stmts(&func.body, &mut |stmt| {
        let mut mark_escape = |op: &Operand| {
            for id in operand_derived(&derived, op) {
                escapes[id.0 as usize] = true;
            }
        };
        match stmt {
            // Storing a derived pointer *as a value* publishes it.
            Stmt::Store { value, .. } => mark_escape(value),
            Stmt::Return(Some(op)) => mark_escape(op),
            Stmt::Assign { expr, .. } | Stmt::Perform(expr) => match expr {
                Expr::Call { args, .. } => args.iter().for_each(&mut mark_escape),
                Expr::CallIndirect { target, args, .. } => {
                    mark_escape(target);
                    args.iter().for_each(&mut mark_escape);
                }
                _ => {}
            },
            _ => {}
        }
    });

    // Unsafe GEPs and out-of-range constant accesses. Collect offending
    // allocas first to keep the borrow simple.
    let mut flagged: BTreeSet<AllocaId> = BTreeSet::new();
    fn check_access(
        func: &IrFunction,
        derived: &Derived,
        flagged: &mut BTreeSet<AllocaId>,
        addr: &Operand,
        offset: u64,
        width: u64,
    ) {
        for id in operand_derived(derived, addr) {
            let size = func.allocas[id.0 as usize].size;
            if offset + width > size {
                flagged.insert(id);
            }
        }
    }
    crate::instr::visit_stmts(&func.body, &mut |stmt| {
        match stmt {
            Stmt::Assign { expr, .. } | Stmt::Perform(expr) => {
                if let Expr::Gep {
                    base,
                    index,
                    scale,
                    offset,
                } = expr
                {
                    for id in operand_derived(&derived, base) {
                        let size = func.allocas[id.0 as usize].size;
                        match index.as_const_int() {
                            // Statically verifiable index: in range?
                            Some(k) => {
                                let k_ok = k >= 0
                                    && (k as u64)
                                        .checked_mul(*scale)
                                        .and_then(|b| b.checked_add(*offset))
                                        .is_some_and(|end| end < size.max(1));
                                if !k_ok {
                                    flagged.insert(id);
                                }
                            }
                            // Dynamic index: not statically verifiable.
                            None => {
                                flagged.insert(id);
                            }
                        }
                    }
                }
                if let Expr::Load { ty, addr, offset } = expr {
                    check_access(func, &derived, &mut flagged, addr, *offset, ty.width());
                }
            }
            Stmt::Store {
                ty, addr, offset, ..
            } => check_access(func, &derived, &mut flagged, addr, *offset, ty.width()),
            _ => {}
        }
    });
    for id in flagged {
        unsafe_gep[id.0 as usize] = true;
    }

    AllocaAnalysis {
        escapes,
        unsafe_gep,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::instr::{BinOp, Callee, MemTy};
    use crate::types::IrType;

    #[test]
    fn local_scalar_does_not_escape() {
        let mut b = FunctionBuilder::new("f", &[], None);
        let a = b.alloca(8, "x");
        let p = b.alloca_addr(a);
        b.store(MemTy::I64, p, 0, Operand::ConstI64(1));
        let _ = b.load(MemTy::I64, p, 0);
        b.stmt(Stmt::Return(None));
        let f = b.finish();
        let analysis = analyze_allocas(&f);
        assert!(!analysis.escapes[0]);
        assert!(!analysis.unsafe_gep[0]);
        assert!(!analysis.needs_instrumentation(AllocaId(0)));
    }

    #[test]
    fn address_passed_to_call_escapes() {
        let mut b = FunctionBuilder::new("f", &[], None);
        let a = b.alloca(16, "buf");
        let p = b.alloca_addr(a);
        b.stmt(Stmt::Perform(Expr::Call {
            callee: Callee::Extern(0),
            args: vec![p],
        }));
        let f = b.finish();
        assert!(analyze_allocas(&f).escapes[0]);
    }

    #[test]
    fn returned_address_escapes() {
        let mut b = FunctionBuilder::new("f", &[], Some(IrType::Ptr));
        let a = b.alloca(16, "buf");
        let p = b.alloca_addr(a);
        b.stmt(Stmt::Return(Some(p)));
        let f = b.finish();
        assert!(analyze_allocas(&f).escapes[0]);
    }

    #[test]
    fn address_stored_to_memory_escapes() {
        let mut b = FunctionBuilder::new("f", &[IrType::Ptr], None);
        let a = b.alloca(16, "buf");
        let p = b.alloca_addr(a);
        b.store(MemTy::I64, b.param(0), 0, p);
        let f = b.finish();
        assert!(analyze_allocas(&f).escapes[0]);
    }

    #[test]
    fn escape_propagates_through_gep_and_binop() {
        let mut b = FunctionBuilder::new("f", &[], None);
        let a = b.alloca(32, "buf");
        let p = b.alloca_addr(a);
        let q = b.assign(
            IrType::Ptr,
            Expr::Gep {
                base: p,
                index: Operand::ConstI64(1),
                scale: 8,
                offset: 0,
            },
        );
        let r = b.binop(BinOp::Add, IrType::I64, q, Operand::ConstI64(8));
        b.stmt(Stmt::Perform(Expr::Call {
            callee: Callee::Extern(0),
            args: vec![r],
        }));
        let f = b.finish();
        assert!(analyze_allocas(&f).escapes[0]);
    }

    #[test]
    fn dynamic_index_is_unsafe() {
        let mut b = FunctionBuilder::new("f", &[IrType::I64], None);
        let a = b.alloca(32, "buf");
        let p = b.alloca_addr(a);
        let addr = b.assign(
            IrType::Ptr,
            Expr::Gep {
                base: p,
                index: b.param(0),
                scale: 8,
                offset: 0,
            },
        );
        b.store(MemTy::I64, addr, 0, Operand::ConstI64(1));
        let f = b.finish();
        let analysis = analyze_allocas(&f);
        assert!(!analysis.escapes[0]);
        assert!(analysis.unsafe_gep[0]);
        assert!(analysis.needs_instrumentation(AllocaId(0)));
    }

    #[test]
    fn constant_in_range_index_is_safe() {
        let mut b = FunctionBuilder::new("f", &[], None);
        let a = b.alloca(32, "buf");
        let p = b.alloca_addr(a);
        let addr = b.assign(
            IrType::Ptr,
            Expr::Gep {
                base: p,
                index: Operand::ConstI64(3),
                scale: 8,
                offset: 0,
            },
        );
        b.store(MemTy::I64, addr, 0, Operand::ConstI64(1));
        let f = b.finish();
        assert!(!analyze_allocas(&f).unsafe_gep[0]);
    }

    #[test]
    fn constant_out_of_range_index_is_unsafe() {
        let mut b = FunctionBuilder::new("f", &[], None);
        let a = b.alloca(32, "buf");
        let p = b.alloca_addr(a);
        let _ = b.assign(
            IrType::Ptr,
            Expr::Gep {
                base: p,
                index: Operand::ConstI64(4), // element 4 of a 4-element buffer
                scale: 8,
                offset: 0,
            },
        );
        let f = b.finish();
        assert!(analyze_allocas(&f).unsafe_gep[0]);
    }

    #[test]
    fn oob_direct_load_is_unsafe() {
        let mut b = FunctionBuilder::new("f", &[], None);
        let a = b.alloca(8, "x");
        let p = b.alloca_addr(a);
        let _ = b.load(MemTy::I64, p, 8); // bytes 8..16 of an 8-byte slot
        let f = b.finish();
        assert!(analyze_allocas(&f).unsafe_gep[0]);
    }

    #[test]
    fn derivation_flows_through_loops() {
        // p is rebound inside a loop to a GEP of itself; the call in the
        // loop body must still mark the alloca escaping.
        let mut b = FunctionBuilder::new("f", &[], None);
        let a = b.alloca(64, "buf");
        let p0 = b.alloca_addr(a);
        let p = b.copy(IrType::Ptr, p0);
        b.push_block();
        let next = b.assign(
            IrType::Ptr,
            Expr::Gep {
                base: Operand::Value(p),
                index: Operand::ConstI64(1),
                scale: 8,
                offset: 0,
            },
        );
        b.reassign(p, Expr::Use(next));
        b.stmt(Stmt::Perform(Expr::Call {
            callee: Callee::Extern(0),
            args: vec![Operand::Value(p)],
        }));
        let body = b.pop_block();
        b.stmt(Stmt::While {
            header: vec![],
            cond: Operand::ConstI32(1),
            body,
        });
        let f = b.finish();
        assert!(analyze_allocas(&f).escapes[0]);
    }
}
