//! Liveness analysis and linear-scan slot assignment for the register
//! bytecode tier.
//!
//! The client linearises its program into monotonically increasing
//! positions, describes the CFG as position ranges with successor lists,
//! and reports every value read/write as a [`ValueRef`]. Liveness runs
//! the classic backward bit-vector fixpoint per block; intervals are the
//! conservative convex hull `[min, max]` of every position where the
//! value is referenced or live across a block boundary — loops are
//! handled exactly (a value live into a loop header is live out of the
//! back-edge block, which extends its hull over the whole loop body).
//!
//! [`linear_scan`] then assigns each interval a frame slot: the first
//! `hot` slots model the register file a later JIT tier would map to
//! machine registers; overflow intervals get *spill* slots above the hot
//! watermark. In the interpreter both regions are plain frame slots with
//! identical access cost — the distinction is recorded (and shown by the
//! disassembler) because it is the contract the native tier will
//! inherit, not because the interpreter pays for it.

use cage_wasm::LimitError;

/// One read or write of a value at a linearised position.
#[derive(Debug, Clone, Copy)]
pub struct ValueRef {
    /// Linear position of the instruction.
    pub pos: u32,
    /// The value referenced.
    pub value: u32,
    /// `true` for a definition (write), `false` for a use (read).
    pub is_def: bool,
}

/// One basic block as a closed position range plus its successors.
#[derive(Debug, Clone)]
pub struct BlockRange {
    /// Position of the block's first instruction.
    pub start: u32,
    /// Position of the block's last instruction (== `start` when empty).
    pub end: u32,
    /// Successor block indices.
    pub succs: Vec<u32>,
}

/// Liveness problem description. Positions must be globally unique and
/// increasing in block-layout order.
#[derive(Debug, Clone, Default)]
pub struct LivenessInput {
    /// Number of values (ids are `0..num_values`).
    pub num_values: u32,
    /// The blocks in layout order.
    pub blocks: Vec<BlockRange>,
    /// Every value reference, in any order.
    pub refs: Vec<ValueRef>,
}

/// A conservative live interval over linearised positions, inclusive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// First position at which the value may be live.
    pub start: u32,
    /// Last position at which the value may be live.
    pub end: u32,
}

/// Fixed-width bitset over value ids.
#[derive(Clone, PartialEq, Default)]
struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    fn new(bits: usize) -> Self {
        Self {
            words: vec![0; bits.div_ceil(64)],
        }
    }

    fn insert(&mut self, i: u32) {
        self.words[i as usize / 64] |= 1 << (i % 64);
    }

    fn contains(&self, i: u32) -> bool {
        self.words[i as usize / 64] & (1 << (i % 64)) != 0
    }

    /// `self |= other`; returns whether `self` changed.
    fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (w, &o) in self.words.iter_mut().zip(&other.words) {
            let next = *w | o;
            changed |= next != *w;
            *w = next;
        }
        changed
    }

    /// `self |= a & !b`; returns whether `self` changed.
    fn union_with_minus(&mut self, a: &BitSet, b: &BitSet) -> bool {
        let mut changed = false;
        for i in 0..self.words.len() {
            let next = self.words[i] | (a.words[i] & !b.words[i]);
            changed |= next != self.words[i];
            self.words[i] = next;
        }
        changed
    }

    fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64)
                .filter(move |b| w & (1 << b) != 0)
                .map(move |b| (wi * 64 + b) as u32)
        })
    }
}

/// Computes the conservative live interval of every value; `None` for
/// values never referenced.
#[must_use]
pub fn live_intervals(input: &LivenessInput) -> Vec<Option<Interval>> {
    let nv = input.num_values as usize;
    let nb = input.blocks.len();

    // Per-block gen (used before any in-block def) and kill (defined).
    let mut gen_b = vec![BitSet::new(nv); nb];
    let mut kill_b = vec![BitSet::new(nv); nb];
    let block_of = |pos: u32| -> usize {
        // Blocks are laid out in increasing position order.
        input
            .blocks
            .partition_point(|b| b.end < pos)
            .min(nb.saturating_sub(1))
    };
    let mut sorted_refs: Vec<ValueRef> = input.refs.clone();
    sorted_refs.sort_by_key(|r| (r.pos, r.is_def));
    for r in &sorted_refs {
        if r.value as usize >= nv {
            continue; // client sentinel (e.g. UNDEF): not allocated
        }
        let b = block_of(r.pos);
        if r.is_def {
            kill_b[b].insert(r.value);
        } else if !kill_b[b].contains(r.value) {
            gen_b[b].insert(r.value);
        }
    }

    // Backward fixpoint: live_out[b] = ∪ live_in[s]; live_in[b] = gen[b]
    // ∪ (live_out[b] − kill[b]).
    let mut live_in = vec![BitSet::new(nv); nb];
    let mut live_out = vec![BitSet::new(nv); nb];
    loop {
        let mut changed = false;
        for b in (0..nb).rev() {
            for &s in &input.blocks[b].succs {
                let succ_in = live_in[s as usize].clone();
                changed |= live_out[b].union_with(&succ_in);
            }
            changed |= {
                let g = gen_b[b].clone();
                live_in[b].union_with(&g)
            };
            let (lo, k) = (live_out[b].clone(), kill_b[b].clone());
            changed |= live_in[b].union_with_minus(&lo, &k);
        }
        if !changed {
            break;
        }
    }

    // Convex hull per value: every reference position, plus the block
    // start for live-in values and the block end for live-out values.
    let mut intervals: Vec<Option<Interval>> = vec![None; nv];
    let mut extend = |v: u32, pos: u32| {
        let e = &mut intervals[v as usize];
        match e {
            None => {
                *e = Some(Interval {
                    start: pos,
                    end: pos,
                });
            }
            Some(iv) => {
                iv.start = iv.start.min(pos);
                iv.end = iv.end.max(pos);
            }
        }
    };
    for r in &sorted_refs {
        if (r.value as usize) < nv {
            extend(r.value, r.pos);
        }
    }
    for b in 0..nb {
        for v in live_in[b].iter() {
            extend(v, input.blocks[b].start);
        }
        for v in live_out[b].iter() {
            extend(v, input.blocks[b].end);
        }
    }
    intervals
}

/// The result of [`linear_scan`].
#[derive(Debug, Clone, Default)]
pub struct Allocation {
    /// Frame slot per value (`u16::MAX` for values with no interval).
    pub slot: Vec<u16>,
    /// Total frame slots used (hot watermark + spill slots).
    pub frame_size: u16,
    /// Hot-region watermark: slots `0..hot_used` are "register" slots,
    /// `hot_used..frame_size` are spill slots.
    pub hot_used: u16,
    /// Number of intervals that overflowed into spill slots.
    pub spilled: u32,
}

/// Sentinel slot for values that were never referenced.
pub const NO_SLOT: u16 = u16::MAX;

/// Classic linear scan over the intervals: values whose intervals do not
/// overlap share slots; at most `hot` values occupy the hot region at
/// once, the rest overflow to spill slots (which are themselves reused).
///
/// # Panics
///
/// Panics if more than `u16::MAX - 1` simultaneous slots are required.
/// Untrusted callers should use [`try_linear_scan`].
#[must_use]
pub fn linear_scan(intervals: &[Option<Interval>], hot: u16) -> Allocation {
    match try_linear_scan(intervals, hot) {
        Ok(a) => a,
        Err(e) => panic!("{e}"),
    }
}

/// Like [`linear_scan`], but returns a [`LimitError`] instead of
/// panicking when a function needs more than `u16::MAX - 1` simultaneous
/// frame slots — reachable from hostile input (e.g. tens of thousands of
/// values all live at once), so the instantiation path must not abort.
///
/// # Errors
///
/// [`LimitError`] (`what: "frame slots"`) on slot overflow.
pub fn try_linear_scan(intervals: &[Option<Interval>], hot: u16) -> Result<Allocation, LimitError> {
    const SLOT_LIMIT: u64 = u16::MAX as u64 - 1;
    let overflow = || LimitError {
        what: "frame slots",
        limit: SLOT_LIMIT,
        actual: SLOT_LIMIT + 1,
    };
    let mut order: Vec<(u32, Interval)> = intervals
        .iter()
        .enumerate()
        .filter_map(|(v, iv)| iv.map(|iv| (v as u32, iv)))
        .collect();
    order.sort_by_key(|&(v, iv)| (iv.start, v));

    let mut slot = vec![NO_SLOT; intervals.len()];
    // `true` when `slot[v]` holds a spill *ordinal* (rebased above the
    // hot watermark at the end) rather than a hot slot index.
    let mut is_spill = vec![false; intervals.len()];
    // Free lists, kept sorted descending so `pop` yields the lowest
    // index — deterministic and dense.
    let mut free_hot: Vec<u16> = (0..hot).rev().collect();
    let mut free_spill: Vec<u16> = Vec::new(); // spill ordinals
    let mut next_spill: u16 = 0;
    let mut hot_used: u16 = 0;
    let mut spilled: u32 = 0;
    // Active: (end, slot_or_spill_ordinal, is_spill), sorted by end asc.
    let mut active: Vec<(u32, u16, bool)> = Vec::new();

    for &(v, iv) in &order {
        // Expire intervals that ended strictly before this one starts.
        let mut i = 0;
        while i < active.len() {
            if active[i].0 < iv.start {
                let (_, s, sp) = active.remove(i);
                if sp {
                    free_spill.push(s);
                    free_spill.sort_unstable_by(|a, b| b.cmp(a));
                } else {
                    free_hot.push(s);
                    free_hot.sort_unstable_by(|a, b| b.cmp(a));
                }
            } else {
                i += 1;
            }
        }
        let (s, sp) = if let Some(s) = free_hot.pop() {
            hot_used = hot_used.max(s + 1);
            (s, false)
        } else {
            spilled += 1;
            let ordinal = match free_spill.pop() {
                Some(o) => o,
                None => {
                    let o = next_spill;
                    next_spill = next_spill.checked_add(1).ok_or_else(overflow)?;
                    o
                }
            };
            (ordinal, true)
        };
        slot[v as usize] = s;
        is_spill[v as usize] = sp;
        let ins = active.partition_point(|&(e, _, _)| e <= iv.end);
        active.insert(ins, (iv.end, s, sp));
    }

    // Spill ordinals were provisional (the hot watermark was still
    // moving); rebase them to sit directly above the hot region.
    let frame_size = u16::try_from(u32::from(hot_used) + u32::from(next_spill))
        .ok()
        .filter(|&f| f != NO_SLOT)
        .ok_or_else(overflow)?;
    for (v, s) in slot.iter_mut().enumerate() {
        if *s != NO_SLOT && is_spill[v] {
            *s += hot_used;
        }
    }
    Ok(Allocation {
        slot,
        frame_size,
        hot_used,
        spilled,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_block(end: u32) -> Vec<BlockRange> {
        vec![BlockRange {
            start: 0,
            end,
            succs: vec![],
        }]
    }

    fn refs(list: &[(u32, u32, bool)]) -> Vec<ValueRef> {
        list.iter()
            .map(|&(pos, value, is_def)| ValueRef { pos, value, is_def })
            .collect()
    }

    #[test]
    fn disjoint_intervals_share_a_slot() {
        // v0 live [0,1], v1 live [2,3].
        let input = LivenessInput {
            num_values: 2,
            blocks: one_block(3),
            refs: refs(&[(0, 0, true), (1, 0, false), (2, 1, true), (3, 1, false)]),
        };
        let iv = live_intervals(&input);
        assert_eq!(iv[0], Some(Interval { start: 0, end: 1 }));
        assert_eq!(iv[1], Some(Interval { start: 2, end: 3 }));
        let a = linear_scan(&iv, 4);
        assert_eq!(a.slot[0], a.slot[1]);
        assert_eq!(a.frame_size, 1);
        assert_eq!(a.spilled, 0);
    }

    #[test]
    fn overlapping_intervals_get_distinct_slots() {
        let input = LivenessInput {
            num_values: 2,
            blocks: one_block(3),
            refs: refs(&[(0, 0, true), (1, 1, true), (2, 0, false), (3, 1, false)]),
        };
        let a = linear_scan(&live_intervals(&input), 4);
        assert_ne!(a.slot[0], a.slot[1]);
    }

    #[test]
    fn pressure_beyond_hot_budget_spills() {
        // 5 values all live at once, hot budget 2: 3 spill slots.
        let mut r = Vec::new();
        for v in 0..5u32 {
            r.push((v, v, true));
            r.push((10 + v, v, false));
        }
        let input = LivenessInput {
            num_values: 5,
            blocks: one_block(14),
            refs: refs(&r),
        };
        let a = linear_scan(&live_intervals(&input), 2);
        assert_eq!(a.hot_used, 2);
        assert_eq!(a.spilled, 3);
        assert_eq!(a.frame_size, 5);
        // All five slots distinct.
        let mut slots: Vec<u16> = a.slot.clone();
        slots.sort_unstable();
        slots.dedup();
        assert_eq!(slots.len(), 5);
        // Spill slots sit directly above the hot watermark.
        assert!(a.slot.iter().all(|&s| s < a.frame_size));
    }

    #[test]
    fn value_live_into_loop_header_spans_the_whole_loop() {
        // Block 0 (entry, pos 0..1) defines v0 and v1; block 1 (loop
        // body, pos 2..4) uses v0 at its top and loops to itself; block
        // 2 (exit, pos 5..6) uses v1. v0's hull must cover the whole
        // loop body — including pos 4 — because it is live around the
        // back edge; a def at pos 3 must therefore not share its slot.
        let input = LivenessInput {
            num_values: 3,
            blocks: vec![
                BlockRange {
                    start: 0,
                    end: 1,
                    succs: vec![1],
                },
                BlockRange {
                    start: 2,
                    end: 4,
                    succs: vec![1, 2],
                },
                BlockRange {
                    start: 5,
                    end: 6,
                    succs: vec![],
                },
            ],
            refs: refs(&[
                (0, 0, true),
                (1, 1, true),
                (2, 0, false),
                (3, 2, true), // temp defined mid-loop
                (4, 2, false),
                (5, 1, false),
            ]),
        };
        let iv = live_intervals(&input);
        // v0 live-in at the loop header on every iteration -> live out
        // of the body (the back-edge block), so its hull reaches pos 4.
        assert_eq!(iv[0], Some(Interval { start: 0, end: 4 }));
        // v1 is live across the loop entirely.
        assert_eq!(iv[1], Some(Interval { start: 1, end: 5 }));
        let a = linear_scan(&iv, 8);
        assert_ne!(a.slot[0], a.slot[2]);
        assert_ne!(a.slot[1], a.slot[2]);
    }

    #[test]
    fn slot_overflow_is_an_error_not_a_panic() {
        // 70k values all live simultaneously: more simultaneous slots
        // than u16 can index. try_linear_scan must report it.
        let n = 70_000u32;
        let intervals: Vec<Option<Interval>> = (0..n)
            .map(|_| Some(Interval { start: 0, end: 1 }))
            .collect();
        let err = try_linear_scan(&intervals, 16).unwrap_err();
        assert_eq!(err.what, "frame slots");
    }

    #[test]
    fn unreferenced_values_get_no_slot() {
        let input = LivenessInput {
            num_values: 2,
            blocks: one_block(1),
            refs: refs(&[(0, 0, true), (1, 0, false)]),
        };
        let a = linear_scan(&live_intervals(&input), 4);
        assert_eq!(a.slot[1], NO_SLOT);
    }
}
