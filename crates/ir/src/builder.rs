//! Convenience builder for IR functions, used by the `cage-cc` frontend
//! and by tests.

use crate::instr::{BinOp, Expr, MemTy, Operand, Stmt, UnOp};
use crate::module::{Alloca, AllocaId, IrFunction, ValueId};
use crate::types::IrType;

/// Builds one [`IrFunction`] with a stack of open blocks for structured
/// control flow.
#[derive(Debug)]
pub struct FunctionBuilder {
    func: IrFunction,
    blocks: Vec<Vec<Stmt>>,
}

impl FunctionBuilder {
    /// Starts a function; parameters become registers `0..params.len()`.
    #[must_use]
    pub fn new(name: &str, params: &[IrType], ret: Option<IrType>) -> Self {
        FunctionBuilder {
            func: IrFunction {
                name: name.to_string(),
                params: params.to_vec(),
                ret,
                allocas: Vec::new(),
                value_types: params.to_vec(),
                body: Vec::new(),
                exported: false,
            },
            blocks: vec![Vec::new()],
        }
    }

    /// Marks the function exported.
    pub fn set_exported(&mut self, exported: bool) {
        self.func.exported = exported;
    }

    /// The parameter register `i`.
    #[must_use]
    pub fn param(&self, i: usize) -> Operand {
        assert!(i < self.func.params.len(), "parameter out of range");
        Operand::Value(ValueId(i as u32))
    }

    /// Declares a stack allocation of `size` bytes.
    pub fn alloca(&mut self, size: u64, name: &str) -> AllocaId {
        self.func.allocas.push(Alloca {
            size,
            name: name.to_string(),
            instrument: false,
            is_guard: false,
        });
        AllocaId((self.func.allocas.len() - 1) as u32)
    }

    /// Appends a raw statement to the current block.
    pub fn stmt(&mut self, stmt: Stmt) {
        self.blocks.last_mut().expect("open block").push(stmt);
    }

    /// Evaluates `expr` into a fresh register of type `ty`.
    pub fn assign(&mut self, ty: IrType, expr: Expr) -> Operand {
        let dst = self.func.new_value(ty);
        self.stmt(Stmt::Assign { dst, expr });
        Operand::Value(dst)
    }

    /// Copies `src` into a fresh mutable register (for C variables).
    pub fn copy(&mut self, ty: IrType, src: Operand) -> ValueId {
        let dst = self.func.new_value(ty);
        self.stmt(Stmt::Assign {
            dst,
            expr: Expr::Use(src),
        });
        dst
    }

    /// Reassigns an existing register.
    pub fn reassign(&mut self, dst: ValueId, expr: Expr) {
        self.stmt(Stmt::Assign { dst, expr });
    }

    /// Emits a binary operation.
    pub fn binop(&mut self, op: BinOp, ty: IrType, lhs: Operand, rhs: Operand) -> Operand {
        let result_ty = if op.is_comparison() { IrType::I32 } else { ty };
        self.assign(result_ty, Expr::BinOp { op, ty, lhs, rhs })
    }

    /// Emits a unary operation.
    pub fn unop(&mut self, op: UnOp, ty: IrType, operand: Operand) -> Operand {
        let result_ty = if op == UnOp::Not { IrType::I32 } else { ty };
        self.assign(result_ty, Expr::UnOp { op, ty, operand })
    }

    /// Emits a load.
    pub fn load(&mut self, ty: MemTy, addr: Operand, offset: u64) -> Operand {
        self.assign(ty.value_type(), Expr::Load { ty, addr, offset })
    }

    /// Emits a store.
    pub fn store(&mut self, ty: MemTy, addr: Operand, offset: u64, value: Operand) {
        self.stmt(Stmt::Store {
            ty,
            addr,
            offset,
            value,
        });
    }

    /// Takes the address of alloca `id`.
    pub fn alloca_addr(&mut self, id: AllocaId) -> Operand {
        self.assign(IrType::Ptr, Expr::AllocaAddr(id))
    }

    /// Opens a nested block (then/else/loop bodies).
    pub fn push_block(&mut self) {
        self.blocks.push(Vec::new());
    }

    /// Closes the innermost nested block and returns its statements.
    ///
    /// # Panics
    ///
    /// Panics when only the root block remains.
    pub fn pop_block(&mut self) -> Vec<Stmt> {
        assert!(self.blocks.len() > 1, "cannot pop the root block");
        self.blocks.pop().expect("non-empty")
    }

    /// Fresh register of type `ty` without an initialiser.
    pub fn fresh(&mut self, ty: IrType) -> ValueId {
        self.func.new_value(ty)
    }

    /// Read access to the function under construction.
    #[must_use]
    pub fn func(&self) -> &IrFunction {
        &self.func
    }

    /// Finishes the function.
    ///
    /// # Panics
    ///
    /// Panics if nested blocks are still open.
    #[must_use]
    pub fn finish(mut self) -> IrFunction {
        assert_eq!(self.blocks.len(), 1, "unclosed nested blocks");
        self.func.body = self.blocks.pop().expect("root block");
        self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_function() {
        // f(a, b) = a + b
        let mut b = FunctionBuilder::new("add", &[IrType::I64, IrType::I64], Some(IrType::I64));
        let sum = b.binop(BinOp::Add, IrType::I64, b.param(0), b.param(1));
        b.stmt(Stmt::Return(Some(sum)));
        let f = b.finish();
        assert_eq!(f.body.len(), 2);
        assert_eq!(f.value_types.len(), 3);
    }

    #[test]
    fn comparison_result_is_i32() {
        let mut b = FunctionBuilder::new("c", &[IrType::I64], Some(IrType::I32));
        let r = b.binop(BinOp::LtS, IrType::I64, b.param(0), Operand::ConstI64(0));
        let v = r.as_value().unwrap();
        assert_eq!(b.func().value_type(v), IrType::I32);
    }

    #[test]
    fn nested_blocks_roundtrip() {
        let mut b = FunctionBuilder::new("f", &[], None);
        b.push_block();
        b.stmt(Stmt::Return(None));
        let then = b.pop_block();
        b.stmt(Stmt::If {
            cond: Operand::ConstI32(1),
            then,
            els: vec![],
        });
        let f = b.finish();
        assert!(matches!(&f.body[0], Stmt::If { then, .. } if then.len() == 1));
    }

    #[test]
    #[should_panic(expected = "unclosed nested blocks")]
    fn unclosed_block_panics() {
        let mut b = FunctionBuilder::new("f", &[], None);
        b.push_block();
        let _ = b.finish();
    }
}
