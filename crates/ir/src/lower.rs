//! Lowering: IR → `cage-wasm` modules.
//!
//! Plays the role of LLVM's WASM backend in the paper's pipeline, emitting
//! the Cage instructions the sanitizer passes inserted. Targets wasm64
//! (the Cage configuration) or wasm32 (the guard-page baseline).
//!
//! ## Memory layout
//!
//! ```text
//! 0 .. 16              reserved (null page)
//! 16 .. 16+stack       shadow stack, grows downward from __stack_top
//! stack_top .. data    global data objects
//! heap_base ..         heap, managed by cage-libc
//! ```
//!
//! The stack pointer lives in a mutable global (as LLVM's wasm backend
//! does); `__heap_base` is exported as an immutable global for the
//! allocator.

use std::collections::HashMap;
use std::fmt;

use cage_wasm::builder::ModuleBuilder;
use cage_wasm::instr::{LoadOp, StoreOp};
use cage_wasm::{Instr, MemArg, ValType};

use crate::instr::{BinOp, Callee, CastKind, Expr, MemTy, Operand, Stmt, UnOp};
use crate::module::{FuncId, IrFunction, IrModule, ValueId};
use crate::passes::stack_safety::granule_align;
use crate::types::IrType;

/// Target pointer width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PtrWidth {
    /// wasm32: 32-bit pointers, guard-page-compatible.
    W32,
    /// wasm64: 64-bit pointers with Cage metadata bits.
    W64,
}

impl PtrWidth {
    fn valtype(self) -> ValType {
        match self {
            PtrWidth::W32 => ValType::I32,
            PtrWidth::W64 => ValType::I64,
        }
    }

    /// Pointer size in bytes on this target.
    #[must_use]
    pub fn bytes(self) -> u64 {
        match self {
            PtrWidth::W32 => 4,
            PtrWidth::W64 => 8,
        }
    }
}

/// Lowering options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LowerOptions {
    /// Target pointer width.
    pub ptr_width: PtrWidth,
    /// Linear-memory size in 64 KiB pages.
    pub memory_pages: u64,
    /// Shadow-stack bytes.
    pub stack_size: u64,
}

impl Default for LowerOptions {
    fn default() -> Self {
        LowerOptions {
            ptr_width: PtrWidth::W64,
            memory_pages: 16,
            stack_size: 64 * 1024,
        }
    }
}

/// Lowering failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowerError {
    /// Cage instructions require a 64-bit target.
    CageRequiresWasm64(&'static str),
    /// Data + stack exceed the configured memory.
    MemoryTooSmall,
    /// The statement tree is structurally invalid — `break`/`continue`
    /// outside a loop, or a float constant as a pointer index. A correct
    /// frontend never produces these; hand-built (possibly hostile) IR
    /// can, and the recursive lowering would panic on them.
    Malformed(&'static str),
    /// A compile limit was exceeded (see [`cage_wasm::CompileLimits`]).
    Limit(cage_wasm::LimitError),
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::CageRequiresWasm64(what) => {
                write!(f, "{what} requires the wasm64 target")
            }
            LowerError::MemoryTooSmall => f.write_str("memory too small for stack + data"),
            LowerError::Malformed(what) => write!(f, "malformed IR: {what}"),
            LowerError::Limit(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for LowerError {}

impl From<cage_wasm::LimitError> for LowerError {
    fn from(e: cage_wasm::LimitError) -> Self {
        LowerError::Limit(e)
    }
}

/// Result of lowering: the module plus layout facts the runtime needs.
#[derive(Debug, Clone, PartialEq)]
pub struct Lowered {
    /// The wasm module.
    pub module: cage_wasm::Module,
    /// First heap byte (16-aligned).
    pub heap_base: u64,
    /// Addresses assigned to IR globals.
    pub global_addrs: Vec<u64>,
    /// Function-table slot of each address-taken IR function (if any).
    pub table_slots: HashMap<FuncId, u32>,
}

/// Iteratively checks one statement tree before the recursive lowering
/// touches it. Rejects what the recursion would panic on (`break`/
/// `continue` outside a loop, float pointer indices, Cage constructs on
/// wasm32), bounds nesting depth so the recursion cannot overflow host
/// stack, and charges one fuel unit per statement.
fn prescan_body(
    body: &[Stmt],
    pw: PtrWidth,
    max_depth: usize,
    fuel: &cage_wasm::CompileFuel,
) -> Result<(), LowerError> {
    // (sequence, next index, enclosing loop count, nesting level).
    let mut work: Vec<(&[Stmt], usize, u64, usize)> = vec![(body, 0, 0, 1)];
    while let Some(frame) = work.last_mut() {
        let (seq, idx, loops, level) = (frame.0, &mut frame.1, frame.2, frame.3);
        let Some(stmt) = seq.get(*idx) else {
            work.pop();
            continue;
        };
        *idx += 1;
        fuel.charge(1)?;
        let too_deep = || {
            LowerError::Limit(cage_wasm::LimitError {
                what: "statement nesting depth",
                limit: max_depth as u64,
                actual: max_depth as u64 + 1,
            })
        };
        let float_index = |op: &Operand| {
            matches!(op, Operand::ConstF64(_))
                .then_some(LowerError::Malformed("float used as pointer index"))
        };
        match stmt {
            Stmt::Break if loops == 0 => return Err(LowerError::Malformed("break outside loop")),
            Stmt::Continue if loops == 0 => {
                return Err(LowerError::Malformed("continue outside loop"));
            }
            Stmt::If { then, els, .. } => {
                if level >= max_depth {
                    return Err(too_deep());
                }
                work.push((then, 0, loops, level + 1));
                work.push((els, 0, loops, level + 1));
            }
            Stmt::While { header, body, .. } => {
                if level >= max_depth {
                    return Err(too_deep());
                }
                work.push((header, 0, loops + 1, level + 1));
                work.push((body, 0, loops + 1, level + 1));
            }
            Stmt::SegmentSetTag { .. } | Stmt::SegmentFree { .. } if pw == PtrWidth::W32 => {
                return Err(LowerError::CageRequiresWasm64("segment instructions"));
            }
            Stmt::Assign { expr, .. } | Stmt::Perform(expr) => match expr {
                Expr::SegmentNew { .. } | Expr::TagIncrement { .. } if pw == PtrWidth::W32 => {
                    return Err(LowerError::CageRequiresWasm64("segment instructions"));
                }
                Expr::PointerSign(_) | Expr::PointerAuth(_) if pw == PtrWidth::W32 => {
                    return Err(LowerError::CageRequiresWasm64("pointer authentication"));
                }
                Expr::Gep { index, .. } if index.as_const_int().is_none() => {
                    if let Some(e) = float_index(index) {
                        return Err(e);
                    }
                }
                Expr::BinOp {
                    ty: IrType::Ptr,
                    lhs,
                    rhs,
                    ..
                } => {
                    if let Some(e) = float_index(lhs).or_else(|| float_index(rhs)) {
                        return Err(e);
                    }
                }
                Expr::BinOp {
                    ty: IrType::F64,
                    op,
                    ..
                } if !float_binop_defined(*op) => {
                    return Err(LowerError::Malformed("operator undefined on f64"));
                }
                _ => {}
            },
            _ => {}
        }
    }
    Ok(())
}

/// Lowers `ir` to a wasm module with no resource bounds (trusted,
/// internal callers).
///
/// # Errors
///
/// See [`LowerError`].
pub fn lower(ir: &IrModule, opts: &LowerOptions) -> Result<Lowered, LowerError> {
    lower_with_limits(
        ir,
        opts,
        &cage_wasm::CompileLimits::unlimited(),
        &cage_wasm::CompileLimits::unlimited().fuel(),
    )
}

/// Lowers `ir` to a wasm module, bounding function count, global bytes,
/// statement nesting depth and total work against `limits`/`fuel`.
///
/// # Errors
///
/// See [`LowerError`].
pub fn lower_with_limits(
    ir: &IrModule,
    opts: &LowerOptions,
    limits: &cage_wasm::CompileLimits,
    fuel: &cage_wasm::CompileFuel,
) -> Result<Lowered, LowerError> {
    let pw = opts.ptr_width;

    let funcs = ir.externs.len() + ir.functions.len();
    if funcs > limits.max_functions {
        return Err(LowerError::Limit(cage_wasm::LimitError {
            what: "functions",
            limit: limits.max_functions as u64,
            actual: funcs as u64,
        }));
    }
    let global_bytes: u64 = ir.globals.iter().map(|g| g.bytes.len() as u64).sum();
    if global_bytes > limits.max_global_bytes {
        return Err(LowerError::Limit(cage_wasm::LimitError {
            what: "global bytes",
            limit: limits.max_global_bytes,
            actual: global_bytes,
        }));
    }
    // Pre-scan every body before the recursive lowering below touches
    // it: everything the recursion would panic or overflow on is
    // rejected here, iteratively.
    for f in &ir.functions {
        prescan_body(&f.body, pw, limits.max_nesting_depth, fuel)?;
    }

    // Layout: stack, then globals, then heap.
    let stack_top = 16 + opts.stack_size;
    let mut cursor = stack_top;
    let mut global_addrs = Vec::with_capacity(ir.globals.len());
    for g in &ir.globals {
        let align = g.align.max(1);
        cursor = cursor.div_ceil(align) * align;
        global_addrs.push(cursor);
        cursor += g.bytes.len() as u64;
    }
    let heap_base = cursor.div_ceil(16) * 16;
    if heap_base > opts.memory_pages * cage_wasm::types::PAGE_SIZE {
        return Err(LowerError::MemoryTooSmall);
    }

    // Function-table slots for address-taken functions (slot 0 = null).
    let mut table_slots: HashMap<FuncId, u32> = HashMap::new();
    for f in &ir.functions {
        crate::instr::visit_stmts(&f.body, &mut |stmt| {
            crate::instr::visit_exprs(stmt, &mut |e| {
                if let Expr::FuncAddr(id) = e {
                    let next = table_slots.len() as u32 + 1;
                    table_slots.entry(*id).or_insert(next);
                }
            });
        });
    }

    let mut b = ModuleBuilder::new();
    for ext in &ir.externs {
        let params: Vec<ValType> = ext.params.iter().map(|t| valtype(*t, pw)).collect();
        let results: Vec<ValType> = ext.ret.iter().map(|t| valtype(*t, pw)).collect();
        b.import_func(&ext.module, &ext.name, &params, &results);
    }
    let imported = ir.externs.len() as u32;

    match pw {
        PtrWidth::W32 => b.add_memory32(opts.memory_pages),
        PtrWidth::W64 => b.add_memory64(opts.memory_pages),
    };
    b.export_memory("memory");

    // Global 0: stack pointer. Global 1: heap base (immutable, exported
    // for the allocator).
    let sp = match pw {
        PtrWidth::W32 => b.add_global(ValType::I32, true, Instr::I32Const(stack_top as i32)),
        PtrWidth::W64 => b.add_global(ValType::I64, true, Instr::I64Const(stack_top as i64)),
    };
    let hb = match pw {
        PtrWidth::W32 => b.add_global(ValType::I32, false, Instr::I32Const(heap_base as i32)),
        PtrWidth::W64 => b.add_global(ValType::I64, false, Instr::I64Const(heap_base as i64)),
    };
    b.export_global("__heap_base", hb);

    if !table_slots.is_empty() {
        b.add_table(table_slots.len() as u64 + 1);
        let mut slots: Vec<(u32, FuncId)> = table_slots.iter().map(|(f, s)| (*s, *f)).collect();
        slots.sort_unstable();
        for (slot, f) in slots {
            b.add_elem(u64::from(slot), vec![imported + f.0]);
        }
    }

    for g in (0..ir.globals.len()).filter(|i| !ir.globals[*i].bytes.is_empty()) {
        b.add_data(global_addrs[g], ir.globals[g].bytes.clone());
    }

    // Pre-intern indirect-call signatures so bodies can reference their
    // type indices before the functions themselves are added.
    let mut sig_types: HashMap<SigKey, u32> = HashMap::new();
    for f in &ir.functions {
        crate::instr::visit_stmts(&f.body, &mut |stmt| {
            crate::instr::visit_exprs(stmt, &mut |e| {
                if let Expr::CallIndirect { params, ret, .. } = e {
                    let key = sig_key(params, *ret, pw);
                    if let std::collections::hash_map::Entry::Vacant(entry) = sig_types.entry(key) {
                        let ft = cage_wasm::FuncType::new(&entry.key().0, &entry.key().1);
                        entry.insert(b.intern_type(ft));
                    }
                }
            });
        });
    }

    for (i, f) in ir.functions.iter().enumerate() {
        let ctx = FuncLowering::new(
            f,
            ir,
            pw,
            sp,
            imported,
            &table_slots,
            &global_addrs,
            &sig_types,
        );
        let (locals, body) = ctx.lower();
        let params: Vec<ValType> = f.params.iter().map(|t| valtype(*t, pw)).collect();
        let results: Vec<ValType> = f.ret.iter().map(|t| valtype(*t, pw)).collect();
        let idx = b.add_function(&params, &results, &locals, body);
        debug_assert_eq!(idx, imported + i as u32);
        if f.exported {
            b.export_func(&f.name, idx);
        }
    }

    Ok(Lowered {
        module: b.build(),
        heap_base,
        global_addrs,
        table_slots,
    })
}

/// Canonical signature key: lowered param/result value types.
type SigKey = (Vec<ValType>, Vec<ValType>);

fn sig_key(params: &[IrType], ret: Option<IrType>, pw: PtrWidth) -> SigKey {
    (
        params.iter().map(|t| valtype(*t, pw)).collect(),
        ret.iter().map(|t| valtype(*t, pw)).collect(),
    )
}

fn valtype(t: IrType, pw: PtrWidth) -> ValType {
    match t {
        IrType::I32 => ValType::I32,
        IrType::I64 => ValType::I64,
        IrType::F64 => ValType::F64,
        IrType::Ptr => pw.valtype(),
    }
}

struct FuncLowering<'a> {
    func: &'a IrFunction,
    ir: &'a IrModule,
    pw: PtrWidth,
    sp_global: u32,
    imported: u32,
    table_slots: &'a HashMap<FuncId, u32>,
    global_addrs: &'a [u64],
    sig_types: &'a HashMap<SigKey, u32>,
    /// wasm local index per IR register.
    locals_map: Vec<u32>,
    /// Extra wasm locals beyond the parameters.
    extra_locals: Vec<ValType>,
    /// Frame-pointer local (if a frame exists).
    fp_local: Option<u32>,
    /// Scratch i64 local for tag arithmetic.
    scratch: Option<u32>,
    frame_size: u64,
    alloca_offsets: Vec<u64>,
}

impl<'a> FuncLowering<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        func: &'a IrFunction,
        ir: &'a IrModule,
        pw: PtrWidth,
        sp_global: u32,
        imported: u32,
        table_slots: &'a HashMap<FuncId, u32>,
        global_addrs: &'a [u64],
        sig_types: &'a HashMap<SigKey, u32>,
    ) -> Self {
        let n_params = func.params.len();
        let mut locals_map = Vec::with_capacity(func.value_types.len());
        let mut extra_locals = Vec::new();
        for (i, ty) in func.value_types.iter().enumerate() {
            if i < n_params {
                locals_map.push(i as u32);
            } else {
                extra_locals.push(valtype(*ty, pw));
                locals_map.push((n_params + extra_locals.len() - 1) as u32);
            }
        }

        // Frame layout: guard slots first (frame start = lowest address),
        // then the remaining allocas in declaration order.
        let mut alloca_offsets = vec![0u64; func.allocas.len()];
        let mut offset = 0u64;
        for (i, a) in func.allocas.iter().enumerate().filter(|(_, a)| a.is_guard) {
            alloca_offsets[i] = offset;
            offset += granule_align(a.size);
        }
        for (i, a) in func.allocas.iter().enumerate().filter(|(_, a)| !a.is_guard) {
            if a.size == 0 {
                continue; // promoted away by mem2reg
            }
            alloca_offsets[i] = offset;
            offset += granule_align(a.size);
        }
        let frame_size = offset;

        let mut this = FuncLowering {
            func,
            ir,
            pw,
            sp_global,
            imported,
            table_slots,
            global_addrs,
            sig_types,
            locals_map,
            extra_locals,
            fp_local: None,
            scratch: None,
            frame_size,
            alloca_offsets,
        };
        if frame_size > 0 {
            this.fp_local = Some(this.push_local(pw.valtype()));
        }
        this
    }

    fn push_local(&mut self, ty: ValType) -> u32 {
        self.extra_locals.push(ty);
        (self.func.params.len() + self.extra_locals.len() - 1) as u32
    }

    fn scratch_local(&mut self) -> u32 {
        if let Some(s) = self.scratch {
            return s;
        }
        let s = self.push_local(ValType::I64);
        self.scratch = Some(s);
        s
    }

    fn local_of(&self, v: ValueId) -> u32 {
        self.locals_map[v.0 as usize]
    }

    fn ptr_const(&self, v: u64) -> Instr {
        match self.pw {
            PtrWidth::W32 => Instr::I32Const(v as i32),
            PtrWidth::W64 => Instr::I64Const(v as i64),
        }
    }

    fn ptr_add(&self) -> Instr {
        match self.pw {
            PtrWidth::W32 => Instr::I32Add,
            PtrWidth::W64 => Instr::I64Add,
        }
    }

    fn lower(mut self) -> (Vec<ValType>, Vec<Instr>) {
        let mut body = Vec::new();
        // Prologue: carve the frame out of the shadow stack.
        if let Some(fp) = self.fp_local {
            body.push(Instr::GlobalGet(self.sp_global));
            body.push(self.ptr_const(self.frame_size));
            body.push(match self.pw {
                PtrWidth::W32 => Instr::I32Sub,
                PtrWidth::W64 => Instr::I64Sub,
            });
            body.push(Instr::LocalTee(fp));
            body.push(Instr::GlobalSet(self.sp_global));
        }
        let stmts = self.func.body.clone();
        self.lower_stmts(&stmts, &mut body, &mut Vec::new());
        // Fall-through epilogue (functions returning a value end in
        // Return; void functions may fall off the end).
        self.emit_epilogue(&mut body);
        (self.extra_locals.clone(), body)
    }

    fn emit_epilogue(&self, out: &mut Vec<Instr>) {
        if let Some(fp) = self.fp_local {
            out.push(Instr::LocalGet(fp));
            out.push(self.ptr_const(self.frame_size));
            out.push(self.ptr_add());
            out.push(Instr::GlobalSet(self.sp_global));
        }
    }

    /// `loops` tracks, for `Break`/`Continue`, how many wasm labels up the
    /// enclosing loop's block/loop labels are. Each entry is the number of
    /// labels pushed since that loop's `loop` label.
    fn lower_stmts(&mut self, stmts: &[Stmt], out: &mut Vec<Instr>, loops: &mut Vec<u32>) {
        for stmt in stmts {
            self.lower_stmt(stmt, out, loops);
        }
    }

    #[allow(clippy::too_many_lines)]
    fn lower_stmt(&mut self, stmt: &Stmt, out: &mut Vec<Instr>, loops: &mut Vec<u32>) {
        match stmt {
            Stmt::Assign { dst, expr } => {
                self.lower_expr(expr, out, self.func.value_type(*dst));
                out.push(Instr::LocalSet(self.local_of(*dst)));
            }
            Stmt::Perform(expr) => {
                let produces = match expr {
                    Expr::Call { callee, .. } => self.callee_ret(callee).is_some(),
                    Expr::CallIndirect { ret, .. } => ret.is_some(),
                    _ => true,
                };
                self.lower_expr(expr, out, IrType::I64);
                if produces {
                    out.push(Instr::Drop);
                }
            }
            Stmt::Store {
                ty,
                addr,
                offset,
                value,
            } => {
                self.push_operand(addr, out);
                self.push_operand(value, out);
                let op = self.store_op(*ty);
                out.push(Instr::Store(
                    op,
                    MemArg {
                        align: 0,
                        offset: *offset,
                    },
                ));
            }
            Stmt::If { cond, then, els } => {
                self.push_operand(cond, out);
                let mut then_body = Vec::new();
                let mut else_body = Vec::new();
                for l in loops.iter_mut() {
                    *l += 1;
                }
                self.lower_stmts(then, &mut then_body, loops);
                self.lower_stmts(els, &mut else_body, loops);
                for l in loops.iter_mut() {
                    *l -= 1;
                }
                out.push(Instr::If(cage_wasm::BlockType::Empty, then_body, else_body));
            }
            Stmt::While { header, cond, body } => {
                // block { loop { header; !cond br_if 1; body; br 0 } }
                // Inside the loop body the loop label is depth 0 and the
                // exit block is depth 1; nested `if`s shift both (tracked
                // by the If handler).
                let mut loop_body = Vec::new();
                loops.push(0);
                self.lower_stmts(header, &mut loop_body, loops);
                self.push_operand(cond, &mut loop_body);
                loop_body.push(Instr::I32Eqz);
                loop_body.push(Instr::BrIf(1));
                self.lower_stmts(body, &mut loop_body, loops);
                loop_body.push(Instr::Br(0));
                loops.pop();
                out.push(Instr::Block(
                    cage_wasm::BlockType::Empty,
                    vec![Instr::Loop(cage_wasm::BlockType::Empty, loop_body)],
                ));
            }
            Stmt::Break => {
                // Branch past the enclosing block (loop label + 1).
                let depth = loops.last().expect("break outside loop") + 1;
                out.push(Instr::Br(depth));
            }
            Stmt::Continue => {
                let depth = *loops.last().expect("continue outside loop");
                out.push(Instr::Br(depth));
            }
            Stmt::Return(op) => {
                if let Some(op) = op {
                    self.push_operand(op, out);
                }
                self.emit_epilogue(out);
                out.push(Instr::Return);
            }
            Stmt::SegmentSetTag { addr, tagged, len } => {
                self.push_operand(addr, out);
                self.push_operand(tagged, out);
                self.push_operand(len, out);
                out.push(Instr::SegmentSetTag(0));
            }
            Stmt::SegmentFree { ptr, len } => {
                self.push_operand(ptr, out);
                self.push_operand(len, out);
                out.push(Instr::SegmentFree(0));
            }
        }
    }

    fn callee_ret(&self, callee: &Callee) -> Option<IrType> {
        match callee {
            Callee::Local(f) => self.ir.functions[f.0 as usize].ret,
            Callee::Extern(e) => self.ir.externs[*e as usize].ret,
        }
    }

    fn push_operand(&mut self, op: &Operand, out: &mut Vec<Instr>) {
        match op {
            Operand::Value(v) => out.push(Instr::LocalGet(self.local_of(*v))),
            Operand::ConstI32(v) => out.push(Instr::I32Const(*v)),
            Operand::ConstI64(v) => out.push(Instr::I64Const(*v)),
            Operand::ConstF64(v) => out.push(Instr::f64_const(*v)),
        }
    }

    /// Pushes an operand coerced to the pointer width (for GEP indices).
    fn push_operand_as_ptr(&mut self, op: &Operand, out: &mut Vec<Instr>) {
        match op {
            Operand::ConstI32(v) => out.push(self.ptr_const(*v as i64 as u64)),
            Operand::ConstI64(v) => out.push(self.ptr_const(*v as u64)),
            Operand::Value(v) => {
                out.push(Instr::LocalGet(self.local_of(*v)));
                let ty = self.func.value_type(*v);
                match (ty, self.pw) {
                    (IrType::I32, PtrWidth::W64) => out.push(Instr::I64ExtendI32S),
                    (IrType::I64, PtrWidth::W32) => out.push(Instr::I32WrapI64),
                    _ => {}
                }
            }
            Operand::ConstF64(_) => panic!("float used as pointer index"),
        }
    }

    fn store_op(&self, ty: MemTy) -> StoreOp {
        match ty {
            MemTy::I8 | MemTy::U8 => StoreOp::I32Store8,
            MemTy::I16 => StoreOp::I32Store16,
            MemTy::I32 => StoreOp::I32Store,
            MemTy::I64 => StoreOp::I64Store,
            MemTy::F64 => StoreOp::F64Store,
            MemTy::Ptr => match self.pw {
                PtrWidth::W32 => StoreOp::I32Store,
                PtrWidth::W64 => StoreOp::I64Store,
            },
        }
    }

    fn load_op(&self, ty: MemTy) -> LoadOp {
        match ty {
            MemTy::I8 => LoadOp::I32Load8S,
            MemTy::U8 => LoadOp::I32Load8U,
            MemTy::I16 => LoadOp::I32Load16S,
            MemTy::I32 => LoadOp::I32Load,
            MemTy::I64 => LoadOp::I64Load,
            MemTy::F64 => LoadOp::F64Load,
            MemTy::Ptr => match self.pw {
                PtrWidth::W32 => LoadOp::I32Load,
                PtrWidth::W64 => LoadOp::I64Load,
            },
        }
    }

    #[allow(clippy::too_many_lines)]
    fn lower_expr(&mut self, expr: &Expr, out: &mut Vec<Instr>, _dst_ty: IrType) {
        match expr {
            Expr::Use(op) => self.push_operand(op, out),
            Expr::BinOp { op, ty, lhs, rhs } => {
                if *ty == IrType::Ptr {
                    // Pointer-typed operands (including integer constants
                    // like a NULL) must match the target pointer width.
                    self.push_operand_as_ptr(lhs, out);
                    self.push_operand_as_ptr(rhs, out);
                } else {
                    self.push_operand(lhs, out);
                    self.push_operand(rhs, out);
                }
                out.push(binop_instr(*op, *ty, self.pw));
            }
            Expr::UnOp { op, ty, operand } => match op {
                UnOp::Neg => match ty {
                    IrType::F64 => {
                        self.push_operand(operand, out);
                        out.push(Instr::F64Neg);
                    }
                    IrType::I32 => {
                        out.push(Instr::I32Const(0));
                        self.push_operand(operand, out);
                        out.push(Instr::I32Sub);
                    }
                    _ => {
                        out.push(Instr::I64Const(0));
                        self.push_operand(operand, out);
                        out.push(Instr::I64Sub);
                    }
                },
                UnOp::Not => {
                    self.push_operand(operand, out);
                    match ty {
                        IrType::I32 => out.push(Instr::I32Eqz),
                        _ => out.push(Instr::I64Eqz),
                    }
                }
                UnOp::BitNot => {
                    self.push_operand(operand, out);
                    match ty {
                        IrType::I32 => {
                            out.push(Instr::I32Const(-1));
                            out.push(Instr::I32Xor);
                        }
                        _ => {
                            out.push(Instr::I64Const(-1));
                            out.push(Instr::I64Xor);
                        }
                    }
                }
                UnOp::Sqrt => {
                    self.push_operand(operand, out);
                    out.push(Instr::F64Sqrt);
                }
                UnOp::Fabs => {
                    self.push_operand(operand, out);
                    out.push(Instr::F64Abs);
                }
            },
            Expr::Load { ty, addr, offset } => {
                self.push_operand(addr, out);
                let op = self.load_op(*ty);
                out.push(Instr::Load(
                    op,
                    MemArg {
                        align: 0,
                        offset: *offset,
                    },
                ));
            }
            Expr::AllocaAddr(id) => {
                let fp = self.fp_local.expect("alloca implies frame");
                out.push(Instr::LocalGet(fp));
                let off = self.alloca_offsets[id.0 as usize];
                if off != 0 {
                    out.push(self.ptr_const(off));
                    out.push(self.ptr_add());
                }
            }
            Expr::GlobalAddr(id) => {
                out.push(self.ptr_const(self.global_addrs[id.0 as usize]));
            }
            Expr::Gep {
                base,
                index,
                scale,
                offset,
            } => {
                self.push_operand(base, out);
                match index.as_const_int() {
                    Some(k) => {
                        let total = (k as u64).wrapping_mul(*scale).wrapping_add(*offset);
                        if total != 0 {
                            out.push(self.ptr_const(total));
                            out.push(self.ptr_add());
                        }
                    }
                    None => {
                        self.push_operand_as_ptr(index, out);
                        if *scale != 1 {
                            out.push(self.ptr_const(*scale));
                            out.push(match self.pw {
                                PtrWidth::W32 => Instr::I32Mul,
                                PtrWidth::W64 => Instr::I64Mul,
                            });
                        }
                        out.push(self.ptr_add());
                        if *offset != 0 {
                            out.push(self.ptr_const(*offset));
                            out.push(self.ptr_add());
                        }
                    }
                }
            }
            Expr::Call { callee, args } => {
                for a in args {
                    self.push_operand(a, out);
                }
                let idx = match callee {
                    Callee::Local(f) => self.imported + f.0,
                    Callee::Extern(e) => *e,
                };
                out.push(Instr::Call(idx));
            }
            Expr::CallIndirect {
                target,
                params,
                ret,
                args,
            } => {
                for a in args {
                    self.push_operand(a, out);
                }
                self.push_operand(target, out);
                // Fig. 9: the (authenticated) 64-bit pointer is truncated
                // to the 32-bit table index space.
                if self.pw == PtrWidth::W64 {
                    out.push(Instr::I32WrapI64);
                }
                let type_idx = self.sig_type_index(params, *ret);
                out.push(Instr::CallIndirect(type_idx));
            }
            Expr::FuncAddr(f) => {
                let slot = self.table_slots[f];
                out.push(self.ptr_const(u64::from(slot)));
            }
            Expr::Cast { kind, operand } => {
                self.push_operand(operand, out);
                match kind {
                    CastKind::I32ToI64S => out.push(Instr::I64ExtendI32S),
                    CastKind::I32ToI64U => out.push(Instr::I64ExtendI32U),
                    CastKind::I64ToI32 => out.push(Instr::I32WrapI64),
                    CastKind::I32ToF64S => out.push(Instr::F64ConvertI32S),
                    CastKind::I64ToF64S => out.push(Instr::F64ConvertI64S),
                    CastKind::F64ToI32S => out.push(Instr::I32TruncF64S),
                    CastKind::F64ToI64S => out.push(Instr::I64TruncF64S),
                    // Same representation at the wasm level.
                    CastKind::PtrToInt | CastKind::IntToPtr => {}
                }
            }
            Expr::SegmentNew { addr, len } => {
                self.push_operand(addr, out);
                self.push_operand(len, out);
                out.push(Instr::SegmentNew(0));
            }
            Expr::TagIncrement { prev, addr } => {
                // nib = ((prev >> 56) & 15) + 1; nib = nib == 16 ? 1 : nib
                // result = addr | (nib << 56)
                let scratch = self.scratch_local();
                self.push_operand(prev, out);
                out.push(Instr::I64Const(56));
                out.push(Instr::I64ShrU);
                out.push(Instr::I64Const(15));
                out.push(Instr::I64And);
                out.push(Instr::I64Const(1));
                out.push(Instr::I64Add);
                out.push(Instr::LocalTee(scratch));
                out.push(Instr::I64Const(1));
                out.push(Instr::LocalGet(scratch));
                out.push(Instr::I64Const(16));
                out.push(Instr::I64Ne);
                out.push(Instr::Select);
                out.push(Instr::I64Const(56));
                out.push(Instr::I64Shl);
                self.push_operand(addr, out);
                out.push(Instr::I64Or);
            }
            Expr::PointerSign(op) => {
                self.push_operand(op, out);
                out.push(Instr::PointerSign);
            }
            Expr::PointerAuth(op) => {
                self.push_operand(op, out);
                out.push(Instr::PointerAuth);
            }
        }
    }

    fn sig_type_index(&mut self, params: &[IrType], ret: Option<IrType>) -> u32 {
        self.sig_types[&sig_key(params, ret, self.pw)]
    }
}

/// The operators [`binop_instr`] can emit for `f64` operands — the rest
/// (remainder, bitwise, shifts) have no wasm float form and must be
/// rejected by [`prescan_body`] before lowering.
fn float_binop_defined(op: BinOp) -> bool {
    use BinOp::*;
    matches!(
        op,
        Add | Sub | Mul | DivS | DivU | Eq | Ne | LtS | LtU | LeS | LeU | GtS | GtU | GeS | GeU
    )
}

fn binop_instr(op: BinOp, ty: IrType, pw: PtrWidth) -> Instr {
    use BinOp::*;
    let wide = match ty {
        IrType::I32 => false,
        IrType::Ptr => pw == PtrWidth::W64,
        _ => true,
    };
    if ty == IrType::F64 {
        return match op {
            Add => Instr::F64Add,
            Sub => Instr::F64Sub,
            Mul => Instr::F64Mul,
            DivS | DivU => Instr::F64Div,
            Eq => Instr::F64Eq,
            Ne => Instr::F64Ne,
            LtS | LtU => Instr::F64Lt,
            LeS | LeU => Instr::F64Le,
            GtS | GtU => Instr::F64Gt,
            GeS | GeU => Instr::F64Ge,
            other => panic!("operator {other:?} undefined on f64"),
        };
    }
    if wide {
        match op {
            Add => Instr::I64Add,
            Sub => Instr::I64Sub,
            Mul => Instr::I64Mul,
            DivS => Instr::I64DivS,
            DivU => Instr::I64DivU,
            RemS => Instr::I64RemS,
            RemU => Instr::I64RemU,
            And => Instr::I64And,
            Or => Instr::I64Or,
            Xor => Instr::I64Xor,
            Shl => Instr::I64Shl,
            ShrS => Instr::I64ShrS,
            ShrU => Instr::I64ShrU,
            Eq => Instr::I64Eq,
            Ne => Instr::I64Ne,
            LtS => Instr::I64LtS,
            LtU => Instr::I64LtU,
            LeS => Instr::I64LeS,
            LeU => Instr::I64LeU,
            GtS => Instr::I64GtS,
            GtU => Instr::I64GtU,
            GeS => Instr::I64GeS,
            GeU => Instr::I64GeU,
        }
    } else {
        match op {
            Add => Instr::I32Add,
            Sub => Instr::I32Sub,
            Mul => Instr::I32Mul,
            DivS => Instr::I32DivS,
            DivU => Instr::I32DivU,
            RemS => Instr::I32RemS,
            RemU => Instr::I32RemU,
            And => Instr::I32And,
            Or => Instr::I32Or,
            Xor => Instr::I32Xor,
            Shl => Instr::I32Shl,
            ShrS => Instr::I32ShrS,
            ShrU => Instr::I32ShrU,
            Eq => Instr::I32Eq,
            Ne => Instr::I32Ne,
            LtS => Instr::I32LtS,
            LtU => Instr::I32LtU,
            LeS => Instr::I32LeS,
            LeU => Instr::I32LeU,
            GtS => Instr::I32GtS,
            GtU => Instr::I32GtU,
            GeS => Instr::I32GeS,
            GeU => Instr::I32GeU,
        }
    }
}
