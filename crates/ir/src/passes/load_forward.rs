//! Store-to-load forwarding and redundant-load elimination, with a
//! conservative clobber model.
//!
//! Within a block, a load from `(addr, offset)` whose value is already
//! known — because the last memory event at that exact location was a
//! store of a known operand, or a load into a still-live register — is
//! replaced by a register copy. Knowledge is keyed on the address
//! *register at a version* (the same versioning scheme as the CSE
//! pass), so any reassignment of the address register orphans its
//! entries.
//!
//! Clobber model (what kills knowledge):
//! - any call, direct or indirect — the callee (or host function, e.g.
//!   `memset`, or anything that grows memory) may write any byte;
//! - `segment.new` / `segment.set_tag` / `segment.free` — retagging
//!   changes whether a later access *traps*, and a forwarded load must
//!   not skip a tag check that would have fired;
//! - any store whose address register differs from an entry's (unknown
//!   aliasing), or whose byte range overlaps it under the same base;
//! - for an `If`: everything, after the arms, if either arm clobbers;
//!   for a `While`: everything, before the loop, if the loop clobbers
//!   anywhere (a previous iteration runs "between" the pre-loop store
//!   and a use inside the loop).
//!
//! Trap equivalence: a forwarded load repeats an access (same address
//! bits including the pointer tag, same width, same memory tag state —
//! tag ops clobber) that already succeeded, so eliding it cannot hide
//! a bounds or tag trap. Sub-word stores are not forwarded to loads
//! (the load re-extends; the store's operand is not the loaded value);
//! sub-word load-to-load forwarding is fine (both extend identically).

use std::collections::HashMap;

use crate::instr::{Expr, MemTy, Operand, Stmt};
use crate::module::{IrFunction, ValueId};

/// Address identity: register at a version, or a constant address.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum AddrKey {
    Val(ValueId, u32),
    C32(i32),
    C64(i64),
}

#[derive(Clone, Copy)]
struct Known {
    ty: MemTy,
    value: Operand,
    /// Version of `value`'s register when recorded (0 for constants).
    value_ver: u32,
}

type Table = HashMap<(AddrKey, u64), Known>;

struct Fwd {
    versions: HashMap<ValueId, u32>,
}

/// Runs store-to-load forwarding over `func`.
pub fn run(func: &mut IrFunction) {
    let mut fwd = Fwd {
        versions: HashMap::new(),
    };
    fwd.walk(&mut func.body, &mut Table::new());
}

/// Whether any statement in `body` (recursively) may write memory or
/// change tag state.
fn clobbers_memory(body: &[Stmt]) -> bool {
    let mut found = false;
    crate::instr::visit_stmts(body, &mut |stmt| match stmt {
        Stmt::Store { .. } | Stmt::SegmentSetTag { .. } | Stmt::SegmentFree { .. } => found = true,
        Stmt::Assign { expr, .. } | Stmt::Perform(expr) => {
            if matches!(
                expr,
                Expr::Call { .. } | Expr::CallIndirect { .. } | Expr::SegmentNew { .. }
            ) {
                found = true;
            }
        }
        _ => {}
    });
    found
}

/// Full-width accesses round-trip their value exactly; sub-word stores
/// do not (the load re-extends).
fn store_forwardable(ty: MemTy) -> bool {
    matches!(ty, MemTy::I32 | MemTy::I64 | MemTy::F64 | MemTy::Ptr)
}

impl Fwd {
    fn version(&self, v: ValueId) -> u32 {
        self.versions.get(&v).copied().unwrap_or(0)
    }

    fn bump(&mut self, v: ValueId) {
        *self.versions.entry(v).or_insert(0) += 1;
    }

    fn bump_all_assigned(&mut self, body: &[Stmt]) {
        let mut dsts = Vec::new();
        crate::instr::visit_stmts(body, &mut |stmt| {
            if let Stmt::Assign { dst, .. } = stmt {
                dsts.push(*dst);
            }
        });
        for dst in dsts {
            self.bump(dst);
        }
    }

    fn addr_key(&self, op: &Operand) -> Option<AddrKey> {
        match op {
            Operand::Value(v) => Some(AddrKey::Val(*v, self.version(*v))),
            Operand::ConstI32(c) => Some(AddrKey::C32(*c)),
            Operand::ConstI64(c) => Some(AddrKey::C64(*c)),
            Operand::ConstF64(_) => None,
        }
    }

    fn value_ver(&self, op: &Operand) -> u32 {
        match op {
            Operand::Value(v) => self.version(*v),
            _ => 0,
        }
    }

    /// Whether a recorded value operand still holds the recorded value.
    fn still_live(&self, k: &Known) -> bool {
        match k.value {
            Operand::Value(v) => self.version(v) == k.value_ver,
            _ => true,
        }
    }

    fn walk(&mut self, stmts: &mut [Stmt], table: &mut Table) {
        for stmt in stmts.iter_mut() {
            match stmt {
                Stmt::Assign { dst, expr } => {
                    if matches!(
                        expr,
                        Expr::Call { .. } | Expr::CallIndirect { .. } | Expr::SegmentNew { .. }
                    ) {
                        table.clear();
                        self.bump(*dst);
                        continue;
                    }
                    if let Expr::Load { ty, addr, offset } = expr {
                        let lty = *ty;
                        let key = self.addr_key(addr).map(|k| (k, *offset));
                        let hit = key.and_then(|k| table.get(&k).copied()).filter(|known| {
                            known.ty == lty
                                && self.still_live(known)
                                // Constants must not flow into Ptr-typed
                                // registers (pointer-width lowering).
                                && (lty != MemTy::Ptr
                                    || matches!(known.value, Operand::Value(_)))
                        });
                        if let Some(known) = hit {
                            *expr = Expr::Use(known.value);
                            self.bump(*dst);
                        } else {
                            self.bump(*dst);
                            if let Some(k) = key {
                                table.insert(
                                    k,
                                    Known {
                                        ty: lty,
                                        value: Operand::Value(*dst),
                                        value_ver: self.version(*dst),
                                    },
                                );
                            }
                        }
                        continue;
                    }
                    self.bump(*dst);
                }
                Stmt::Perform(expr) => {
                    if matches!(
                        expr,
                        Expr::Call { .. } | Expr::CallIndirect { .. } | Expr::SegmentNew { .. }
                    ) {
                        table.clear();
                    }
                }
                Stmt::Store {
                    ty,
                    addr,
                    offset,
                    value,
                } => {
                    let key = self.addr_key(addr);
                    let (w, off) = (ty.width(), *offset);
                    match key {
                        Some(base) => {
                            // Same base register (same version, hence the
                            // same dynamic address): exact disjointness by
                            // offset. Any other base may alias: kill.
                            table.retain(|(b, o), k| {
                                *b == base && (o + k.ty.width() <= off || off + w <= *o)
                            });
                            if store_forwardable(*ty) {
                                table.insert(
                                    (base, off),
                                    Known {
                                        ty: *ty,
                                        value: *value,
                                        value_ver: self.value_ver(value),
                                    },
                                );
                            }
                        }
                        None => table.clear(),
                    }
                }
                Stmt::If { then, els, .. } => {
                    let mut t = table.clone();
                    self.walk(then, &mut t);
                    let mut t = table.clone();
                    self.walk(els, &mut t);
                    if clobbers_memory(then) || clobbers_memory(els) {
                        table.clear();
                    }
                }
                Stmt::While { header, body, .. } => {
                    if clobbers_memory(header) || clobbers_memory(body) {
                        table.clear();
                    }
                    self.bump_all_assigned(header);
                    self.bump_all_assigned(body);
                    let mut t = table.clone();
                    self.walk(header, &mut t);
                    self.walk(body, &mut t);
                }
                Stmt::SegmentSetTag { .. } | Stmt::SegmentFree { .. } => table.clear(),
                Stmt::Return(_) | Stmt::Break | Stmt::Continue => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::instr::Callee;
    use crate::types::IrType;

    #[test]
    fn forwards_store_to_load() {
        let mut b = FunctionBuilder::new("f", &[IrType::Ptr, IrType::I64], Some(IrType::I64));
        let p1 = b.param(1);
        b.store(MemTy::I64, b.param(0), 0, p1);
        let x = b.load(MemTy::I64, b.param(0), 0);
        b.stmt(Stmt::Return(Some(x)));
        let mut f = b.finish();
        run(&mut f);
        let Stmt::Assign { expr, .. } = &f.body[1] else {
            panic!("expected assign");
        };
        assert_eq!(expr, &Expr::Use(p1));
    }

    #[test]
    fn forwards_load_to_load_including_subword() {
        let mut b = FunctionBuilder::new("f", &[IrType::Ptr], Some(IrType::I32));
        let x = b.load(MemTy::I8, b.param(0), 4);
        let y = b.load(MemTy::I8, b.param(0), 4);
        let s = b.binop(BinOp::Add, IrType::I32, x, y);
        b.stmt(Stmt::Return(Some(s)));
        let mut f = b.finish();
        run(&mut f);
        let Stmt::Assign { expr, .. } = &f.body[1] else {
            panic!("expected assign");
        };
        assert_eq!(expr, &Expr::Use(x));
    }

    use crate::instr::BinOp;

    #[test]
    fn subword_store_not_forwarded() {
        let mut b = FunctionBuilder::new("f", &[IrType::Ptr, IrType::I32], Some(IrType::I32));
        b.store(MemTy::I8, b.param(0), 0, b.param(1));
        let x = b.load(MemTy::I8, b.param(0), 0);
        b.stmt(Stmt::Return(Some(x)));
        let mut f = b.finish();
        run(&mut f);
        let Stmt::Assign { expr, .. } = &f.body[1] else {
            panic!("expected assign");
        };
        assert!(
            matches!(expr, Expr::Load { .. }),
            "sub-word store must not forward (load re-extends): {expr:?}"
        );
    }

    #[test]
    fn width_mismatch_not_forwarded() {
        let mut b = FunctionBuilder::new("f", &[IrType::Ptr, IrType::I64], Some(IrType::I32));
        b.store(MemTy::I64, b.param(0), 0, b.param(1));
        let x = b.load(MemTy::I32, b.param(0), 0);
        b.stmt(Stmt::Return(Some(x)));
        let mut f = b.finish();
        run(&mut f);
        let Stmt::Assign { expr, .. } = &f.body[1] else {
            panic!("expected assign");
        };
        assert!(matches!(expr, Expr::Load { .. }), "{expr:?}");
    }

    #[test]
    fn call_clobbers() {
        let mut b = FunctionBuilder::new("f", &[IrType::Ptr, IrType::I64], Some(IrType::I64));
        b.store(MemTy::I64, b.param(0), 0, b.param(1));
        b.stmt(Stmt::Perform(Expr::Call {
            callee: Callee::Extern(0),
            args: vec![],
        }));
        let x = b.load(MemTy::I64, b.param(0), 0);
        b.stmt(Stmt::Return(Some(x)));
        let mut f = b.finish();
        run(&mut f);
        let Stmt::Assign { expr, .. } = &f.body[2] else {
            panic!("expected assign");
        };
        assert!(matches!(expr, Expr::Load { .. }), "{expr:?}");
    }

    #[test]
    fn aliasing_store_clobbers_disjoint_same_base_does_not() {
        let mut b = FunctionBuilder::new(
            "f",
            &[IrType::Ptr, IrType::Ptr, IrType::I64],
            Some(IrType::I64),
        );
        let p2 = b.param(2);
        b.store(MemTy::I64, b.param(0), 0, p2);
        // Disjoint offset under the same base: knowledge survives.
        b.store(MemTy::I64, b.param(0), 8, p2);
        let x = b.load(MemTy::I64, b.param(0), 0);
        b.stmt(Stmt::Return(Some(x)));
        let mut f = b.finish();
        run(&mut f);
        let Stmt::Assign { expr, .. } = &f.body[2] else {
            panic!("expected assign");
        };
        assert_eq!(expr, &Expr::Use(p2));

        // A store through a *different* register may alias: kill.
        let mut b = FunctionBuilder::new(
            "f",
            &[IrType::Ptr, IrType::Ptr, IrType::I64],
            Some(IrType::I64),
        );
        b.store(MemTy::I64, b.param(0), 0, b.param(2));
        b.store(MemTy::I64, b.param(1), 0, Operand::ConstI64(0));
        let x = b.load(MemTy::I64, b.param(0), 0);
        b.stmt(Stmt::Return(Some(x)));
        let mut f = b.finish();
        run(&mut f);
        let Stmt::Assign { expr, .. } = &f.body[2] else {
            panic!("expected assign");
        };
        assert!(matches!(expr, Expr::Load { .. }), "{expr:?}");
    }

    #[test]
    fn stale_value_register_not_forwarded() {
        let mut b = FunctionBuilder::new("f", &[IrType::Ptr, IrType::I64], Some(IrType::I64));
        b.store(MemTy::I64, b.param(0), 0, b.param(1));
        let Operand::Value(v) = b.param(1) else {
            panic!("register");
        };
        b.reassign(v, Expr::Use(Operand::ConstI64(99)));
        let x = b.load(MemTy::I64, b.param(0), 0);
        b.stmt(Stmt::Return(Some(x)));
        let mut f = b.finish();
        run(&mut f);
        let Stmt::Assign { expr, .. } = &f.body[2] else {
            panic!("expected assign");
        };
        assert!(
            matches!(expr, Expr::Load { .. }),
            "value register changed since the store: {expr:?}"
        );
    }

    #[test]
    fn store_in_loop_kills_preloop_knowledge() {
        let mut b = FunctionBuilder::new("f", &[IrType::Ptr, IrType::I32], Some(IrType::I64));
        b.store(MemTy::I64, b.param(0), 0, Operand::ConstI64(1));
        b.push_block();
        let x = b.load(MemTy::I64, b.param(0), 0);
        b.store(MemTy::I64, b.param(0), 0, Operand::ConstI64(2));
        let body = b.pop_block();
        b.stmt(Stmt::While {
            header: vec![],
            cond: b.param(1),
            body,
        });
        b.stmt(Stmt::Return(Some(x)));
        let mut f = b.finish();
        run(&mut f);
        let Stmt::While { body, .. } = &f.body[1] else {
            panic!("expected while");
        };
        let Stmt::Assign { expr, .. } = &body[0] else {
            panic!("expected assign");
        };
        assert!(
            matches!(expr, Expr::Load { .. }),
            "iteration 2 sees the loop's own store: {expr:?}"
        );
    }

    #[test]
    fn segment_retag_clobbers() {
        let mut b = FunctionBuilder::new("f", &[IrType::Ptr, IrType::I64], Some(IrType::I64));
        b.store(MemTy::I64, b.param(0), 0, b.param(1));
        b.stmt(Stmt::SegmentSetTag {
            addr: b.param(0),
            tagged: b.param(0),
            len: Operand::ConstI64(16),
        });
        let x = b.load(MemTy::I64, b.param(0), 0);
        b.stmt(Stmt::Return(Some(x)));
        let mut f = b.finish();
        run(&mut f);
        let Stmt::Assign { expr, .. } = &f.body[2] else {
            panic!("expected assign");
        };
        assert!(
            matches!(expr, Expr::Load { .. }),
            "retag changes trap behaviour; the load must stay: {expr:?}"
        );
    }
}
