//! Control-flow simplification for the structured IR.
//!
//! - `If` with a constant condition is replaced by the taken arm
//!   (spliced inline — `Break`/`Continue` inside keep their binding,
//!   since `If` does not open a loop scope).
//! - `If` with two empty arms is dropped (the condition operand is a
//!   pure register/constant use).
//! - `While` whose condition is a constant zero runs its header once
//!   and exits: it is replaced by the header, provided the header has
//!   no `Break`/`Continue` bound to *this* loop (splicing would rebind
//!   them to an enclosing loop).
//! - Statements after a terminator (`Return`/`Break`/`Continue`) in
//!   the same block are unreachable and dropped — nothing jumps into
//!   the middle of a structured block.
//!
//! Together with constant/copy propagation (the CSE pass) and constant
//! folding, this is the jump-threading cleanup for this IR: folded
//! conditions feed If-pruning, and pruning exposes more straight-line
//! code to the scalar passes. Runs to a bounded fixpoint; every rewrite
//! strictly shrinks the statement tree, so the bound is never hit in
//! practice.

use crate::instr::{Operand, Stmt};
use crate::module::IrFunction;

/// Runs CFG simplification to a (bounded) fixpoint over `func`.
pub fn run(func: &mut IrFunction) {
    for _ in 0..64 {
        if !simplify(&mut func.body) {
            break;
        }
    }
}

fn const_cond(op: &Operand) -> Option<i64> {
    op.as_const_int()
}

/// Whether `stmts` contains a `Break`/`Continue` bound to the loop
/// directly enclosing them (recursing through `If` arms, where the
/// binding passes through, but not into nested loops, which capture
/// their own).
fn has_loose_loop_exit(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Break | Stmt::Continue => true,
        Stmt::If { then, els, .. } => has_loose_loop_exit(then) || has_loose_loop_exit(els),
        _ => false,
    })
}

fn simplify(stmts: &mut Vec<Stmt>) -> bool {
    let mut changed = false;
    for s in stmts.iter_mut() {
        match s {
            Stmt::If { then, els, .. } => {
                changed |= simplify(then);
                changed |= simplify(els);
            }
            Stmt::While { header, body, .. } => {
                changed |= simplify(header);
                changed |= simplify(body);
            }
            _ => {}
        }
    }
    let needs_rewrite = stmts.iter().enumerate().any(|(i, s)| match s {
        Stmt::If { cond, then, els } => {
            const_cond(cond).is_some() || (then.is_empty() && els.is_empty())
        }
        Stmt::While { header, cond, .. } => {
            const_cond(cond) == Some(0) && !has_loose_loop_exit(header)
        }
        Stmt::Return(_) | Stmt::Break | Stmt::Continue => i + 1 < stmts.len(),
        _ => false,
    });
    if !needs_rewrite {
        return changed;
    }
    let mut out = Vec::with_capacity(stmts.len());
    for s in std::mem::take(stmts) {
        match s {
            Stmt::If { cond, then, els } => match const_cond(&cond) {
                Some(c) => out.extend(if c != 0 { then } else { els }),
                None if then.is_empty() && els.is_empty() => {}
                None => out.push(Stmt::If { cond, then, els }),
            },
            Stmt::While { header, cond, body }
                if const_cond(&cond) == Some(0) && !has_loose_loop_exit(&header) =>
            {
                out.extend(header);
                drop(body);
            }
            s @ (Stmt::Return(_) | Stmt::Break | Stmt::Continue) => {
                out.push(s);
                break;
            }
            s => out.push(s),
        }
    }
    *stmts = out;
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::instr::{BinOp, Expr};
    use crate::types::IrType;

    #[test]
    fn const_true_if_splices_then_arm() {
        let mut b = FunctionBuilder::new("f", &[], Some(IrType::I64));
        b.stmt(Stmt::If {
            cond: Operand::ConstI32(1),
            then: vec![Stmt::Return(Some(Operand::ConstI64(1)))],
            els: vec![Stmt::Return(Some(Operand::ConstI64(2)))],
        });
        let mut f = b.finish();
        run(&mut f);
        assert_eq!(f.body, vec![Stmt::Return(Some(Operand::ConstI64(1)))]);
    }

    #[test]
    fn const_false_if_splices_else_arm() {
        let mut b = FunctionBuilder::new("f", &[], Some(IrType::I64));
        b.stmt(Stmt::If {
            cond: Operand::ConstI32(0),
            then: vec![Stmt::Return(Some(Operand::ConstI64(1)))],
            els: vec![Stmt::Return(Some(Operand::ConstI64(2)))],
        });
        let mut f = b.finish();
        run(&mut f);
        assert_eq!(f.body, vec![Stmt::Return(Some(Operand::ConstI64(2)))]);
    }

    #[test]
    fn empty_if_dropped() {
        let mut b = FunctionBuilder::new("f", &[IrType::I32], Some(IrType::I64));
        b.stmt(Stmt::If {
            cond: b.param(0),
            then: vec![],
            els: vec![],
        });
        b.stmt(Stmt::Return(Some(Operand::ConstI64(0))));
        let mut f = b.finish();
        run(&mut f);
        assert_eq!(f.body.len(), 1);
    }

    #[test]
    fn dead_code_after_return_dropped() {
        let mut b = FunctionBuilder::new("f", &[], Some(IrType::I64));
        b.stmt(Stmt::Return(Some(Operand::ConstI64(1))));
        let _dead = b.binop(
            BinOp::Add,
            IrType::I64,
            Operand::ConstI64(1),
            Operand::ConstI64(2),
        );
        b.stmt(Stmt::Return(Some(Operand::ConstI64(2))));
        let mut f = b.finish();
        run(&mut f);
        assert_eq!(f.body, vec![Stmt::Return(Some(Operand::ConstI64(1)))]);
    }

    #[test]
    fn const_false_while_keeps_header_once() {
        let mut b = FunctionBuilder::new("f", &[], Some(IrType::I64));
        b.stmt(Stmt::While {
            header: vec![Stmt::Assign {
                dst: crate::module::ValueId(0),
                expr: Expr::Use(Operand::ConstI64(3)),
            }],
            cond: Operand::ConstI32(0),
            body: vec![Stmt::Return(Some(Operand::ConstI64(9)))],
        });
        b.stmt(Stmt::Return(Some(Operand::ConstI64(0))));
        let mut f = b.finish();
        // Give the header's register a type slot.
        f.value_types.resize(1, IrType::I64);
        run(&mut f);
        assert_eq!(
            f.body,
            vec![
                Stmt::Assign {
                    dst: crate::module::ValueId(0),
                    expr: Expr::Use(Operand::ConstI64(3)),
                },
                Stmt::Return(Some(Operand::ConstI64(0))),
            ]
        );
    }

    #[test]
    fn while_with_loose_break_in_header_kept() {
        // `break` in the header binds to THIS loop; splicing would
        // rebind it to an enclosing loop. Must stay.
        let mut b = FunctionBuilder::new("f", &[], Some(IrType::I64));
        b.stmt(Stmt::While {
            header: vec![Stmt::If {
                cond: Operand::Value(crate::module::ValueId(0)),
                then: vec![Stmt::Break],
                els: vec![],
            }],
            cond: Operand::ConstI32(0),
            body: vec![],
        });
        b.stmt(Stmt::Return(Some(Operand::ConstI64(0))));
        let mut f = b.finish();
        f.value_types.resize(1, IrType::I32);
        run(&mut f);
        assert!(
            matches!(f.body[0], Stmt::While { .. }),
            "header with break must not be spliced: {:?}",
            f.body
        );
    }

    #[test]
    fn infinite_loop_kept() {
        let mut b = FunctionBuilder::new("f", &[], None);
        b.stmt(Stmt::While {
            header: vec![],
            cond: Operand::ConstI32(1),
            body: vec![Stmt::Break],
        });
        let mut f = b.finish();
        run(&mut f);
        assert!(matches!(f.body[0], Stmt::While { .. }));
    }

    #[test]
    fn nested_const_ifs_collapse_to_fixpoint() {
        let mut b = FunctionBuilder::new("f", &[], Some(IrType::I64));
        b.stmt(Stmt::If {
            cond: Operand::ConstI32(1),
            then: vec![Stmt::If {
                cond: Operand::ConstI32(0),
                then: vec![Stmt::Return(Some(Operand::ConstI64(1)))],
                els: vec![Stmt::Return(Some(Operand::ConstI64(2)))],
            }],
            els: vec![],
        });
        let mut f = b.finish();
        run(&mut f);
        assert_eq!(f.body, vec![Stmt::Return(Some(Operand::ConstI64(2)))]);
    }
}
