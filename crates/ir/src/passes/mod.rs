//! The pass pipeline.
//!
//! Mirrors the paper's ordering (§6.1): optimisations first (so the
//! sanitizers do not block `mem2reg`-style promotions), then the two
//! sanitizer passes.

pub mod const_fold;
pub mod dce;
pub mod mem2reg;
pub mod ptr_auth;
pub mod stack_safety;

use crate::module::IrModule;

/// Which hardening passes to run (the `-fsanitize=...`-style flags).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HardenConfig {
    /// Run the stack-safety sanitizer (Algorithm 1).
    pub stack_safety: bool,
    /// Run the pointer-authentication sanitizer.
    pub ptr_auth: bool,
}

impl HardenConfig {
    /// Everything on — the full Cage configuration.
    #[must_use]
    pub fn full() -> Self {
        HardenConfig {
            stack_safety: true,
            ptr_auth: true,
        }
    }

    /// Everything off — the baseline configurations.
    #[must_use]
    pub fn none() -> Self {
        HardenConfig::default()
    }
}

/// Full pipeline configuration: optimisation level plus sanitizers.
///
/// [`run_pipeline`] is the common fixed-shape entry; embedders that need
/// to ablate the optimiser (e.g. to measure sanitizer cost on unoptimised
/// code) configure a `PipelineConfig` through `cage::EngineBuilder`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Run the optimisation passes (`mem2reg`, const-fold, DCE) before the
    /// sanitizers — the paper's §6.1 ordering.
    pub optimize: bool,
    /// Which sanitizer passes follow.
    pub harden: HardenConfig,
}

impl PipelineConfig {
    /// The standard pipeline for `harden`: optimisations on.
    #[must_use]
    pub fn standard(harden: HardenConfig) -> Self {
        PipelineConfig {
            optimize: true,
            harden,
        }
    }
}

/// Runs the standard optimisation pipeline followed by the configured
/// sanitizers, in the paper's order.
pub fn run_pipeline(module: &mut IrModule, config: HardenConfig) {
    run_pipeline_config(module, &PipelineConfig::standard(config));
}

/// Runs an explicitly configured pipeline (see [`PipelineConfig`]).
pub fn run_pipeline_config(module: &mut IrModule, config: &PipelineConfig) {
    let fuel = cage_wasm::CompileLimits::unlimited().fuel();
    run_pipeline_config_fueled(module, config, &fuel).expect("unlimited fuel cannot run out");
}

/// Like [`run_pipeline_config`], but charges `fuel` proportionally to
/// the work each pass will do (one unit per statement per pass), so a
/// hostile program cannot buy unbounded optimiser time.
///
/// # Errors
///
/// [`cage_wasm::LimitError`] when the fuel budget runs out; the module
/// may be partially transformed (callers discard it on error).
pub fn run_pipeline_config_fueled(
    module: &mut IrModule,
    config: &PipelineConfig,
    fuel: &cage_wasm::CompileFuel,
) -> Result<(), cage_wasm::LimitError> {
    // Iterative statement count: passes recurse over bodies, so the
    // charge happens before any recursion touches them.
    let cost_of = |module: &IrModule| -> u64 {
        let mut cost = 0u64;
        for func in &module.functions {
            let mut work: Vec<&[crate::instr::Stmt]> = vec![&func.body];
            while let Some(seq) = work.pop() {
                cost = cost.saturating_add(seq.len() as u64);
                for stmt in seq {
                    match stmt {
                        crate::instr::Stmt::If { then, els, .. } => {
                            work.push(then);
                            work.push(els);
                        }
                        crate::instr::Stmt::While { header, body, .. } => {
                            work.push(header);
                            work.push(body);
                        }
                        _ => {}
                    }
                }
            }
        }
        cost
    };
    if config.optimize {
        fuel.charge(cost_of(module).saturating_mul(3))?;
        for func in &mut module.functions {
            mem2reg::run(func);
            const_fold::run(func);
            dce::run(func);
        }
    }
    if config.harden.stack_safety {
        fuel.charge(cost_of(module))?;
        for func in &mut module.functions {
            stack_safety::run(func);
        }
    }
    if config.harden.ptr_auth {
        fuel.charge(cost_of(module))?;
        ptr_auth::run(module);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harden_config_constructors() {
        assert!(HardenConfig::full().stack_safety);
        assert!(HardenConfig::full().ptr_auth);
        assert!(!HardenConfig::none().stack_safety);
    }
}
