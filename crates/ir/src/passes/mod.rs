//! The pass pipeline.
//!
//! Mirrors the paper's ordering (§6.1): optimisations first (so the
//! sanitizers do not block `mem2reg`-style promotions), then the two
//! sanitizer passes.

pub mod const_fold;
pub mod cse;
pub mod dce;
pub mod load_forward;
pub mod mem2reg;
pub mod ptr_auth;
pub mod simplify_cfg;
pub mod stack_safety;
pub mod strength_reduce;

use crate::module::IrModule;

/// Which hardening passes to run (the `-fsanitize=...`-style flags).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HardenConfig {
    /// Run the stack-safety sanitizer (Algorithm 1).
    pub stack_safety: bool,
    /// Run the pointer-authentication sanitizer.
    pub ptr_auth: bool,
}

impl HardenConfig {
    /// Everything on — the full Cage configuration.
    #[must_use]
    pub fn full() -> Self {
        HardenConfig {
            stack_safety: true,
            ptr_auth: true,
        }
    }

    /// Everything off — the baseline configurations.
    #[must_use]
    pub fn none() -> Self {
        HardenConfig::default()
    }
}

/// Per-pass toggles for the extended optimiser (beyond the standard
/// `mem2reg`/const-fold/DCE trio).
///
/// All off by default: the standard pipeline's output — and therefore
/// the PolyBench cycle golden file — is byte-for-byte unchanged unless
/// an embedder opts in. The optimised pipeline has its own golden
/// variant (see `crates/bench/tests/cycle_regression.rs`): the cycle
/// model's contract is that *charges follow the surviving ops*, so an
/// op the optimiser removes charges nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptPasses {
    /// Local value numbering (CSE) with constant/copy propagation.
    pub cse: bool,
    /// Store-to-load forwarding and redundant-load elimination.
    pub load_forward: bool,
    /// Mul/divu/remu by powers of two become shifts/masks.
    pub strength_reduce: bool,
    /// Constant-condition `If`/`While` pruning and unreachable-code
    /// removal.
    pub simplify_cfg: bool,
}

impl OptPasses {
    /// Everything on — the `-O` configuration.
    #[must_use]
    pub fn full() -> Self {
        OptPasses {
            cse: true,
            load_forward: true,
            strength_reduce: true,
            simplify_cfg: true,
        }
    }

    /// Everything off — the standard pipeline (the default).
    #[must_use]
    pub fn none() -> Self {
        OptPasses::default()
    }

    fn any(self) -> bool {
        self.cse || self.load_forward || self.strength_reduce || self.simplify_cfg
    }
}

/// Full pipeline configuration: optimisation level plus sanitizers.
///
/// [`run_pipeline`] is the common fixed-shape entry; embedders that need
/// to ablate the optimiser (e.g. to measure sanitizer cost on unoptimised
/// code) configure a `PipelineConfig` through `cage::EngineBuilder`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Run the optimisation passes (`mem2reg`, const-fold, DCE) before the
    /// sanitizers — the paper's §6.1 ordering.
    pub optimize: bool,
    /// Extended optimiser passes layered on top of `optimize` (ignored
    /// unless `optimize` is set — they rely on `mem2reg` having
    /// promoted allocas first).
    pub opt: OptPasses,
    /// Which sanitizer passes follow.
    pub harden: HardenConfig,
}

impl PipelineConfig {
    /// The standard pipeline for `harden`: optimisations on.
    #[must_use]
    pub fn standard(harden: HardenConfig) -> Self {
        PipelineConfig {
            optimize: true,
            opt: OptPasses::none(),
            harden,
        }
    }

    /// The fully optimised pipeline: standard passes plus the whole
    /// extended set.
    #[must_use]
    pub fn full_opt(harden: HardenConfig) -> Self {
        PipelineConfig {
            optimize: true,
            opt: OptPasses::full(),
            harden,
        }
    }

    /// No optimisation at all (`-O0`): sanitizers only.
    #[must_use]
    pub fn no_opt(harden: HardenConfig) -> Self {
        PipelineConfig {
            optimize: false,
            opt: OptPasses::none(),
            harden,
        }
    }
}

/// Runs the standard optimisation pipeline followed by the configured
/// sanitizers, in the paper's order.
pub fn run_pipeline(module: &mut IrModule, config: HardenConfig) {
    run_pipeline_config(module, &PipelineConfig::standard(config));
}

/// Runs an explicitly configured pipeline (see [`PipelineConfig`]).
pub fn run_pipeline_config(module: &mut IrModule, config: &PipelineConfig) {
    let fuel = cage_wasm::CompileLimits::unlimited().fuel();
    run_pipeline_config_fueled(module, config, &fuel).expect("unlimited fuel cannot run out");
}

/// Like [`run_pipeline_config`], but charges `fuel` proportionally to
/// the work each pass will do (one unit per statement per pass), so a
/// hostile program cannot buy unbounded optimiser time.
///
/// # Errors
///
/// [`cage_wasm::LimitError`] when the fuel budget runs out; the module
/// may be partially transformed (callers discard it on error).
pub fn run_pipeline_config_fueled(
    module: &mut IrModule,
    config: &PipelineConfig,
    fuel: &cage_wasm::CompileFuel,
) -> Result<(), cage_wasm::LimitError> {
    // Iterative statement count: passes recurse over bodies, so the
    // charge happens before any recursion touches them.
    let cost_of = |module: &IrModule| -> u64 {
        let mut cost = 0u64;
        for func in &module.functions {
            let mut work: Vec<&[crate::instr::Stmt]> = vec![&func.body];
            while let Some(seq) = work.pop() {
                cost = cost.saturating_add(seq.len() as u64);
                for stmt in seq {
                    match stmt {
                        crate::instr::Stmt::If { then, els, .. } => {
                            work.push(then);
                            work.push(els);
                        }
                        crate::instr::Stmt::While { header, body, .. } => {
                            work.push(header);
                            work.push(body);
                        }
                        _ => {}
                    }
                }
            }
        }
        cost
    };
    if config.optimize {
        fuel.charge(cost_of(module).saturating_mul(3))?;
        for func in &mut module.functions {
            mem2reg::run(func);
            const_fold::run(func);
        }
        if config.opt.any() {
            // One charge unit per statement per extended pass run (the
            // CSE toggle buys a constant-fold rerun: propagation turns
            // register operands into constants that fold).
            let runs = u64::from(config.opt.cse) * 2
                + u64::from(config.opt.simplify_cfg)
                + u64::from(config.opt.load_forward)
                + u64::from(config.opt.strength_reduce);
            fuel.charge(cost_of(module).saturating_mul(runs))?;
            for func in &mut module.functions {
                if config.opt.cse {
                    cse::run(func);
                    const_fold::run(func);
                }
                if config.opt.simplify_cfg {
                    simplify_cfg::run(func);
                }
                if config.opt.load_forward {
                    load_forward::run(func);
                }
                if config.opt.strength_reduce {
                    strength_reduce::run(func);
                }
            }
        }
        for func in &mut module.functions {
            dce::run(func);
        }
    }
    if config.harden.stack_safety {
        fuel.charge(cost_of(module))?;
        for func in &mut module.functions {
            stack_safety::run(func);
        }
    }
    if config.harden.ptr_auth {
        fuel.charge(cost_of(module))?;
        ptr_auth::run(module);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harden_config_constructors() {
        assert!(HardenConfig::full().stack_safety);
        assert!(HardenConfig::full().ptr_auth);
        assert!(!HardenConfig::none().stack_safety);
    }

    #[test]
    fn opt_passes_constructors() {
        assert!(OptPasses::full().any());
        assert!(!OptPasses::none().any());
        // The default (and therefore the standard pipeline) keeps the
        // extended passes off — the golden-file contract.
        assert_eq!(
            PipelineConfig::standard(HardenConfig::none()).opt,
            OptPasses::none()
        );
        assert_eq!(
            PipelineConfig::full_opt(HardenConfig::none()).opt,
            OptPasses::full()
        );
        assert!(!PipelineConfig::no_opt(HardenConfig::none()).optimize);
    }

    #[test]
    fn full_opt_pipeline_shrinks_redundant_code() {
        use crate::builder::FunctionBuilder;
        use crate::instr::{BinOp, Operand, Stmt};
        use crate::types::IrType;

        let mut b = FunctionBuilder::new("f", &[IrType::I64], Some(IrType::I64));
        let x = b.binop(BinOp::Mul, IrType::I64, b.param(0), Operand::ConstI64(8));
        let y = b.binop(BinOp::Mul, IrType::I64, b.param(0), Operand::ConstI64(8));
        let s = b.binop(BinOp::Add, IrType::I64, x, y);
        b.stmt(Stmt::Return(Some(s)));
        let f = b.finish();
        let mut module = IrModule::default();
        module.functions.push(f);
        run_pipeline_config(&mut module, &PipelineConfig::full_opt(HardenConfig::none()));
        let func = &module.functions[0];
        // CSE merged the two muls, strength reduction turned the
        // survivor into a shift, DCE swept the copy.
        let muls = func
            .body
            .iter()
            .filter(|s| {
                matches!(
                    s,
                    Stmt::Assign {
                        expr: crate::instr::Expr::BinOp { op: BinOp::Mul, .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(muls, 0, "{:?}", func.body);
        assert!(func.body.len() <= 3, "{:?}", func.body);
    }
}
