//! Local common-subexpression elimination (value numbering) with
//! constant/copy propagation.
//!
//! The IR's registers are reassignable, so availability is tracked with
//! a *version* counter per register: every `Assign` bumps the
//! destination's version, and a table entry (keyed on the operator plus
//! its operands' versions) is only a hit while both its operands and
//! its defining register still carry the versions recorded when the
//! entry was made. That makes staleness checks purely local — no
//! dataflow analysis over the structured CFG is needed.
//!
//! Scoping: entries created inside an `If` arm are discarded when the
//! arm ends (the arm may not execute), while version bumps persist
//! globally (a conditional reassignment must kill outer entries).
//! Loops conservatively bump every register assigned anywhere in the
//! loop before the loop is scanned, so entries from before the loop
//! cannot survive into an iteration that sees different values; within
//! one scan, an entry created at a statement is only ever used by
//! statements that execute later in the *same* iteration, which the
//! linear scan models exactly.
//!
//! Only pure, non-memory expressions are numbered (`BinOp`, `UnOp`,
//! `Cast`, `Gep`, `AllocaAddr`, `GlobalAddr`, `FuncAddr`). Trapping
//! arithmetic (`div`/`rem`, trunc casts) is still eligible: a repeated
//! expression has identical operands, so if the second occurrence
//! would trap, the first already did and the second is unreachable.
//! Loads are left to the store-to-load forwarding pass.
//!
//! Constant propagation never substitutes into `Ptr`-typed registers:
//! pointer-width constants lower differently from pointer-typed
//! registers on 32-bit targets, so those stay in registers.

use std::collections::HashMap;

use crate::instr::{BinOp, CastKind, Expr, Operand, Stmt, UnOp};
use crate::module::{AllocaId, FuncId, GlobalId, IrFunction, ValueId};
use crate::types::IrType;

/// Operand identity at a point in time: register *at a version*, or a
/// constant by bits.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum OpKey {
    Val(ValueId, u32),
    C32(i32),
    C64(i64),
    F64(u64),
}

/// Hashable identity of a pure expression.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum ExprKey {
    Bin(BinOp, IrType, OpKey, OpKey),
    Un(UnOp, IrType, OpKey),
    Cast(CastKind, OpKey),
    Gep(OpKey, OpKey, u64, u64),
    Alloca(AllocaId),
    Global(GlobalId),
    Func(FuncId),
}

/// What a register was last assigned, for propagation into later uses.
#[derive(Clone, Copy)]
enum PropVal {
    Const(Operand),
    Copy(ValueId, u32),
}

type Table = HashMap<ExprKey, (ValueId, u32)>;
type Prop = HashMap<ValueId, (u32, PropVal)>;

struct Cse<'a> {
    versions: HashMap<ValueId, u32>,
    value_types: &'a [IrType],
}

/// Runs local value numbering with constant/copy propagation over `func`.
pub fn run(func: &mut IrFunction) {
    let mut body = std::mem::take(&mut func.body);
    let mut cse = Cse {
        versions: HashMap::new(),
        value_types: &func.value_types,
    };
    cse.walk(&mut body, &mut Table::new(), &mut Prop::new());
    func.body = body;
}

impl Cse<'_> {
    fn version(&self, v: ValueId) -> u32 {
        self.versions.get(&v).copied().unwrap_or(0)
    }

    fn bump(&mut self, v: ValueId) {
        *self.versions.entry(v).or_insert(0) += 1;
    }

    fn value_type(&self, v: ValueId) -> Option<IrType> {
        self.value_types.get(v.0 as usize).copied()
    }

    fn bump_all_assigned(&mut self, body: &[Stmt]) {
        let mut dsts = Vec::new();
        crate::instr::visit_stmts(body, &mut |stmt| {
            if let Stmt::Assign { dst, .. } = stmt {
                dsts.push(*dst);
            }
        });
        for dst in dsts {
            self.bump(dst);
        }
    }

    /// Replaces a register use with its propagated constant or copy
    /// source, when the recorded versions still hold.
    fn subst(&self, op: &mut Operand, prop: &Prop) {
        if let Operand::Value(v) = op {
            if let Some((dst_ver, pv)) = prop.get(v) {
                if self.version(*v) == *dst_ver {
                    match pv {
                        PropVal::Const(c) => *op = *c,
                        PropVal::Copy(src, src_ver) => {
                            if self.version(*src) == *src_ver {
                                *op = Operand::Value(*src);
                            }
                        }
                    }
                }
            }
        }
    }

    fn subst_expr(&self, expr: &mut Expr, prop: &Prop) {
        match expr {
            Expr::Use(op)
            | Expr::PointerSign(op)
            | Expr::PointerAuth(op)
            | Expr::UnOp { operand: op, .. }
            | Expr::Cast { operand: op, .. }
            | Expr::Load { addr: op, .. } => self.subst(op, prop),
            Expr::BinOp { lhs, rhs, .. } => {
                self.subst(lhs, prop);
                self.subst(rhs, prop);
            }
            Expr::Gep { base, index, .. } => {
                self.subst(base, prop);
                self.subst(index, prop);
            }
            Expr::Call { args, .. } => {
                for a in args {
                    self.subst(a, prop);
                }
            }
            Expr::CallIndirect { target, args, .. } => {
                self.subst(target, prop);
                for a in args {
                    self.subst(a, prop);
                }
            }
            Expr::SegmentNew { addr, len } => {
                self.subst(addr, prop);
                self.subst(len, prop);
            }
            Expr::TagIncrement { prev, addr } => {
                self.subst(prev, prop);
                self.subst(addr, prop);
            }
            Expr::AllocaAddr(_) | Expr::GlobalAddr(_) | Expr::FuncAddr(_) => {}
        }
    }

    fn op_key(&self, op: &Operand) -> OpKey {
        match op {
            Operand::Value(v) => OpKey::Val(*v, self.version(*v)),
            Operand::ConstI32(c) => OpKey::C32(*c),
            Operand::ConstI64(c) => OpKey::C64(*c),
            Operand::ConstF64(c) => OpKey::F64(c.to_bits()),
        }
    }

    fn expr_key(&self, expr: &Expr) -> Option<ExprKey> {
        Some(match expr {
            Expr::BinOp { op, ty, lhs, rhs } => {
                ExprKey::Bin(*op, *ty, self.op_key(lhs), self.op_key(rhs))
            }
            Expr::UnOp { op, ty, operand } => ExprKey::Un(*op, *ty, self.op_key(operand)),
            Expr::Cast { kind, operand } => ExprKey::Cast(*kind, self.op_key(operand)),
            Expr::Gep {
                base,
                index,
                scale,
                offset,
            } => ExprKey::Gep(self.op_key(base), self.op_key(index), *scale, *offset),
            Expr::AllocaAddr(a) => ExprKey::Alloca(*a),
            Expr::GlobalAddr(g) => ExprKey::Global(*g),
            Expr::FuncAddr(f) => ExprKey::Func(*f),
            _ => return None,
        })
    }

    fn walk(&mut self, stmts: &mut [Stmt], table: &mut Table, prop: &mut Prop) {
        for stmt in stmts.iter_mut() {
            match stmt {
                Stmt::Assign { dst, expr } => {
                    self.subst_expr(expr, prop);
                    let key = self.expr_key(expr);
                    if let Some(key) = key {
                        if let Some((prev, prev_ver)) = table.get(&key) {
                            if self.version(*prev) == *prev_ver && prev != dst {
                                *expr = Expr::Use(Operand::Value(*prev));
                            }
                        }
                    }
                    self.bump(*dst);
                    if let Some(key) = key {
                        table.insert(key, (*dst, self.version(*dst)));
                    }
                    let rec = match expr {
                        Expr::Use(c @ (Operand::ConstI32(_) | Operand::ConstI64(_)))
                            if self.value_type(*dst) != Some(IrType::Ptr) =>
                        {
                            Some(PropVal::Const(*c))
                        }
                        Expr::Use(c @ Operand::ConstF64(_)) => Some(PropVal::Const(*c)),
                        Expr::Use(Operand::Value(src)) => {
                            Some(PropVal::Copy(*src, self.version(*src)))
                        }
                        _ => None,
                    };
                    match rec {
                        Some(pv) => {
                            prop.insert(*dst, (self.version(*dst), pv));
                        }
                        None => {
                            prop.remove(dst);
                        }
                    }
                }
                Stmt::Perform(expr) => self.subst_expr(expr, prop),
                Stmt::Store { addr, value, .. } => {
                    self.subst(addr, prop);
                    self.subst(value, prop);
                }
                Stmt::If { cond, then, els } => {
                    self.subst(cond, prop);
                    let mut t = table.clone();
                    let mut p = prop.clone();
                    self.walk(then, &mut t, &mut p);
                    let mut t = table.clone();
                    let mut p = prop.clone();
                    self.walk(els, &mut t, &mut p);
                }
                Stmt::While { header, cond, body } => {
                    // Every register assigned anywhere in the loop may
                    // change between iterations; kill entries that
                    // mention them before scanning the loop once.
                    self.bump_all_assigned(header);
                    self.bump_all_assigned(body);
                    let mut t = table.clone();
                    let mut p = prop.clone();
                    self.walk(header, &mut t, &mut p);
                    // The condition is evaluated right after the header
                    // each iteration, so the header's state applies.
                    self.subst(cond, &p);
                    self.walk(body, &mut t, &mut p);
                }
                Stmt::Return(Some(op)) => self.subst(op, prop),
                Stmt::SegmentSetTag { addr, tagged, len } => {
                    self.subst(addr, prop);
                    self.subst(tagged, prop);
                    self.subst(len, prop);
                }
                Stmt::SegmentFree { ptr, len } => {
                    self.subst(ptr, prop);
                    self.subst(len, prop);
                }
                Stmt::Return(None) | Stmt::Break | Stmt::Continue => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;

    #[test]
    fn dedupes_repeated_pure_expressions() {
        let mut b = FunctionBuilder::new("f", &[IrType::I64], Some(IrType::I64));
        let x = b.binop(BinOp::Add, IrType::I64, b.param(0), Operand::ConstI64(1));
        let y = b.binop(BinOp::Add, IrType::I64, b.param(0), Operand::ConstI64(1));
        let s = b.binop(BinOp::Add, IrType::I64, x, y);
        b.stmt(Stmt::Return(Some(s)));
        let mut f = b.finish();
        run(&mut f);
        // Second add must have become a copy of the first.
        let Stmt::Assign { expr, .. } = &f.body[1] else {
            panic!("expected assign");
        };
        assert_eq!(expr, &Expr::Use(x));
    }

    #[test]
    fn reassignment_kills_entries() {
        let mut b = FunctionBuilder::new("f", &[IrType::I64], Some(IrType::I64));
        let x = b.binop(BinOp::Add, IrType::I64, b.param(0), Operand::ConstI64(1));
        // Reassign the *operand* register (the parameter).
        let Operand::Value(p) = b.param(0) else {
            panic!("param is a register");
        };
        b.reassign(p, Expr::Use(Operand::ConstI64(7)));
        let y = b.binop(BinOp::Add, IrType::I64, b.param(0), Operand::ConstI64(1));
        let s = b.binop(BinOp::Add, IrType::I64, x, y);
        b.stmt(Stmt::Return(Some(s)));
        let mut f = b.finish();
        run(&mut f);
        // y must NOT be rewritten to a copy of x: p changed in between.
        let Stmt::Assign { expr, .. } = &f.body[2] else {
            panic!("expected assign");
        };
        assert!(
            matches!(expr, Expr::BinOp { .. }),
            "stale entry must not hit: {expr:?}"
        );
    }

    #[test]
    fn entries_from_if_arms_do_not_escape() {
        let mut b = FunctionBuilder::new("f", &[IrType::I32], Some(IrType::I64));
        b.push_block();
        let _t = b.binop(
            BinOp::Add,
            IrType::I64,
            Operand::ConstI64(4),
            Operand::ConstI64(5),
        );
        let then = b.pop_block();
        b.stmt(Stmt::If {
            cond: b.param(0),
            then,
            els: vec![],
        });
        let y = b.binop(
            BinOp::Add,
            IrType::I64,
            Operand::ConstI64(4),
            Operand::ConstI64(5),
        );
        b.stmt(Stmt::Return(Some(y)));
        let mut f = b.finish();
        run(&mut f);
        // The add after the If must stay a real add — the arm's entry
        // is conditional.
        let Stmt::Assign { expr, .. } = &f.body[1] else {
            panic!("expected assign");
        };
        assert!(matches!(expr, Expr::BinOp { .. }), "{expr:?}");
    }

    #[test]
    fn conditional_reassignment_kills_outer_entry() {
        let mut b = FunctionBuilder::new("f", &[IrType::I32, IrType::I64], Some(IrType::I64));
        let x = b.binop(BinOp::Add, IrType::I64, b.param(1), Operand::ConstI64(1));
        let Operand::Value(p) = b.param(1) else {
            panic!("param is a register");
        };
        b.push_block();
        b.reassign(p, Expr::Use(Operand::ConstI64(9)));
        let then = b.pop_block();
        b.stmt(Stmt::If {
            cond: b.param(0),
            then,
            els: vec![],
        });
        let y = b.binop(BinOp::Add, IrType::I64, b.param(1), Operand::ConstI64(1));
        let s = b.binop(BinOp::Add, IrType::I64, x, y);
        b.stmt(Stmt::Return(Some(s)));
        let mut f = b.finish();
        run(&mut f);
        let Stmt::Assign { expr, .. } = &f.body[2] else {
            panic!("expected assign");
        };
        assert!(
            matches!(expr, Expr::BinOp { .. }),
            "conditionally-stale entry must not hit: {expr:?}"
        );
    }

    #[test]
    fn loop_carried_values_are_not_reused_across_iterations() {
        // i = 0; while (i < 10) { t = i * 2; i = i + 1 }
        // The `i * 2` inside the loop must not be replaced by an entry
        // created before the loop from the same (stale) version of i.
        let mut b = FunctionBuilder::new("f", &[], Some(IrType::I64));
        let i = b.assign(IrType::I64, Expr::Use(Operand::ConstI64(0)));
        let Operand::Value(iv) = i else {
            panic!("register");
        };
        let before = b.binop(BinOp::Mul, IrType::I64, i, Operand::ConstI64(2));
        b.push_block();
        let c = b.binop(BinOp::LtS, IrType::I64, i, Operand::ConstI64(10));
        let header = b.pop_block();
        b.push_block();
        let _t = b.binop(BinOp::Mul, IrType::I64, i, Operand::ConstI64(2));
        let next = b.binop(BinOp::Add, IrType::I64, i, Operand::ConstI64(1));
        b.reassign(iv, Expr::Use(next));
        let body = b.pop_block();
        b.stmt(Stmt::While {
            header,
            cond: c,
            body,
        });
        b.stmt(Stmt::Return(Some(before)));
        let mut f = b.finish();
        run(&mut f);
        let Stmt::While { body, .. } = &f.body[2] else {
            panic!("expected while");
        };
        let Stmt::Assign { expr, .. } = &body[0] else {
            panic!("expected assign");
        };
        assert!(
            matches!(expr, Expr::BinOp { .. }),
            "loop-varying expr must stay: {expr:?}"
        );
    }

    #[test]
    fn propagates_constants_and_copies() {
        let mut b = FunctionBuilder::new("f", &[IrType::I64], Some(IrType::I64));
        let p0 = b.param(0);
        let c = b.assign(IrType::I64, Expr::Use(Operand::ConstI64(5)));
        let cp = Operand::Value(b.copy(IrType::I64, p0));
        let s = b.binop(BinOp::Add, IrType::I64, c, cp);
        b.stmt(Stmt::Return(Some(s)));
        let mut f = b.finish();
        run(&mut f);
        let Stmt::Assign { expr, .. } = &f.body[2] else {
            panic!("expected assign");
        };
        assert_eq!(
            expr,
            &Expr::BinOp {
                op: BinOp::Add,
                ty: IrType::I64,
                lhs: Operand::ConstI64(5),
                rhs: p0,
            }
        );
    }

    #[test]
    fn propagates_const_into_if_condition() {
        let mut b = FunctionBuilder::new("f", &[], Some(IrType::I64));
        let c = b.assign(IrType::I32, Expr::Use(Operand::ConstI32(0)));
        b.stmt(Stmt::If {
            cond: c,
            then: vec![],
            els: vec![],
        });
        b.stmt(Stmt::Return(Some(Operand::ConstI64(1))));
        let mut f = b.finish();
        run(&mut f);
        let Stmt::If { cond, .. } = &f.body[1] else {
            panic!("expected if");
        };
        assert_eq!(cond, &Operand::ConstI32(0));
    }
}
