//! The pointer-authentication sanitizer (§6.1, second pass).
//!
//! Instruments "code taking references to functions and performing
//! indirect calls": every `FuncAddr` is immediately signed, and every
//! indirect-call target is authenticated first (lowering then emits the
//! Fig. 9 sequence: `i64.pointer_auth; i32.wrap_i64; call_indirect`).

use crate::instr::{Expr, Operand, Stmt};
use crate::module::{IrFunction, IrModule};
use crate::types::IrType;

/// Runs the pass on every function of `module`.
pub fn run(module: &mut IrModule) {
    for func in &mut module.functions {
        run_function(func);
    }
}

fn run_function(func: &mut IrFunction) {
    let body = std::mem::take(&mut func.body);
    func.body = rewrite_body(func, body);
}

fn rewrite_body(func: &mut IrFunction, body: Vec<Stmt>) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(body.len());
    for stmt in body {
        match stmt {
            Stmt::Assign { dst, expr } => rewrite_expr(func, dst, expr, &mut out),
            Stmt::Perform(expr) => {
                // Route through a scratch destination so indirect-call
                // instrumentation is shared; pure Perform only wraps calls.
                match expr {
                    Expr::CallIndirect {
                        target,
                        params,
                        ret,
                        args,
                    } => {
                        let authed = func.new_value(IrType::Ptr);
                        out.push(Stmt::Assign {
                            dst: authed,
                            expr: Expr::PointerAuth(target),
                        });
                        out.push(Stmt::Perform(Expr::CallIndirect {
                            target: Operand::Value(authed),
                            params,
                            ret,
                            args,
                        }));
                    }
                    other => out.push(Stmt::Perform(other)),
                }
            }
            Stmt::If { cond, then, els } => out.push(Stmt::If {
                cond,
                then: rewrite_body(func, then),
                els: rewrite_body(func, els),
            }),
            Stmt::While { header, cond, body } => out.push(Stmt::While {
                header: rewrite_body(func, header),
                cond,
                body: rewrite_body(func, body),
            }),
            other => out.push(other),
        }
    }
    out
}

fn rewrite_expr(
    func: &mut IrFunction,
    dst: crate::module::ValueId,
    expr: Expr,
    out: &mut Vec<Stmt>,
) {
    match expr {
        // Taking a function's address: sign it at creation (§4.2 "when
        // creating function pointers, indices into the function table are
        // first zero-extended to 64 bits and then signed").
        Expr::FuncAddr(f) => {
            let raw = func.new_value(IrType::Ptr);
            out.push(Stmt::Assign {
                dst: raw,
                expr: Expr::FuncAddr(f),
            });
            out.push(Stmt::Assign {
                dst,
                expr: Expr::PointerSign(Operand::Value(raw)),
            });
        }
        // Indirect call: authenticate the pointer first.
        Expr::CallIndirect {
            target,
            params,
            ret,
            args,
        } => {
            let authed = func.new_value(IrType::Ptr);
            out.push(Stmt::Assign {
                dst: authed,
                expr: Expr::PointerAuth(target),
            });
            out.push(Stmt::Assign {
                dst,
                expr: Expr::CallIndirect {
                    target: Operand::Value(authed),
                    params,
                    ret,
                    args,
                },
            });
        }
        other => out.push(Stmt::Assign { dst, expr: other }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::module::FuncId;

    #[test]
    fn func_addr_is_signed() {
        let mut b = FunctionBuilder::new("f", &[], Some(IrType::Ptr));
        let p = b.assign(IrType::Ptr, Expr::FuncAddr(FuncId(0)));
        b.stmt(Stmt::Return(Some(p)));
        let mut m = IrModule::new();
        m.functions.push(b.finish());
        run(&mut m);
        let body = &m.functions[0].body;
        assert!(matches!(
            &body[0],
            Stmt::Assign {
                expr: Expr::FuncAddr(_),
                ..
            }
        ));
        assert!(matches!(
            &body[1],
            Stmt::Assign {
                expr: Expr::PointerSign(_),
                ..
            }
        ));
    }

    #[test]
    fn indirect_call_is_authenticated() {
        let mut b = FunctionBuilder::new("f", &[IrType::Ptr], Some(IrType::I64));
        let r = b.assign(
            IrType::I64,
            Expr::CallIndirect {
                target: b.param(0),
                params: vec![],
                ret: Some(IrType::I64),
                args: vec![],
            },
        );
        b.stmt(Stmt::Return(Some(r)));
        let mut m = IrModule::new();
        m.functions.push(b.finish());
        run(&mut m);
        let body = &m.functions[0].body;
        assert!(matches!(
            &body[0],
            Stmt::Assign {
                expr: Expr::PointerAuth(_),
                ..
            }
        ));
        // The call's target must now be the authenticated register.
        match &body[1] {
            Stmt::Assign {
                expr: Expr::CallIndirect { target, .. },
                ..
            } => {
                let authed_dst = match &body[0] {
                    Stmt::Assign { dst, .. } => *dst,
                    _ => unreachable!(),
                };
                assert_eq!(target.as_value(), Some(authed_dst));
            }
            other => panic!("expected indirect call, got {other:?}"),
        }
    }

    #[test]
    fn nested_and_perform_calls_are_instrumented() {
        let mut b = FunctionBuilder::new("f", &[IrType::Ptr, IrType::I32], None);
        b.push_block();
        b.stmt(Stmt::Perform(Expr::CallIndirect {
            target: b.param(0),
            params: vec![],
            ret: None,
            args: vec![],
        }));
        let then = b.pop_block();
        b.stmt(Stmt::If {
            cond: b.param(1),
            then,
            els: vec![],
        });
        let mut m = IrModule::new();
        m.functions.push(b.finish());
        run(&mut m);
        let mut auth_count = 0;
        crate::instr::visit_stmts(&m.functions[0].body, &mut |s| {
            if let Stmt::Assign {
                expr: Expr::PointerAuth(_),
                ..
            } = s
            {
                auth_count += 1;
            }
        });
        assert_eq!(auth_count, 1);
    }

    #[test]
    fn direct_calls_untouched() {
        let mut b = FunctionBuilder::new("f", &[], None);
        b.stmt(Stmt::Perform(Expr::Call {
            callee: crate::instr::Callee::Extern(0),
            args: vec![],
        }));
        let mut m = IrModule::new();
        m.functions.push(b.finish());
        let before = m.functions[0].body.clone();
        run(&mut m);
        assert_eq!(m.functions[0].body, before);
    }
}
