//! The stack-safety sanitizer — the paper's Algorithm 1.
//!
//! For every allocation that escapes or is indexed unverifiably, the pass:
//!
//! 1. creates a segment over the (16-byte padded) slot on function entry
//!    (`insertTaggingCode`), keeping the tagged pointer in a register;
//! 2. rewrites all address-taking of the slot to use the tagged pointer;
//! 3. retags the slot back to the untagged frame on *every* function exit
//!    (`insertUntaggingCode`), restoring it to the stack frame so later
//!    frames can reuse the memory and stale pointers trap (§4.2);
//! 4. inserts an untagged guard slot at the beginning of the frame when
//!    the frame would otherwise start with a tagged slot (`insertGuard-
//!    Alloc`, Fig. 8b), so adjacent frames can never collide on a tag.
//!
//! Note on the guard condition: Algorithm 1 as printed reads
//! `allocations[0] ∉ allocsToInstrument → insertGuardAlloc()`, but the
//! prose ("inserts a single untagged stack guard slot at the beginning of
//! the frame **if no such untagged stack slot exists**") implies the
//! opposite polarity — a guard is only needed when the frame's first slot
//! *is* tagged. We implement the prose semantics.

use crate::analysis::analyze_allocas;
use crate::instr::{Expr, Operand, Stmt};
use crate::module::{Alloca, AllocaId, IrFunction, ValueId};
use crate::types::IrType;

/// Rounds a slot size up to the 16-byte tag granule.
#[must_use]
pub fn granule_align(size: u64) -> u64 {
    size.div_ceil(16).max(1) * 16
}

/// Runs Algorithm 1 on `func`.
pub fn run(func: &mut IrFunction) {
    let analysis = analyze_allocas(func);
    let to_instrument: Vec<AllocaId> = (0..func.allocas.len() as u32)
        .map(AllocaId)
        .filter(|id| analysis.needs_instrumentation(*id))
        .collect();
    if to_instrument.is_empty() {
        return;
    }
    for id in &to_instrument {
        func.allocas[id.0 as usize].instrument = true;
    }

    // insertGuardAlloc: needed when the frame starts with a tagged slot.
    if func.allocas[0].instrument {
        func.allocas.push(Alloca {
            size: 16,
            name: "__cage_guard".into(),
            instrument: false,
            is_guard: true,
        });
    }

    // Registers for the raw (frame) and tagged pointers of each slot.
    let mut raw_regs: Vec<(AllocaId, ValueId)> = Vec::new();
    let mut tagged_regs: Vec<(AllocaId, ValueId)> = Vec::new();
    for id in &to_instrument {
        raw_regs.push((*id, func.new_value(IrType::Ptr)));
        tagged_regs.push((*id, func.new_value(IrType::Ptr)));
    }
    let tagged_of = |id: AllocaId| -> ValueId {
        tagged_regs
            .iter()
            .find(|(a, _)| *a == id)
            .map(|(_, v)| *v)
            .expect("instrumented alloca has a tagged register")
    };

    // Rewrite AllocaAddr uses of instrumented slots to the tagged pointer
    // (before the prologue is spliced in, so the prologue's own
    // AllocaAddr expressions stay raw).
    let instrumented = |id: AllocaId| to_instrument.contains(&id);
    crate::instr::visit_stmts_mut(&mut func.body, &mut |stmt| {
        let rewrite = |expr: &mut Expr| {
            if let Expr::AllocaAddr(id) = expr {
                if instrumented(*id) {
                    *expr = Expr::Use(Operand::Value(tagged_of(*id)));
                }
            }
        };
        match stmt {
            Stmt::Assign { expr, .. } | Stmt::Perform(expr) => rewrite(expr),
            _ => {}
        }
    });

    // insertUntaggingCode: before every return and at fall-through exit.
    let untag_stmts: Vec<Stmt> = to_instrument
        .iter()
        .map(|id| {
            let raw = raw_regs
                .iter()
                .find(|(a, _)| *a == *id)
                .map(|(_, v)| *v)
                .expect("raw register");
            let size = granule_align(func.allocas[id.0 as usize].size);
            Stmt::SegmentSetTag {
                addr: Operand::Value(raw),
                // The untagged frame pointer carries the frame's tag.
                tagged: Operand::Value(raw),
                len: Operand::ConstI64(size as i64),
            }
        })
        .collect();
    insert_before_returns(&mut func.body, &untag_stmts);
    if !ends_with_return(&func.body) {
        func.body.extend(untag_stmts.iter().cloned());
    }

    // insertTaggingCode: the prologue, spliced in front. The first slot
    // draws a random tag (`segment.new`, i.e. `irg`); each subsequent slot
    // increments the previous tag by one (§4.2), guaranteeing adjacent
    // slots within the frame never share a tag.
    let mut prologue = Vec::new();
    let mut prev_tagged: Option<ValueId> = None;
    for id in &to_instrument {
        let raw = raw_regs
            .iter()
            .find(|(a, _)| *a == *id)
            .map(|(_, v)| *v)
            .expect("raw register");
        let size = granule_align(func.allocas[id.0 as usize].size);
        prologue.push(Stmt::Assign {
            dst: raw,
            expr: Expr::AllocaAddr(*id),
        });
        let tagged = tagged_of(*id);
        match prev_tagged {
            None => prologue.push(Stmt::Assign {
                dst: tagged,
                expr: Expr::SegmentNew {
                    addr: Operand::Value(raw),
                    len: Operand::ConstI64(size as i64),
                },
            }),
            Some(prev) => {
                prologue.push(Stmt::Assign {
                    dst: tagged,
                    expr: Expr::TagIncrement {
                        prev: Operand::Value(prev),
                        addr: Operand::Value(raw),
                    },
                });
                prologue.push(Stmt::SegmentSetTag {
                    addr: Operand::Value(raw),
                    tagged: Operand::Value(tagged),
                    len: Operand::ConstI64(size as i64),
                });
            }
        }
        prev_tagged = Some(tagged);
    }
    prologue.append(&mut func.body);
    func.body = prologue;
}

fn ends_with_return(body: &[Stmt]) -> bool {
    matches!(body.last(), Some(Stmt::Return(_)))
}

fn insert_before_returns(body: &mut Vec<Stmt>, untag: &[Stmt]) {
    let mut i = 0;
    while i < body.len() {
        match &mut body[i] {
            Stmt::Return(_) => {
                for (k, s) in untag.iter().cloned().enumerate() {
                    body.insert(i + k, s);
                }
                i += untag.len() + 1;
            }
            Stmt::If { then, els, .. } => {
                insert_before_returns(then, untag);
                insert_before_returns(els, untag);
                i += 1;
            }
            Stmt::While {
                header, body: b, ..
            } => {
                insert_before_returns(header, untag);
                insert_before_returns(b, untag);
                i += 1;
            }
            _ => i += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::instr::{Callee, MemTy};

    fn escaping_func() -> IrFunction {
        let mut b = FunctionBuilder::new("f", &[], None);
        let a = b.alloca(24, "buf");
        let p = b.alloca_addr(a);
        b.stmt(Stmt::Perform(Expr::Call {
            callee: Callee::Extern(0),
            args: vec![p],
        }));
        b.stmt(Stmt::Return(None));
        b.finish()
    }

    #[test]
    fn granule_alignment() {
        assert_eq!(granule_align(1), 16);
        assert_eq!(granule_align(16), 16);
        assert_eq!(granule_align(17), 32);
        assert_eq!(granule_align(0), 16);
    }

    #[test]
    fn escaping_alloca_gets_instrumented_with_guard() {
        let mut f = escaping_func();
        run(&mut f);
        assert!(f.allocas[0].instrument);
        // Frame starts with a tagged slot -> guard inserted.
        assert!(f.allocas.iter().any(|a| a.is_guard));
        // Prologue: raw addr + segment.new.
        assert!(matches!(
            &f.body[0],
            Stmt::Assign {
                expr: Expr::AllocaAddr(_),
                ..
            }
        ));
        assert!(matches!(
            &f.body[1],
            Stmt::Assign {
                expr: Expr::SegmentNew { .. },
                ..
            }
        ));
        // Untag before the return.
        let has_untag_before_return = f.body.windows(2).any(|w| {
            matches!(&w[0], Stmt::SegmentSetTag { .. }) && matches!(&w[1], Stmt::Return(_))
        });
        assert!(has_untag_before_return, "{:#?}", f.body);
    }

    #[test]
    fn safe_allocas_left_alone() {
        let mut b = FunctionBuilder::new("f", &[], None);
        let a = b.alloca(8, "x");
        let p = b.alloca_addr(a);
        b.store(MemTy::I64, p, 0, Operand::ConstI64(3));
        let mut f = b.finish();
        let before = f.body.clone();
        run(&mut f);
        assert_eq!(f.body, before, "no instrumentation for safe slots");
        assert!(!f.allocas[0].instrument);
        assert!(!f.allocas.iter().any(|a| a.is_guard));
    }

    #[test]
    fn no_guard_when_first_slot_untagged() {
        // First alloca is safe (acts as the untagged slot); second escapes.
        let mut b = FunctionBuilder::new("f", &[], None);
        let safe = b.alloca(16, "safe");
        let unsafe_a = b.alloca(16, "esc");
        let p_safe = b.alloca_addr(safe);
        b.store(MemTy::I64, p_safe, 0, Operand::ConstI64(0));
        let p = b.alloca_addr(unsafe_a);
        b.stmt(Stmt::Perform(Expr::Call {
            callee: Callee::Extern(0),
            args: vec![p],
        }));
        let mut f = b.finish();
        run(&mut f);
        assert!(!f.allocas[0].instrument);
        assert!(f.allocas[1].instrument);
        assert!(!f.allocas.iter().any(|a| a.is_guard));
    }

    #[test]
    fn alloca_addr_uses_are_rewritten_to_tagged_pointer() {
        let mut f = escaping_func();
        run(&mut f);
        // After the pass, the call argument must be the tagged register,
        // i.e. no AllocaAddr of an instrumented slot outside the prologue.
        let mut raw_uses_outside_prologue = 0;
        for stmt in f.body.iter().skip(2) {
            crate::instr::visit_exprs(stmt, &mut |e| {
                if matches!(e, Expr::AllocaAddr(_)) {
                    raw_uses_outside_prologue += 1;
                }
            });
        }
        assert_eq!(raw_uses_outside_prologue, 0);
    }

    #[test]
    fn fall_through_exit_gets_untag() {
        let mut b = FunctionBuilder::new("f", &[], None);
        let a = b.alloca(16, "buf");
        let p = b.alloca_addr(a);
        b.stmt(Stmt::Perform(Expr::Call {
            callee: Callee::Extern(0),
            args: vec![p],
        }));
        // No explicit return.
        let mut f = b.finish();
        run(&mut f);
        assert!(matches!(f.body.last(), Some(Stmt::SegmentSetTag { .. })));
    }

    #[test]
    fn returns_in_branches_all_get_untags() {
        let mut b = FunctionBuilder::new("f", &[IrType::I32], Some(IrType::I32));
        let a = b.alloca(16, "buf");
        let p = b.alloca_addr(a);
        b.stmt(Stmt::Perform(Expr::Call {
            callee: Callee::Extern(0),
            args: vec![p],
        }));
        b.push_block();
        b.stmt(Stmt::Return(Some(Operand::ConstI32(1))));
        let then = b.pop_block();
        b.stmt(Stmt::If {
            cond: b.param(0),
            then,
            els: vec![],
        });
        b.stmt(Stmt::Return(Some(Operand::ConstI32(0))));
        let mut f = b.finish();
        run(&mut f);
        let mut untag_count = 0;
        crate::instr::visit_stmts(&f.body, &mut |s| {
            if matches!(s, Stmt::SegmentSetTag { .. }) {
                untag_count += 1;
            }
        });
        assert_eq!(untag_count, 2, "one untag per exit path");
    }
}
