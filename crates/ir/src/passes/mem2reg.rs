//! A `mem2reg`-style promotion: stack slots that are only ever loaded and
//! stored directly (whole-slot, offset 0, consistent type, address never
//! taken for anything else) become plain registers.
//!
//! Running this *before* the sanitizers matters: the paper orders its
//! passes "after all LLVM optimizations. This ensures that Cage does not
//! block passes that might remove stack allocations, such as mem2reg"
//! (§6.1) — promoted slots need no tagging at all.

use std::collections::{HashMap, HashSet};

use crate::instr::{Expr, Operand, Stmt};
use crate::module::{AllocaId, IrFunction, ValueId};
use crate::types::IrType;

/// Runs promotion over `func`. Promoted allocas get size 0 (the lowering
/// skips them in frame layout).
pub fn run(func: &mut IrFunction) {
    // 1. Which registers hold which alloca's address, and is every use of
    //    those registers a direct whole-slot load/store?
    let mut addr_regs: HashMap<ValueId, AllocaId> = HashMap::new();
    crate::instr::visit_stmts(&func.body, &mut |stmt| {
        if let Stmt::Assign {
            dst,
            expr: Expr::AllocaAddr(id),
        } = stmt
        {
            addr_regs.insert(*dst, *id);
        }
    });

    let mut disqualified: HashSet<AllocaId> = HashSet::new();
    let mut slot_ty: HashMap<AllocaId, crate::instr::MemTy> = HashMap::new();

    let is_addr = |op: &Operand, addr_regs: &HashMap<ValueId, AllocaId>| {
        op.as_value().and_then(|v| addr_regs.get(&v).copied())
    };

    crate::instr::visit_stmts(&func.body, &mut |stmt| {
        let mut check_use = |op: &Operand| {
            if let Some(id) = is_addr(op, &addr_regs) {
                disqualified.insert(id);
            }
        };
        match stmt {
            Stmt::Assign { expr, .. } | Stmt::Perform(expr) => match expr {
                Expr::Load { ty, addr, offset } => {
                    if let Some(id) = is_addr(addr, &addr_regs) {
                        let whole = *offset == 0 && ty.width() == func.allocas[id.0 as usize].size;
                        let consistent = slot_ty.get(&id).is_none_or(|t| t == ty);
                        if !whole || !consistent {
                            disqualified.insert(id);
                        } else {
                            slot_ty.insert(id, *ty);
                        }
                    }
                }
                Expr::AllocaAddr(_) => {}
                // Any other expression consuming the address disqualifies.
                Expr::Use(op) | Expr::PointerSign(op) | Expr::PointerAuth(op) => check_use(op),
                Expr::UnOp { operand, .. } | Expr::Cast { operand, .. } => check_use(operand),
                Expr::BinOp { lhs, rhs, .. } => {
                    check_use(lhs);
                    check_use(rhs);
                }
                Expr::Gep { base, index, .. } => {
                    check_use(base);
                    check_use(index);
                }
                Expr::Call { args, .. } => args.iter().for_each(&mut check_use),
                Expr::CallIndirect { target, args, .. } => {
                    check_use(target);
                    args.iter().for_each(&mut check_use);
                }
                Expr::SegmentNew { addr, len } => {
                    check_use(addr);
                    check_use(len);
                }
                Expr::TagIncrement { prev, addr } => {
                    check_use(prev);
                    check_use(addr);
                }
                Expr::GlobalAddr(_) | Expr::FuncAddr(_) => {}
            },
            Stmt::Store {
                ty,
                addr,
                offset,
                value,
            } => {
                check_use(value);
                if let Some(id) = is_addr(addr, &addr_regs) {
                    let whole = *offset == 0 && ty.width() == func.allocas[id.0 as usize].size;
                    let consistent = slot_ty.get(&id).is_none_or(|t| t == ty);
                    if !whole || !consistent {
                        disqualified.insert(id);
                    } else {
                        slot_ty.insert(id, *ty);
                    }
                }
            }
            Stmt::Return(Some(op)) => check_use(op),
            Stmt::If { cond, .. } => check_use(cond),
            Stmt::While { cond, .. } => check_use(cond),
            Stmt::SegmentSetTag { addr, tagged, len } => {
                check_use(addr);
                check_use(tagged);
                check_use(len);
            }
            Stmt::SegmentFree { ptr, len } => {
                check_use(ptr);
                check_use(len);
            }
            _ => {}
        }
    });

    // 2. Promote: each qualifying alloca gets a register; loads become
    //    Use, stores become Assign.
    let mut promoted: HashMap<AllocaId, ValueId> = HashMap::new();
    for (&id, &ty) in &slot_ty {
        if !disqualified.contains(&id) {
            let reg = func.new_value(ty.value_type());
            promoted.insert(id, reg);
        }
    }
    if promoted.is_empty() {
        return;
    }

    let promoted_addr_regs: HashSet<ValueId> = addr_regs
        .iter()
        .filter(|(_, id)| promoted.contains_key(id))
        .map(|(v, _)| *v)
        .collect();

    crate::instr::visit_stmts_mut(&mut func.body, &mut |stmt| {
        match stmt {
            Stmt::Assign { expr, .. } => match expr {
                Expr::Load { addr, .. } => {
                    if let Some(id) = is_addr(addr, &addr_regs) {
                        if let Some(reg) = promoted.get(&id) {
                            *expr = Expr::Use(Operand::Value(*reg));
                        }
                    }
                }
                // The address computation itself becomes dead; make it a
                // trivial zero so DCE removes it.
                Expr::AllocaAddr(id) if promoted.contains_key(id) => {
                    *expr = Expr::Use(Operand::ConstI64(0));
                }
                _ => {}
            },
            Stmt::Store { addr, value, .. } => {
                if let Some(v) = addr.as_value() {
                    if promoted_addr_regs.contains(&v) {
                        let id = addr_regs[&v];
                        let reg = promoted[&id];
                        *stmt = Stmt::Assign {
                            dst: reg,
                            expr: Expr::Use(*value),
                        };
                    }
                }
            }
            _ => {}
        }
    });

    for (id, _) in promoted {
        func.allocas[id.0 as usize].size = 0;
    }
    let _ = IrType::I32; // keep the import used under cfg(test)-less builds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::instr::{Callee, MemTy};

    #[test]
    fn promotes_simple_scalar_slot() {
        let mut b = FunctionBuilder::new("f", &[], Some(IrType::I64));
        let a = b.alloca(8, "x");
        let p = b.alloca_addr(a);
        b.store(MemTy::I64, p, 0, Operand::ConstI64(5));
        let v = b.load(MemTy::I64, p, 0);
        b.stmt(Stmt::Return(Some(v)));
        let mut f = b.finish();
        run(&mut f);
        assert_eq!(f.allocas[0].size, 0, "slot promoted away");
        let mut loads = 0;
        crate::instr::visit_stmts(&f.body, &mut |s| {
            if matches!(s, Stmt::Store { .. }) {
                loads += 1;
            }
            if let Stmt::Assign {
                expr: Expr::Load { .. },
                ..
            } = s
            {
                loads += 1;
            }
        });
        assert_eq!(loads, 0, "no memory traffic remains");
    }

    #[test]
    fn does_not_promote_escaping_slot() {
        let mut b = FunctionBuilder::new("f", &[], None);
        let a = b.alloca(8, "x");
        let p = b.alloca_addr(a);
        b.stmt(Stmt::Perform(Expr::Call {
            callee: Callee::Extern(0),
            args: vec![p],
        }));
        let mut f = b.finish();
        run(&mut f);
        assert_eq!(f.allocas[0].size, 8);
    }

    #[test]
    fn does_not_promote_partial_access() {
        let mut b = FunctionBuilder::new("f", &[], Some(IrType::I32));
        let a = b.alloca(8, "x");
        let p = b.alloca_addr(a);
        // 4-byte load of an 8-byte slot: not whole-slot.
        let v = b.load(MemTy::I32, p, 0);
        b.stmt(Stmt::Return(Some(v)));
        let mut f = b.finish();
        run(&mut f);
        assert_eq!(f.allocas[0].size, 8);
    }

    #[test]
    fn does_not_promote_gep_addressed_slot() {
        let mut b = FunctionBuilder::new("f", &[IrType::I64], None);
        let a = b.alloca(32, "arr");
        let p = b.alloca_addr(a);
        let q = b.assign(
            IrType::Ptr,
            Expr::Gep {
                base: p,
                index: b.param(0),
                scale: 8,
                offset: 0,
            },
        );
        b.store(MemTy::I64, q, 0, Operand::ConstI64(1));
        let mut f = b.finish();
        run(&mut f);
        assert_eq!(f.allocas[0].size, 32);
    }
}
