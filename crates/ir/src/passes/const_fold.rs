//! Constant folding and algebraic simplification.
//!
//! The evaluator is *typed*: every integer op is evaluated at the width
//! of the expression's `IrType`, matching what the lowered wasm (and the
//! engine tiers) will compute at runtime. Getting this wrong silently
//! diverges optimized from unoptimized code — historically `eval_int`
//! ran everything at 64 bits, so `i32.shl x, 32` folded to `0` instead
//! of `x` (wasm masks the shift count mod 32), `i32.shr_u -1, 1` folded
//! to `-1` instead of `0x7FFF_FFFF` (the sign-extended constant leaked
//! phantom high bits into unsigned ops), and `i32.div_s INT_MIN, -1`
//! folded to a value where the spec mandates a trap.
//!
//! Folding rules:
//! - shifts mask their count mod the operand width (mod 32 at i32);
//! - unsigned div/rem/shift/compare zero-extend 32-bit operands;
//! - ops that trap at runtime (`div`/`rem` by zero, `div_s MIN, -1`)
//!   are never folded — the trap must survive to runtime;
//! - `Ptr`-typed ops fold only when the result is truncation-compatible
//!   (`add`/`sub`/`mul`/`and`/`or`/`xor`), because the pointer width is
//!   decided later by the lowering target (8 bytes on wasm64, 4 on
//!   wasm32) and anything width-sensitive would bake in the wrong one.

use crate::instr::{BinOp, Expr, Operand, Stmt, UnOp};
use crate::module::IrFunction;
use crate::types::IrType;

/// Runs constant folding over `func`.
pub fn run(func: &mut IrFunction) {
    crate::instr::visit_stmts_mut(&mut func.body, &mut |stmt| {
        if let Stmt::Assign { expr, .. } = stmt {
            if let Some(folded) = fold(expr) {
                *expr = folded;
            }
        }
    });
}

fn fold(expr: &Expr) -> Option<Expr> {
    match expr {
        Expr::BinOp { op, ty, lhs, rhs } => fold_binop(*op, *ty, lhs, rhs),
        Expr::UnOp { op, ty, operand } => fold_unop(*op, *ty, operand),
        _ => None,
    }
}

fn fold_binop(op: BinOp, ty: IrType, lhs: &Operand, rhs: &Operand) -> Option<Expr> {
    // Integer constant folding, at the expression's width.
    if let (Some(a), Some(b)) = (lhs.as_const_int(), rhs.as_const_int()) {
        if ty != IrType::F64 {
            let v = eval_int(op, ty, a, b)?;
            return Some(Expr::Use(if op.is_comparison() {
                Operand::ConstI32(v as i32)
            } else {
                match ty {
                    IrType::I32 => Operand::ConstI32(v as i32),
                    _ => Operand::ConstI64(v),
                }
            }));
        }
    }
    // Float constant folding for the arithmetic ops.
    if let (Operand::ConstF64(a), Operand::ConstF64(b)) = (lhs, rhs) {
        let v = match op {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::DivS => a / b,
            _ => return None,
        };
        return Some(Expr::Use(Operand::ConstF64(v)));
    }
    // Algebraic identities (integer only; float identities are unsound
    // under NaN/signed zero).
    if ty != IrType::F64 {
        match (op, rhs.as_const_int()) {
            (BinOp::Add | BinOp::Sub | BinOp::Or | BinOp::Xor, Some(0)) => {
                return Some(Expr::Use(*lhs));
            }
            // A shift is a no-op when the *masked* count is zero; the
            // mask depends on the width, so Ptr (width unknown until
            // lowering) only qualifies for a literal zero count.
            (BinOp::Shl | BinOp::ShrS | BinOp::ShrU, Some(c))
                if match ty {
                    IrType::I32 => c & 31 == 0,
                    IrType::I64 => c & 63 == 0,
                    _ => c == 0,
                } =>
            {
                return Some(Expr::Use(*lhs));
            }
            (BinOp::Mul, Some(1)) | (BinOp::DivS | BinOp::DivU, Some(1)) => {
                return Some(Expr::Use(*lhs));
            }
            (BinOp::Mul | BinOp::And, Some(0)) => {
                return Some(Expr::Use(match ty {
                    IrType::I32 => Operand::ConstI32(0),
                    _ => Operand::ConstI64(0),
                }));
            }
            _ => {}
        }
    }
    None
}

/// Evaluates an integer binop at the width of `ty`, returning `None`
/// when the op must not be folded (runtime-trapping, or `Ptr`-typed and
/// width-sensitive). Results are sign-extended to i64; comparisons
/// yield 0/1.
fn eval_int(op: BinOp, ty: IrType, a: i64, b: i64) -> Option<i64> {
    match ty {
        IrType::I32 => eval_i32(op, a as i32, b as i32),
        IrType::I64 => eval_i64(op, a, b),
        // Pointer width is a lowering decision; only ops whose 64-bit
        // result truncates to the correct 32-bit result are safe here.
        IrType::Ptr => match op {
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor => {
                eval_i64(op, a, b)
            }
            _ => None,
        },
        IrType::F64 => None,
    }
}

fn eval_i32(op: BinOp, a: i32, b: i32) -> Option<i64> {
    let au = a as u32;
    let bu = b as u32;
    let v: i32 = match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::DivS => {
            // b == 0 and MIN/-1 both trap at runtime; leave them.
            a.checked_div(b)?
        }
        BinOp::DivU => au.checked_div(bu)? as i32,
        BinOp::RemS => {
            if b == 0 {
                return None;
            }
            // MIN % -1 is 0 in wasm (no trap).
            a.wrapping_rem(b)
        }
        BinOp::RemU => au.checked_rem(bu)? as i32,
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        // wrapping_sh{l,r} mask the count mod 32 — wasm semantics.
        BinOp::Shl => a.wrapping_shl(bu),
        BinOp::ShrS => a.wrapping_shr(bu),
        BinOp::ShrU => au.wrapping_shr(bu) as i32,
        BinOp::Eq => i32::from(a == b),
        BinOp::Ne => i32::from(a != b),
        BinOp::LtS => i32::from(a < b),
        BinOp::LtU => i32::from(au < bu),
        BinOp::LeS => i32::from(a <= b),
        BinOp::LeU => i32::from(au <= bu),
        BinOp::GtS => i32::from(a > b),
        BinOp::GtU => i32::from(au > bu),
        BinOp::GeS => i32::from(a >= b),
        BinOp::GeU => i32::from(au >= bu),
    };
    Some(i64::from(v))
}

fn eval_i64(op: BinOp, a: i64, b: i64) -> Option<i64> {
    let au = a as u64;
    let bu = b as u64;
    Some(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::DivS => a.checked_div(b)?,
        BinOp::DivU => (au.checked_div(bu)?) as i64,
        BinOp::RemS => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        BinOp::RemU => (au.checked_rem(bu)?) as i64,
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl(b as u32),
        BinOp::ShrS => a.wrapping_shr(b as u32),
        BinOp::ShrU => au.wrapping_shr(b as u32) as i64,
        BinOp::Eq => i64::from(a == b),
        BinOp::Ne => i64::from(a != b),
        BinOp::LtS => i64::from(a < b),
        BinOp::LtU => i64::from(au < bu),
        BinOp::LeS => i64::from(a <= b),
        BinOp::LeU => i64::from(au <= bu),
        BinOp::GtS => i64::from(a > b),
        BinOp::GtU => i64::from(au > bu),
        BinOp::GeS => i64::from(a >= b),
        BinOp::GeU => i64::from(au >= bu),
    })
}

fn fold_unop(op: UnOp, ty: IrType, operand: &Operand) -> Option<Expr> {
    if let Some(a) = operand.as_const_int() {
        // Width audit: `Neg` and `BitNot` commute with truncation, so a
        // 64-bit evaluation truncated to i32 is exact at i32 (including
        // `-INT_MIN`, which wraps — wasm has no trapping negate).
        // `Not` (`x == 0`) is width-stable for sign-extended constants
        // (zero iff zero) but NOT truncation-stable, so it is refused
        // at `Ptr` where the width is unknown until lowering.
        let v = match (op, ty) {
            (_, IrType::F64) => return None,
            (UnOp::Neg, _) => a.wrapping_neg(),
            (UnOp::Not, IrType::I32 | IrType::I64) => i64::from(a == 0),
            (UnOp::BitNot, _) => !a,
            _ => return None,
        };
        return Some(Expr::Use(match ty {
            IrType::I32 => Operand::ConstI32(v as i32),
            _ if op == UnOp::Not => Operand::ConstI32(v as i32),
            _ => Operand::ConstI64(v),
        }));
    }
    if let Operand::ConstF64(a) = operand {
        let v = match op {
            UnOp::Neg => -a,
            UnOp::Sqrt => a.sqrt(),
            UnOp::Fabs => a.abs(),
            _ => return None,
        };
        return Some(Expr::Use(Operand::ConstF64(v)));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::module::ValueId;

    fn fold_one(expr: Expr, ty: IrType) -> Expr {
        let mut b = FunctionBuilder::new("f", &[IrType::I64], None);
        b.assign(ty, expr);
        let mut f = b.finish();
        run(&mut f);
        match &f.body[0] {
            Stmt::Assign { expr, .. } => expr.clone(),
            _ => unreachable!(),
        }
    }

    fn bin(op: BinOp, ty: IrType, lhs: Operand, rhs: Operand) -> Expr {
        Expr::BinOp { op, ty, lhs, rhs }
    }

    fn fold_i32(op: BinOp, a: i32, b: i32) -> Expr {
        fold_one(
            bin(op, IrType::I32, Operand::ConstI32(a), Operand::ConstI32(b)),
            IrType::I32,
        )
    }

    #[test]
    fn folds_integer_arithmetic() {
        let e = fold_one(
            bin(
                BinOp::Add,
                IrType::I64,
                Operand::ConstI64(40),
                Operand::ConstI64(2),
            ),
            IrType::I64,
        );
        assert_eq!(e, Expr::Use(Operand::ConstI64(42)));
    }

    #[test]
    fn folds_comparisons_to_i32() {
        let e = fold_one(
            bin(
                BinOp::LtS,
                IrType::I64,
                Operand::ConstI64(1),
                Operand::ConstI64(2),
            ),
            IrType::I32,
        );
        assert_eq!(e, Expr::Use(Operand::ConstI32(1)));
    }

    #[test]
    fn division_by_zero_not_folded() {
        for ty in [IrType::I32, IrType::I64] {
            for op in [BinOp::DivS, BinOp::DivU, BinOp::RemS, BinOp::RemU] {
                let orig = bin(op, ty, Operand::ConstI32(1), Operand::ConstI32(0));
                assert_eq!(fold_one(orig.clone(), ty), orig, "{op:?} {ty:?}");
            }
        }
    }

    // --- The i32-width regression matrix: each of these folded to the
    // wrong value (or folded where the spec mandates a trap) when the
    // evaluator ran everything at 64 bits. ---

    #[test]
    fn i32_shift_counts_mask_mod_32() {
        // 1 << 32 masks to 1 << 0 == 1 at i32 (used to fold to 0).
        assert_eq!(fold_i32(BinOp::Shl, 1, 32), Expr::Use(Operand::ConstI32(1)));
        // 7 << 33 == 7 << 1 == 14.
        assert_eq!(
            fold_i32(BinOp::Shl, 7, 33),
            Expr::Use(Operand::ConstI32(14))
        );
        // -8 >> 33 (arith) == -8 >> 1 == -4.
        assert_eq!(
            fold_i32(BinOp::ShrS, -8, 33),
            Expr::Use(Operand::ConstI32(-4))
        );
        // i64 counts mask mod 64.
        let e = fold_one(
            bin(
                BinOp::Shl,
                IrType::I64,
                Operand::ConstI64(1),
                Operand::ConstI64(64),
            ),
            IrType::I64,
        );
        assert_eq!(e, Expr::Use(Operand::ConstI64(1)));
    }

    #[test]
    fn i32_unsigned_ops_zero_extend() {
        // -1 >>u 1 at i32 is 0x7FFF_FFFF (used to fold to -1 via the
        // sign-extended 64-bit value).
        assert_eq!(
            fold_i32(BinOp::ShrU, -1, 1),
            Expr::Use(Operand::ConstI32(0x7FFF_FFFF))
        );
        // 0xFFFF_FFFF /u 2 == 0x7FFF_FFFF.
        assert_eq!(
            fold_i32(BinOp::DivU, -1, 2),
            Expr::Use(Operand::ConstI32(0x7FFF_FFFF))
        );
        // 0xFFFF_FFFF %u 10 == 5.
        assert_eq!(
            fold_i32(BinOp::RemU, -1, 10),
            Expr::Use(Operand::ConstI32(5))
        );
        // -1 <u 1 is false at i32 (0xFFFF_FFFF is large unsigned).
        assert_eq!(fold_i32(BinOp::LtU, -1, 1), Expr::Use(Operand::ConstI32(0)));
        assert_eq!(fold_i32(BinOp::GtU, -1, 1), Expr::Use(Operand::ConstI32(1)));
    }

    #[test]
    fn div_s_min_by_minus_one_not_folded() {
        // Traps in wasm at both widths; must never fold.
        let orig = bin(
            BinOp::DivS,
            IrType::I32,
            Operand::ConstI32(i32::MIN),
            Operand::ConstI32(-1),
        );
        assert_eq!(fold_one(orig.clone(), IrType::I32), orig);
        let orig = bin(
            BinOp::DivS,
            IrType::I64,
            Operand::ConstI64(i64::MIN),
            Operand::ConstI64(-1),
        );
        assert_eq!(fold_one(orig.clone(), IrType::I64), orig);
        // rem_s MIN, -1 is 0, NOT a trap.
        assert_eq!(
            fold_i32(BinOp::RemS, i32::MIN, -1),
            Expr::Use(Operand::ConstI32(0))
        );
    }

    #[test]
    fn i32_arith_wraps_at_32_bits() {
        assert_eq!(
            fold_i32(BinOp::Add, i32::MAX, 1),
            Expr::Use(Operand::ConstI32(i32::MIN))
        );
        assert_eq!(
            fold_i32(BinOp::Mul, 0x10000, 0x10000),
            Expr::Use(Operand::ConstI32(0))
        );
    }

    #[test]
    fn ptr_width_sensitive_ops_not_folded() {
        // Shift/div/compare results differ between 32- and 64-bit
        // pointer targets; only truncation-safe ops fold at Ptr.
        let orig = bin(
            BinOp::ShrU,
            IrType::Ptr,
            Operand::ConstI64(-1),
            Operand::ConstI64(1),
        );
        assert_eq!(fold_one(orig.clone(), IrType::I64), orig);
        let e = fold_one(
            bin(
                BinOp::Add,
                IrType::Ptr,
                Operand::ConstI64(8),
                Operand::ConstI64(8),
            ),
            IrType::Ptr,
        );
        assert_eq!(e, Expr::Use(Operand::ConstI64(16)));
    }

    #[test]
    fn shift_identity_is_width_aware() {
        let x = Operand::Value(ValueId(0));
        // x << 32 at i32 is x (count masks to 0).
        let e = fold_one(
            bin(BinOp::Shl, IrType::I32, x, Operand::ConstI32(32)),
            IrType::I32,
        );
        assert_eq!(e, Expr::Use(x));
        // x << 32 at i64 is NOT x.
        let orig = bin(BinOp::Shl, IrType::I64, x, Operand::ConstI64(32));
        assert_eq!(fold_one(orig.clone(), IrType::I64), orig);
        // x << 64 at i64 is x.
        let e = fold_one(
            bin(BinOp::Shl, IrType::I64, x, Operand::ConstI64(64)),
            IrType::I64,
        );
        assert_eq!(e, Expr::Use(x));
        // Ptr width is unknown: only a literal zero count is an identity.
        let orig = bin(BinOp::Shl, IrType::Ptr, x, Operand::ConstI64(32));
        assert_eq!(fold_one(orig.clone(), IrType::Ptr), orig);
    }

    #[test]
    fn unop_width_audit() {
        // Neg wraps at i32: -INT_MIN == INT_MIN, no trap.
        let e = fold_one(
            Expr::UnOp {
                op: UnOp::Neg,
                ty: IrType::I32,
                operand: Operand::ConstI32(i32::MIN),
            },
            IrType::I32,
        );
        assert_eq!(e, Expr::Use(Operand::ConstI32(i32::MIN)));
        // BitNot truncates exactly.
        let e = fold_one(
            Expr::UnOp {
                op: UnOp::BitNot,
                ty: IrType::I32,
                operand: Operand::ConstI32(0x0F0F_0F0F),
            },
            IrType::I32,
        );
        assert_eq!(e, Expr::Use(Operand::ConstI32(!0x0F0F_0F0F)));
        // Not yields i32 0/1 at both widths.
        let e = fold_one(
            Expr::UnOp {
                op: UnOp::Not,
                ty: IrType::I64,
                operand: Operand::ConstI64(0),
            },
            IrType::I32,
        );
        assert_eq!(e, Expr::Use(Operand::ConstI32(1)));
        // Not at Ptr is width-sensitive under truncation: refused.
        let orig = Expr::UnOp {
            op: UnOp::Not,
            ty: IrType::Ptr,
            operand: Operand::ConstI64(0x1_0000_0000),
        };
        assert_eq!(fold_one(orig.clone(), IrType::I32), orig);
    }

    #[test]
    fn identity_simplifications() {
        let x = Operand::Value(ValueId(0));
        let e = fold_one(
            bin(BinOp::Add, IrType::I64, x, Operand::ConstI64(0)),
            IrType::I64,
        );
        assert_eq!(e, Expr::Use(x));
        let e = fold_one(
            bin(BinOp::Mul, IrType::I64, x, Operand::ConstI64(0)),
            IrType::I64,
        );
        assert_eq!(e, Expr::Use(Operand::ConstI64(0)));
    }

    #[test]
    fn float_identities_not_applied() {
        // x + 0.0 is not a no-op for -0.0; must stay.
        let x = Operand::Value(ValueId(0));
        let orig = Expr::BinOp {
            op: BinOp::Add,
            ty: IrType::F64,
            lhs: x,
            rhs: Operand::ConstF64(0.0),
        };
        assert_eq!(fold_one(orig.clone(), IrType::F64), orig);
    }

    #[test]
    fn folds_float_constants_and_unops() {
        let e = fold_one(
            bin(
                BinOp::Mul,
                IrType::F64,
                Operand::ConstF64(3.0),
                Operand::ConstF64(4.0),
            ),
            IrType::F64,
        );
        assert_eq!(e, Expr::Use(Operand::ConstF64(12.0)));
        let e = fold_one(
            Expr::UnOp {
                op: UnOp::Sqrt,
                ty: IrType::F64,
                operand: Operand::ConstF64(9.0),
            },
            IrType::F64,
        );
        assert_eq!(e, Expr::Use(Operand::ConstF64(3.0)));
    }
}
