//! Constant folding and algebraic simplification.

use crate::instr::{BinOp, Expr, Operand, Stmt, UnOp};
use crate::module::IrFunction;
use crate::types::IrType;

/// Runs constant folding over `func`.
pub fn run(func: &mut IrFunction) {
    crate::instr::visit_stmts_mut(&mut func.body, &mut |stmt| {
        if let Stmt::Assign { expr, .. } = stmt {
            if let Some(folded) = fold(expr) {
                *expr = folded;
            }
        }
    });
}

fn fold(expr: &Expr) -> Option<Expr> {
    match expr {
        Expr::BinOp { op, ty, lhs, rhs } => fold_binop(*op, *ty, lhs, rhs),
        Expr::UnOp { op, ty, operand } => fold_unop(*op, *ty, operand),
        _ => None,
    }
}

fn fold_binop(op: BinOp, ty: IrType, lhs: &Operand, rhs: &Operand) -> Option<Expr> {
    // Integer constant folding.
    if let (Some(a), Some(b)) = (lhs.as_const_int(), rhs.as_const_int()) {
        if ty != IrType::F64 {
            let v = eval_int(op, a, b)?;
            return Some(Expr::Use(match ty {
                IrType::I32 => Operand::ConstI32(v as i32),
                _ if op.is_comparison() => Operand::ConstI32(v as i32),
                _ => Operand::ConstI64(v),
            }));
        }
    }
    // Float constant folding for the arithmetic ops.
    if let (Operand::ConstF64(a), Operand::ConstF64(b)) = (lhs, rhs) {
        let v = match op {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::DivS => a / b,
            _ => return None,
        };
        return Some(Expr::Use(Operand::ConstF64(v)));
    }
    // Algebraic identities (integer only; float identities are unsound
    // under NaN/signed zero).
    if ty != IrType::F64 {
        match (op, rhs.as_const_int()) {
            (
                BinOp::Add
                | BinOp::Sub
                | BinOp::Or
                | BinOp::Xor
                | BinOp::Shl
                | BinOp::ShrS
                | BinOp::ShrU,
                Some(0),
            ) => {
                return Some(Expr::Use(*lhs));
            }
            (BinOp::Mul, Some(1)) | (BinOp::DivS | BinOp::DivU, Some(1)) => {
                return Some(Expr::Use(*lhs));
            }
            (BinOp::Mul | BinOp::And, Some(0)) => {
                return Some(Expr::Use(match ty {
                    IrType::I32 => Operand::ConstI32(0),
                    _ => Operand::ConstI64(0),
                }));
            }
            _ => {}
        }
    }
    None
}

fn eval_int(op: BinOp, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::DivS => {
            if b == 0 {
                return None; // leave the trap to runtime
            }
            a.checked_div(b)?
        }
        BinOp::DivU => {
            if b == 0 {
                return None;
            }
            ((a as u64) / (b as u64)) as i64
        }
        BinOp::RemS => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        BinOp::RemU => {
            if b == 0 {
                return None;
            }
            ((a as u64) % (b as u64)) as i64
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl(b as u32),
        BinOp::ShrS => a.wrapping_shr(b as u32),
        BinOp::ShrU => ((a as u64).wrapping_shr(b as u32)) as i64,
        BinOp::Eq => i64::from(a == b),
        BinOp::Ne => i64::from(a != b),
        BinOp::LtS => i64::from(a < b),
        BinOp::LtU => i64::from((a as u64) < b as u64),
        BinOp::LeS => i64::from(a <= b),
        BinOp::LeU => i64::from((a as u64) <= b as u64),
        BinOp::GtS => i64::from(a > b),
        BinOp::GtU => i64::from(a as u64 > b as u64),
        BinOp::GeS => i64::from(a >= b),
        BinOp::GeU => i64::from(a as u64 >= b as u64),
    })
}

fn fold_unop(op: UnOp, ty: IrType, operand: &Operand) -> Option<Expr> {
    if let Some(a) = operand.as_const_int() {
        if ty != IrType::F64 {
            let v = match op {
                UnOp::Neg => a.wrapping_neg(),
                UnOp::Not => i64::from(a == 0),
                UnOp::BitNot => !a,
                _ => return None,
            };
            return Some(Expr::Use(match ty {
                IrType::I32 => Operand::ConstI32(v as i32),
                _ if op == UnOp::Not => Operand::ConstI32(v as i32),
                _ => Operand::ConstI64(v),
            }));
        }
    }
    if let Operand::ConstF64(a) = operand {
        let v = match op {
            UnOp::Neg => -a,
            UnOp::Sqrt => a.sqrt(),
            UnOp::Fabs => a.abs(),
            _ => return None,
        };
        return Some(Expr::Use(Operand::ConstF64(v)));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::module::ValueId;

    fn fold_one(expr: Expr, ty: IrType) -> Expr {
        let mut b = FunctionBuilder::new("f", &[IrType::I64], None);
        b.assign(ty, expr);
        let mut f = b.finish();
        run(&mut f);
        match &f.body[0] {
            Stmt::Assign { expr, .. } => expr.clone(),
            _ => unreachable!(),
        }
    }

    #[test]
    fn folds_integer_arithmetic() {
        let e = fold_one(
            Expr::BinOp {
                op: BinOp::Add,
                ty: IrType::I64,
                lhs: Operand::ConstI64(40),
                rhs: Operand::ConstI64(2),
            },
            IrType::I64,
        );
        assert_eq!(e, Expr::Use(Operand::ConstI64(42)));
    }

    #[test]
    fn folds_comparisons_to_i32() {
        let e = fold_one(
            Expr::BinOp {
                op: BinOp::LtS,
                ty: IrType::I64,
                lhs: Operand::ConstI64(1),
                rhs: Operand::ConstI64(2),
            },
            IrType::I32,
        );
        assert_eq!(e, Expr::Use(Operand::ConstI32(1)));
    }

    #[test]
    fn division_by_zero_not_folded() {
        let orig = Expr::BinOp {
            op: BinOp::DivS,
            ty: IrType::I64,
            lhs: Operand::ConstI64(1),
            rhs: Operand::ConstI64(0),
        };
        assert_eq!(fold_one(orig.clone(), IrType::I64), orig);
    }

    #[test]
    fn identity_simplifications() {
        let x = Operand::Value(ValueId(0));
        let e = fold_one(
            Expr::BinOp {
                op: BinOp::Add,
                ty: IrType::I64,
                lhs: x,
                rhs: Operand::ConstI64(0),
            },
            IrType::I64,
        );
        assert_eq!(e, Expr::Use(x));
        let e = fold_one(
            Expr::BinOp {
                op: BinOp::Mul,
                ty: IrType::I64,
                lhs: x,
                rhs: Operand::ConstI64(0),
            },
            IrType::I64,
        );
        assert_eq!(e, Expr::Use(Operand::ConstI64(0)));
    }

    #[test]
    fn float_identities_not_applied() {
        // x + 0.0 is not a no-op for -0.0; must stay.
        let x = Operand::Value(ValueId(0));
        let orig = Expr::BinOp {
            op: BinOp::Add,
            ty: IrType::F64,
            lhs: x,
            rhs: Operand::ConstF64(0.0),
        };
        assert_eq!(fold_one(orig.clone(), IrType::F64), orig);
    }

    #[test]
    fn folds_float_constants_and_unops() {
        let e = fold_one(
            Expr::BinOp {
                op: BinOp::Mul,
                ty: IrType::F64,
                lhs: Operand::ConstF64(3.0),
                rhs: Operand::ConstF64(4.0),
            },
            IrType::F64,
        );
        assert_eq!(e, Expr::Use(Operand::ConstF64(12.0)));
        let e = fold_one(
            Expr::UnOp {
                op: UnOp::Sqrt,
                ty: IrType::F64,
                operand: Operand::ConstF64(9.0),
            },
            IrType::F64,
        );
        assert_eq!(e, Expr::Use(Operand::ConstF64(3.0)));
    }
}
