//! Dead-code elimination: removes assignments to registers that are never
//! read, when the right-hand side has no side effects.

use std::collections::HashSet;

use crate::instr::{Expr, Operand, Stmt};
use crate::module::{IrFunction, ValueId};

fn collect_operand(uses: &mut HashSet<ValueId>, op: &Operand) {
    if let Some(v) = op.as_value() {
        uses.insert(v);
    }
}

fn collect_expr_uses(uses: &mut HashSet<ValueId>, expr: &Expr) {
    match expr {
        Expr::Use(op)
        | Expr::PointerSign(op)
        | Expr::PointerAuth(op)
        | Expr::UnOp { operand: op, .. }
        | Expr::Cast { operand: op, .. } => collect_operand(uses, op),
        Expr::BinOp { lhs, rhs, .. } => {
            collect_operand(uses, lhs);
            collect_operand(uses, rhs);
        }
        Expr::Load { addr, .. } => collect_operand(uses, addr),
        Expr::Gep { base, index, .. } => {
            collect_operand(uses, base);
            collect_operand(uses, index);
        }
        Expr::Call { args, .. } => args.iter().for_each(|a| collect_operand(uses, a)),
        Expr::CallIndirect { target, args, .. } => {
            collect_operand(uses, target);
            args.iter().for_each(|a| collect_operand(uses, a));
        }
        Expr::SegmentNew { addr, len } => {
            collect_operand(uses, addr);
            collect_operand(uses, len);
        }
        Expr::TagIncrement { prev, addr } => {
            collect_operand(uses, prev);
            collect_operand(uses, addr);
        }
        Expr::AllocaAddr(_) | Expr::GlobalAddr(_) | Expr::FuncAddr(_) => {}
    }
}

fn collect_uses(body: &[Stmt], uses: &mut HashSet<ValueId>) {
    crate::instr::visit_stmts(body, &mut |stmt| match stmt {
        Stmt::Assign { expr, .. } | Stmt::Perform(expr) => collect_expr_uses(uses, expr),
        Stmt::Store { addr, value, .. } => {
            collect_operand(uses, addr);
            collect_operand(uses, value);
        }
        Stmt::If { cond, .. } => collect_operand(uses, cond),
        Stmt::While { cond, .. } => collect_operand(uses, cond),
        Stmt::Return(Some(op)) => collect_operand(uses, op),
        Stmt::SegmentSetTag { addr, tagged, len } => {
            collect_operand(uses, addr);
            collect_operand(uses, tagged);
            collect_operand(uses, len);
        }
        Stmt::SegmentFree { ptr, len } => {
            collect_operand(uses, ptr);
            collect_operand(uses, len);
        }
        _ => {}
    });
}

fn has_side_effects(expr: &Expr) -> bool {
    matches!(
        expr,
        Expr::Call { .. }
            | Expr::CallIndirect { .. }
            | Expr::SegmentNew { .. }
            // Authentication traps on invalid signatures: removing it
            // would change behaviour.
            | Expr::PointerAuth(_)
            // Loads can trap (OOB, tag mismatch) — keep them.
            | Expr::Load { .. }
    )
}

fn sweep(body: &mut Vec<Stmt>, uses: &HashSet<ValueId>) -> bool {
    let mut removed = false;
    body.retain(|stmt| match stmt {
        Stmt::Assign { dst, expr } if !uses.contains(dst) && !has_side_effects(expr) => {
            removed = true;
            false
        }
        _ => true,
    });
    for stmt in body.iter_mut() {
        match stmt {
            Stmt::If { then, els, .. } => {
                removed |= sweep(then, uses);
                removed |= sweep(els, uses);
            }
            Stmt::While { header, body, .. } => {
                removed |= sweep(header, uses);
                removed |= sweep(body, uses);
            }
            _ => {}
        }
    }
    removed
}

/// Runs DCE to a fixpoint over `func`.
pub fn run(func: &mut IrFunction) {
    loop {
        let mut uses = HashSet::new();
        collect_uses(&func.body, &mut uses);
        if !sweep(&mut func.body, &uses) {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::instr::{BinOp, Callee};
    use crate::types::IrType;

    #[test]
    fn removes_unused_pure_assignments_transitively() {
        let mut b = FunctionBuilder::new("f", &[IrType::I64], Some(IrType::I64));
        let dead1 = b.binop(BinOp::Add, IrType::I64, b.param(0), Operand::ConstI64(1));
        let _dead2 = b.binop(BinOp::Mul, IrType::I64, dead1, Operand::ConstI64(2));
        b.stmt(Stmt::Return(Some(b.param(0))));
        let mut f = b.finish();
        run(&mut f);
        assert_eq!(f.body.len(), 1, "both dead chains removed");
    }

    #[test]
    fn keeps_used_assignments() {
        let mut b = FunctionBuilder::new("f", &[IrType::I64], Some(IrType::I64));
        let v = b.binop(BinOp::Add, IrType::I64, b.param(0), Operand::ConstI64(1));
        b.stmt(Stmt::Return(Some(v)));
        let mut f = b.finish();
        run(&mut f);
        assert_eq!(f.body.len(), 2);
    }

    #[test]
    fn keeps_side_effecting_assignments() {
        let mut b = FunctionBuilder::new("f", &[], None);
        let _unused = b.assign(
            IrType::I64,
            Expr::Call {
                callee: Callee::Extern(0),
                args: vec![],
            },
        );
        let mut f = b.finish();
        run(&mut f);
        assert_eq!(f.body.len(), 1, "call kept for its effects");
    }

    #[test]
    fn sweeps_nested_bodies() {
        let mut b = FunctionBuilder::new("f", &[IrType::I32], None);
        b.push_block();
        let _dead = b.binop(
            BinOp::Add,
            IrType::I32,
            Operand::ConstI32(1),
            Operand::ConstI32(2),
        );
        let then = b.pop_block();
        b.stmt(Stmt::If {
            cond: b.param(0),
            then,
            els: vec![],
        });
        let mut f = b.finish();
        run(&mut f);
        match &f.body[0] {
            Stmt::If { then, .. } => assert!(then.is_empty()),
            other => panic!("{other:?}"),
        }
    }
}
