//! Strength reduction: multiply / unsigned divide / unsigned remainder
//! by a power of two become shift / mask ops.
//!
//! Width discipline mirrors the constant folder: the power-of-two test
//! runs at the expression's width (an `i32` constant is inspected as
//! `u32`, so `-2147483648` is `0x8000_0000` — a power of two — and
//! `i32.mul x, 0x8000_0000` legitimately becomes `x << 31`). Signed
//! division is never touched: `div_s` rounds toward zero, a shift
//! rounds toward negative infinity, and rewriting `div_s x, -1` would
//! erase the `INT_MIN` trap. `Ptr`-typed ops are skipped because the
//! operand width is a lowering decision.
//!
//! Replacement constants are emitted at the expression's own width so
//! lowering keeps producing well-typed wasm.

use crate::instr::{BinOp, Expr, Operand, Stmt};
use crate::module::IrFunction;
use crate::types::IrType;

/// Runs strength reduction over `func`.
pub fn run(func: &mut IrFunction) {
    crate::instr::visit_stmts_mut(&mut func.body, &mut |stmt| {
        if let Stmt::Assign { expr, .. } = stmt {
            if let Some(r) = reduce(expr) {
                *expr = r;
            }
        }
    });
}

/// The constant's unsigned value at the expression's width, if the
/// operand is an integer constant of the matching width.
fn const_unsigned(ty: IrType, op: &Operand) -> Option<u64> {
    match (ty, op) {
        (IrType::I32, Operand::ConstI32(c)) => Some(u64::from(*c as u32)),
        (IrType::I64, Operand::ConstI64(c)) => Some(*c as u64),
        _ => None,
    }
}

fn shift_const(ty: IrType, k: u32) -> Operand {
    match ty {
        IrType::I32 => Operand::ConstI32(k as i32),
        _ => Operand::ConstI64(i64::from(k)),
    }
}

fn reduce(expr: &Expr) -> Option<Expr> {
    let Expr::BinOp { op, ty, lhs, rhs } = expr else {
        return None;
    };
    let (op, ty) = (*op, *ty);
    if !matches!(ty, IrType::I32 | IrType::I64) {
        return None;
    }
    match op {
        BinOp::Mul => {
            // x * 2^k  ->  x << k   (both operand orders).
            let (x, c) = match (const_unsigned(ty, lhs), const_unsigned(ty, rhs)) {
                (_, Some(c)) => (*lhs, c),
                (Some(c), None) => (*rhs, c),
                _ => return None,
            };
            if c.is_power_of_two() && c > 1 {
                return Some(Expr::BinOp {
                    op: BinOp::Shl,
                    ty,
                    lhs: x,
                    rhs: shift_const(ty, c.trailing_zeros()),
                });
            }
            None
        }
        BinOp::DivU => {
            // x /u 2^k  ->  x >>u k. Division by a nonzero constant
            // cannot trap, so the rewrite drops no trap.
            let c = const_unsigned(ty, rhs)?;
            if c.is_power_of_two() && c > 1 {
                return Some(Expr::BinOp {
                    op: BinOp::ShrU,
                    ty,
                    lhs: *lhs,
                    rhs: shift_const(ty, c.trailing_zeros()),
                });
            }
            None
        }
        BinOp::RemU => {
            // x %u 2^k  ->  x & (2^k - 1); x %u 1 is always 0.
            let c = const_unsigned(ty, rhs)?;
            if c == 1 {
                return Some(Expr::Use(match ty {
                    IrType::I32 => Operand::ConstI32(0),
                    _ => Operand::ConstI64(0),
                }));
            }
            if c.is_power_of_two() {
                let mask = c - 1;
                return Some(Expr::BinOp {
                    op: BinOp::And,
                    ty,
                    lhs: *lhs,
                    rhs: match ty {
                        IrType::I32 => Operand::ConstI32(mask as u32 as i32),
                        _ => Operand::ConstI64(mask as i64),
                    },
                });
            }
            None
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;

    fn reduce_one(expr: Expr, ty: IrType) -> Expr {
        let mut b = FunctionBuilder::new("f", &[IrType::I64], None);
        b.assign(ty, expr);
        let mut f = b.finish();
        run(&mut f);
        match &f.body[0] {
            Stmt::Assign { expr, .. } => expr.clone(),
            _ => unreachable!(),
        }
    }

    #[test]
    fn mul_pow2_becomes_shift() {
        let x = Operand::Value(crate::module::ValueId(0));
        let e = reduce_one(
            Expr::BinOp {
                op: BinOp::Mul,
                ty: IrType::I64,
                lhs: x,
                rhs: Operand::ConstI64(8),
            },
            IrType::I64,
        );
        assert_eq!(
            e,
            Expr::BinOp {
                op: BinOp::Shl,
                ty: IrType::I64,
                lhs: x,
                rhs: Operand::ConstI64(3),
            }
        );
        // Commuted.
        let e = reduce_one(
            Expr::BinOp {
                op: BinOp::Mul,
                ty: IrType::I32,
                lhs: Operand::ConstI32(4),
                rhs: x,
            },
            IrType::I32,
        );
        assert_eq!(
            e,
            Expr::BinOp {
                op: BinOp::Shl,
                ty: IrType::I32,
                lhs: x,
                rhs: Operand::ConstI32(2),
            }
        );
    }

    #[test]
    fn i32_min_is_a_power_of_two_unsigned() {
        let x = Operand::Value(crate::module::ValueId(0));
        let e = reduce_one(
            Expr::BinOp {
                op: BinOp::Mul,
                ty: IrType::I32,
                lhs: x,
                rhs: Operand::ConstI32(i32::MIN),
            },
            IrType::I32,
        );
        assert_eq!(
            e,
            Expr::BinOp {
                op: BinOp::Shl,
                ty: IrType::I32,
                lhs: x,
                rhs: Operand::ConstI32(31),
            }
        );
    }

    #[test]
    fn divu_and_remu_pow2() {
        let x = Operand::Value(crate::module::ValueId(0));
        let e = reduce_one(
            Expr::BinOp {
                op: BinOp::DivU,
                ty: IrType::I32,
                lhs: x,
                rhs: Operand::ConstI32(16),
            },
            IrType::I32,
        );
        assert_eq!(
            e,
            Expr::BinOp {
                op: BinOp::ShrU,
                ty: IrType::I32,
                lhs: x,
                rhs: Operand::ConstI32(4),
            }
        );
        let e = reduce_one(
            Expr::BinOp {
                op: BinOp::RemU,
                ty: IrType::I64,
                lhs: x,
                rhs: Operand::ConstI64(16),
            },
            IrType::I64,
        );
        assert_eq!(
            e,
            Expr::BinOp {
                op: BinOp::And,
                ty: IrType::I64,
                lhs: x,
                rhs: Operand::ConstI64(15),
            }
        );
    }

    #[test]
    fn signed_div_untouched() {
        let x = Operand::Value(crate::module::ValueId(0));
        for (op, c) in [(BinOp::DivS, 8), (BinOp::DivS, -1), (BinOp::RemS, 8)] {
            let orig = Expr::BinOp {
                op,
                ty: IrType::I64,
                lhs: x,
                rhs: Operand::ConstI64(c),
            };
            assert_eq!(reduce_one(orig.clone(), IrType::I64), orig, "{op:?}");
        }
    }

    #[test]
    fn width_mismatched_constants_skipped() {
        let x = Operand::Value(crate::module::ValueId(0));
        // An i64 constant in an i32-typed op is malformed; don't touch.
        let orig = Expr::BinOp {
            op: BinOp::Mul,
            ty: IrType::I32,
            lhs: x,
            rhs: Operand::ConstI64(8),
        };
        assert_eq!(reduce_one(orig.clone(), IrType::I32), orig);
        // Ptr width is unknown until lowering.
        let orig = Expr::BinOp {
            op: BinOp::Mul,
            ty: IrType::Ptr,
            lhs: x,
            rhs: Operand::ConstI64(8),
        };
        assert_eq!(reduce_one(orig.clone(), IrType::Ptr), orig);
    }
}
