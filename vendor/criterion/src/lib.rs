//! Vendored, offline subset of the `criterion` benchmark API.
//!
//! The build container cannot reach crates.io, so this shim provides the
//! surface the workspace's benches use — `criterion_group!` /
//! `criterion_main!`, [`Criterion::benchmark_group`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`] — with a simple
//! wall-clock measurement loop (warmup + timed samples, mean/min/max
//! reported on stdout). No plots, no statistics machinery.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How `iter_batched` amortises setup cost (accepted for compatibility;
/// the shim always runs setup per batch of one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Disables plot generation (a no-op here; kept for API parity).
    #[must_use]
    pub fn without_plots(self) -> Self {
        self
    }

    /// Overrides the default sample count.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== {name}");
        BenchmarkGroup {
            criterion: self,
            sample_size: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.sample_size;
        run_benchmark(id, samples, f);
        self
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_benchmark(id, samples, f);
        self
    }

    /// Ends the group (output already flushed per-benchmark).
    pub fn finish(self) {}
}

/// Whether the harness was invoked with `--test` (real criterion's smoke
/// mode: run every benchmark exactly once, no timing statistics) — used
/// by CI so release-mode benches can't rot without paying for a full
/// measurement run.
fn test_mode() -> bool {
    static MODE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *MODE.get_or_init(|| std::env::args().any(|a| a == "--test"))
}

fn run_benchmark<F>(id: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let samples = if test_mode() { 1 } else { samples };
    let mut bencher = Bencher {
        samples: Vec::with_capacity(samples),
        target_samples: samples,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {id:<32} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let max = bencher.samples.iter().max().copied().unwrap_or_default();
    println!(
        "  {id:<32} mean {mean:>12?}  min {min:>12?}  max {max:>12?}  ({} samples)",
        bencher.samples.len()
    );
}

/// Passed to each benchmark closure; runs and times the workload.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // One warmup iteration, then timed samples (no warmup in `--test`
        // smoke mode: each benchmark runs exactly once).
        if !test_mode() {
            let _ = routine();
        }
        for _ in 0..self.target_samples {
            let start = Instant::now();
            let out = routine();
            self.samples.push(start.elapsed());
            drop(out);
        }
    }

    /// Times `routine` over inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if !test_mode() {
            let warm = setup();
            let _ = routine(warm);
        }
        for _ in 0..self.target_samples {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.samples.push(start.elapsed());
            drop(out);
        }
    }
}

/// Declares a group of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("shim");
        let mut runs = 0u32;
        group.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
            });
        });
        group.finish();
        // 1 warmup + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default().sample_size(2);
        let mut setups = 0u32;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                },
                |()| (),
                BatchSize::SmallInput,
            );
        });
        assert_eq!(setups, 3);
    }
}
