//! Test-runner support types: configuration, errors and the case RNG.

use std::fmt;

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases generated per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count actually run: the `PROPTEST_CASES` environment
    /// variable overrides the in-source configuration (mirroring upstream
    /// proptest), so CI can run the property suites at a higher count
    /// without patching the tests.
    #[must_use]
    pub fn resolved_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

/// A failed case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with `message`.
    #[must_use]
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// The deterministic case generator (SplitMix64 seeded from the test name).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name, so every run of a given test
    /// explores the same cases (reproducibility without a persistence
    /// file). `PROPTEST_BASE_SEED` folds an extra fixed seed in, so CI
    /// can pin a *different* deterministic exploration than local runs
    /// without losing reproducibility.
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Some(base) = std::env::var("PROPTEST_BASE_SEED")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
        {
            h ^= base.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
        TestRng { state: h }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Modulo bias is irrelevant at these magnitudes for test-case
        // generation purposes.
        self.next_u64() % bound
    }
}
