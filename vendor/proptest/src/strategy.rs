//! The [`Strategy`] trait and its combinators.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no shrink tree: `generate` draws one
/// value directly. Strategies are immutable and freely shareable.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy behind a cheaply-cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }

    /// Builds a recursive strategy: `recurse` receives a handle to the
    /// tree-so-far and wraps it one level deeper, up to `depth` levels.
    ///
    /// The `_desired_size` / `_expected_branch_size` parameters exist for
    /// upstream signature compatibility; depth alone bounds recursion here.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut strat = base.clone();
        for _ in 0..depth {
            let deeper = recurse(strat).boxed();
            // Mix leaves back in so generated trees terminate early with
            // positive probability at every level.
            strat = Union::new(vec![base.clone(), deeper]).boxed();
        }
        strat
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased, cheaply-cloneable strategy handle.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Uniform choice between strategies of one value type (`prop_oneof!`).
#[derive(Debug, Clone)]
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `arms`; panics if empty.
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..256 {
            let v: i64 = (-5i64..7).generate(&mut rng);
            assert!((-5..7).contains(&v));
            let u: u8 = (0u8..=255).generate(&mut rng);
            let _ = u;
        }
    }

    #[test]
    fn union_draws_every_arm() {
        let u = Union::new(vec![Just(1u32).boxed(), Just(2u32).boxed()]);
        let mut rng = TestRng::deterministic("union");
        let mut seen = [false; 3];
        for _ in 0..64 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        let strat = (0u8..16)
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 16, 4, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut rng = TestRng::deterministic("tree");
        for _ in 0..64 {
            let _ = strat.generate(&mut rng);
        }
    }
}
