//! `any::<T>()` — the default strategy for a type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric values: good enough for codec round-trips.
        f32::from_bits((rng.next_u64() >> 32) as u32 & 0x7FFF_FFFF)
            * if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::from_bits(rng.next_u64() & 0x7FEF_FFFF_FFFF_FFFF)
            * if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 }
    }
}

/// The canonical strategy for `T` (`any::<T>()`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}
