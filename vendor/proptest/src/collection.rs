//! Collection strategies.

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generates `Vec`s whose length is drawn from `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_the_range() {
        let strat = vec(0u8..10, 2..5);
        let mut rng = TestRng::deterministic("vec");
        for _ in 0..64 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }
}
