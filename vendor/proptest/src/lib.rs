//! Vendored, offline subset of the `proptest` crate API.
//!
//! The build container has no crates.io access, so this workspace vendors
//! the slice of proptest its tests use: the [`proptest!`] macro,
//! [`prop_oneof!`], [`strategy::Strategy`] with `prop_map` /
//! `prop_recursive`, [`collection::vec`], `any::<T>()`, ranges and tuples
//! as strategies, and the `prop_assert*` macros.
//!
//! Differences from upstream are deliberate and small:
//!
//! * cases are generated from a deterministic per-test seed (derived from
//!   the test name), so a failure reproduces identically on every run and
//!   under a debugger — no persistence file needed;
//! * there is no shrinking: the failure report names the case number and
//!   assertion, and re-running regenerates the exact same inputs.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

pub use test_runner::ProptestConfig;

/// Defines property tests.
///
/// Supports the upstream surface used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn roundtrip(v: u64, small in 0u32..16) { prop_assert!(v >= 0 || small < 16); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (
        cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let __cases = __config.resolved_cases();
            let mut __rng =
                $crate::test_runner::TestRng::deterministic(stringify!($name));
            for __case in 0..__cases {
                let __outcome: ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (|| {
                    $crate::__proptest_bind!(__rng; $($params)*);
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!(
                        "proptest `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $p:pat_param in $s:expr) => {
        let $p = $crate::strategy::Strategy::generate(&($s), &mut $rng);
    };
    ($rng:ident; $p:pat_param in $s:expr, $($rest:tt)*) => {
        let $p = $crate::strategy::Strategy::generate(&($s), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $p:ident : $t:ty) => {
        let $p =
            $crate::strategy::Strategy::generate(&$crate::arbitrary::any::<$t>(), &mut $rng);
    };
    ($rng:ident; $p:ident : $t:ty, $($rest:tt)*) => {
        let $p =
            $crate::strategy::Strategy::generate(&$crate::arbitrary::any::<$t>(), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

/// Chooses uniformly between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Asserts inside a property, failing the case (not panicking) on falsity.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+),
                    l,
                    r
                ),
            ));
        }
    }};
}

/// Asserts two values differ inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}
