//! Vendored, offline subset of the `rand` crate API.
//!
//! The container building this workspace has no network access to
//! crates.io, so the workspace vendors the small slice of `rand` it uses:
//! [`Rng::gen`], [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`].
//! Determinism matters more than statistical quality here — every consumer
//! seeds explicitly so benchmark and test runs are reproducible — and the
//! implementation is the well-known SplitMix64 generator.

#![forbid(unsafe_code)]

/// Types that can be sampled uniformly from random bits.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u128 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

/// A source of random values.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a uniformly random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! The standard generator.

    use crate::{Rng, SeedableRng};

    /// SplitMix64: deterministic, seedable, and fast — the properties the
    /// Cage reproduction needs (tag/key generation under a fixed seed).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_supports_unsized_rng() {
        fn take(rng: &mut (impl Rng + ?Sized)) -> u64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(7);
        let _: u8 = rng.gen();
        let _: bool = rng.gen();
        assert_ne!(take(&mut rng), take(&mut rng));
    }
}
